"""E14 — enriching workloads (Section 5.2 future work).

The paper names two workload classes missing from every surveyed suite:
multimedia systems and large-scale deep learning.  Both run here —
image classification over synthetic textures (feature extraction + train
+ classify as MapReduce jobs) and data-parallel MLP training (one
gradient-averaging MapReduce job per epoch, stopping on a runtime
convergence condition).

Expected shapes: both reach high accuracy on their labelled synthetic
inputs; the MLP's loss curve is monotone-ish decreasing; its epoch count
is only known at run time (the iterative-operation pattern).
"""

from __future__ import annotations

from conftest import print_banner

from repro.datagen.media import SyntheticImageGenerator
from repro.datagen.mixture import GaussianMixtureGenerator
from repro.engines.mapreduce import MapReduceEngine
from repro.execution.report import ascii_table
from repro.workloads import (
    ImageClassificationWorkload,
    MlpClassificationWorkload,
)


def test_multimedia_image_classification(benchmark):
    images = SyntheticImageGenerator(size=16, seed=51).generate(200)

    def run():
        return ImageClassificationWorkload().run(MapReduceEngine(), images)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    print_banner("E14", "multimedia — image classification over textures")
    print(
        ascii_table(
            [{
                "images": result.records_in,
                "classes": len(result.output["classes"]),
                "accuracy": result.extra["accuracy"],
                "duration (s)": result.duration_seconds,
                "simulated cluster (s)": result.simulated_seconds,
            }]
        )
    )
    assert result.extra["accuracy"] > 0.85


def test_deep_learning_mlp(benchmark):
    data = GaussianMixtureGenerator(
        num_components=4, dimensions=3, spread=10.0, seed=52
    ).generate(500)

    def run():
        return MlpClassificationWorkload().run(
            MapReduceEngine(), data, max_epochs=30, seed=1
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    losses = result.output["loss_curve"]
    print_banner("E14", "large-scale learning — data-parallel MLP on MapReduce")
    print(
        ascii_table(
            [{
                "rows": result.records_in,
                "epochs (runtime-determined)": result.extra["epochs"],
                "initial loss": losses[0],
                "final loss": losses[-1],
                "test accuracy": result.extra["accuracy"],
            }]
        )
    )
    assert result.extra["accuracy"] > 0.9
    assert losses[-1] < losses[0]


def test_epoch_count_runtime_condition(benchmark):
    """The iterative-operation pattern in the learning setting: a looser
    convergence threshold stops training earlier."""
    data = GaussianMixtureGenerator(
        num_components=3, dimensions=2, spread=12.0, seed=53
    ).generate(300)

    def run_both():
        eager = MlpClassificationWorkload().run(
            MapReduceEngine(), data,
            max_epochs=50, min_loss_improvement=0.3, seed=2,
        )
        patient = MlpClassificationWorkload().run(
            MapReduceEngine(), data,
            max_epochs=50, min_loss_improvement=0.0, seed=2,
        )
        return eager, patient

    eager, patient = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_banner("E14", "stopping condition controls the epoch count")
    print(
        ascii_table(
            [
                {"threshold": 0.3, "epochs": eager.extra["epochs"],
                 "accuracy": eager.extra["accuracy"]},
                {"threshold": 0.0, "epochs": patient.extra["epochs"],
                 "accuracy": patient.extra["accuracy"]},
            ]
        )
    )
    assert eager.extra["epochs"] < patient.extra["epochs"]
