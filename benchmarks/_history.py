"""Shared perf-trajectory recording for the ``BENCH_*.json`` files.

Every benchmark module used to carry its own copy of the append-a-row
helper with ad-hoc ``cpus``/``python``/``timestamp`` fields.  This
module is the one copy, and it emits rows in the run store's record
schema (:mod:`repro.analysis.store`): a ``fingerprint`` of what was
measured, a ``series`` hash grouping comparable rows, the shared
``environment`` fingerprint, and a ``measurements`` payload.  The
file stays a human-readable JSON array (the historical format), so
existing trajectories keep accumulating in place.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from repro.analysis.store import environment_fingerprint, fingerprint_hash


def append_history(
    path: Path,
    benchmark: str,
    fingerprint: dict[str, Any],
    measurements: dict[str, Any],
) -> dict[str, Any]:
    """Append one trajectory row to ``path`` and return it.

    ``fingerprint`` identifies what was measured (prescription, volume,
    chunk sizes, ...); rows with an identical fingerprint share a
    ``series`` key, exactly as run-store records with an identical spec
    fingerprint do.  ``measurements`` holds the numbers themselves.
    """
    history: list[dict[str, Any]] = []
    if path.exists():
        history = json.loads(path.read_text())
    full_fingerprint = {"benchmark": benchmark, **fingerprint}
    row = {
        "record_id": f"b{len(history) + 1:04d}",
        "series": fingerprint_hash(full_fingerprint),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "fingerprint": full_fingerprint,
        "environment": environment_fingerprint(),
        "measurements": measurements,
    }
    history.append(row)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return row
