"""E2 — regenerate Table 2: benchmarking techniques of ten suites.

Derived from each suite model's workload inventory, asserted against the
published rows, and backed by *runnable miniatures*: every suite's
workload set executes on this repository's engines and reports timings.
"""

from __future__ import annotations

import pytest
from conftest import print_banner

from repro.execution.report import ascii_table
from repro.suites import (
    MINIATURES,
    PAPER_TABLE2,
    generate_table2,
    run_miniature,
    table2_matches_paper,
)


def test_table2_matches_paper(benchmark):
    rows = benchmark(generate_table2)
    assert len(rows) == len(PAPER_TABLE2)
    matches, mismatches = table2_matches_paper()
    assert matches, mismatches
    print_banner("E2", "Table 2 — benchmarking techniques (derived)")
    print(
        ascii_table(
            [
                {
                    "Benchmark efforts": row.benchmark,
                    "Type": row.workload_type,
                    "Examples": row.examples[:60]
                    + ("…" if len(row.examples) > 60 else ""),
                    "Software stacks": row.software_stacks,
                }
                for row in rows
            ]
        )
    )
    print("row-for-row match with the published table: YES")


@pytest.mark.parametrize("suite_name", sorted(MINIATURES))
def test_suite_miniature_runs(benchmark, suite_name):
    report = benchmark.pedantic(
        run_miniature, args=(suite_name,), kwargs={"scale": 0.5},
        rounds=2, iterations=1,
    )
    print_banner("E2", f"{suite_name} miniature ({len(report.runs)} workloads)")
    print(
        ascii_table(
            [
                {"workload": name, "duration_s": seconds}
                for name, seconds in sorted(report.summary().items())
            ]
        )
    )
    assert report.runs
