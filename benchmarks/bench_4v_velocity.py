"""E8 — fully controllable data velocity (Section 5.1).

Three mechanisms, three sub-benchmarks:

1. **parallel generators** — simulated distributed rate vs the number of
   generator partitions (expected: ~×N speedup);
2. **update frequency** — the update scheduler hits requested updating
   frequencies (the facet Table 1 says no surveyed suite controls);
3. **algorithm efficiency** — trading memory for speed (alias-method vs
   naive inverse-CDF sampling) changes the generation rate without any
   added parallelism.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import print_banner

from repro.datagen import ParallelGenerationController, UpdateScheduler
from repro.datagen.alias import AliasSampler, naive_sample
from repro.datagen.text import RandomTextGenerator
from repro.execution.report import ascii_table


def test_parallel_generator_speedup(benchmark):
    volume = 600

    def sweep():
        rows = []
        for partitions in (1, 2, 4, 8):
            controller = ParallelGenerationController(
                RandomTextGenerator(document_length=120, seed=1),
                num_partitions=partitions,
            )
            _, report = controller.run(volume)
            rows.append(
                {
                    "generators": partitions,
                    "simulated rate (doc/s)": report.simulated_rate,
                    "speedup": report.speedup,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_banner("E8", "velocity mechanism 1 — parallel data generators")
    print(ascii_table(rows))
    # Expected shape: speedup grows with generator count, ~×N.
    assert rows[-1]["speedup"] > rows[0]["speedup"] * 3
    assert rows[2]["speedup"] > rows[1]["speedup"]


def test_update_frequency_control(benchmark):
    def drive():
        rows = []
        for frequency in (50.0, 200.0, 800.0):
            scheduler = UpdateScheduler(frequency, seed=2)
            events = scheduler.plan(duration_seconds=2.0, key_space=100)
            achieved = len(events) / 2.0
            state: dict[int, float] = {}
            counts = UpdateScheduler.apply(state, events)
            rows.append(
                {
                    "requested (ops/s)": frequency,
                    "achieved (ops/s)": achieved,
                    "updates": counts["update"],
                    "deletes": counts["delete"],
                }
            )
        return rows

    rows = benchmark(drive)
    print_banner("E8", "velocity mechanism 2 — data updating frequency")
    print(ascii_table(rows))
    for row in rows:
        assert row["achieved (ops/s)"] == row["requested (ops/s)"]


def test_algorithm_efficiency_knob(benchmark):
    """Mechanism 3 (§5.1): a faster sampling algorithm (more memory)
    raises the generation rate with no extra parallelism."""
    weights = np.random.default_rng(3).random(2000)
    cumulative = np.cumsum(weights / weights.sum())
    sampler = AliasSampler(weights)
    draws = 3000

    def naive():
        return naive_sample(np.random.default_rng(4), cumulative, draws)

    def alias():
        return sampler.sample(np.random.default_rng(4), draws)

    started = time.perf_counter()
    naive()
    naive_seconds = time.perf_counter() - started

    alias_result = benchmark(alias)
    started = time.perf_counter()
    alias()
    alias_seconds = time.perf_counter() - started

    print_banner("E8", "velocity mechanism 3 — generation algorithm efficiency")
    print(
        ascii_table(
            [
                {"sampler": "naive inverse-CDF (O(V)/draw)",
                 "seconds": naive_seconds,
                 "rate (draws/s)": draws / naive_seconds},
                {"sampler": "alias table (O(1)/draw, O(V) memory)",
                 "seconds": alias_seconds,
                 "rate (draws/s)": draws / alias_seconds},
            ]
        )
    )
    assert len(alias_result) == draws
    assert alias_seconds < naive_seconds


def test_processing_speed_pacing(benchmark):
    """Velocity meaning 3 (Section 2.1): replay a stream no faster than a
    target processing speed."""
    from repro.datagen import PacedStream, PoissonArrivals, StreamGenerator

    events = StreamGenerator(
        arrivals=PoissonArrivals(100_000.0), seed=5
    ).generate(2000).records

    def paced_rates():
        rows = []
        for target in (500.0, 2000.0, 8000.0):
            delivered = PacedStream(events, target_rate=target).delivered_rate()
            rows.append({"target (ev/s)": target, "delivered (ev/s)": delivered})
        return rows

    rows = benchmark(paced_rates)
    print_banner("E8", "processing-speed control via pacing")
    print(ascii_table(rows))
    for row in rows:
        assert row["delivered (ev/s)"] <= row["target (ev/s)"] * 1.01
