"""E15 — controllable-velocity load generation (§5.1, request side).

Three sustained-throughput experiments through the ``repro.loadgen``
stack, all on the virtual clock so the latency numbers are properties
of the *modelled* system, not of this host's scheduler:

* **capacity sweep** — one synthetic server driven from well under to
  well over its capacity; the SLO verdict must flip from PASS to FAIL
  exactly where queueing theory says the queue blows up, with the shed
  fraction absorbing the overload;
* **arrival shapes** — the same nominal rate offered as constant /
  poisson / bursty / diurnal arrivals; tail latency must order by
  burstiness (constant ≤ poisson ≤ bursty) while every verdict stays
  deterministic (same seed → byte-identical summary);
* **service sustained run** — a short Poisson run against the benchmark
  service orchestrator: real jobs, measured service times folded into
  the virtual timeline.

Each run appends a run-store-schema row (see ``_history``) to
``BENCH_load_generation.json`` so the achieved-rate and percentile
numbers accumulate into a perf trajectory across revisions.  The
simulator's own speed (simulated requests per wall second) is recorded
too — the load generator must stay cheap enough to model rates far
beyond what the host could serve for real.
"""

from __future__ import annotations

import time
from pathlib import Path

from _history import append_history
from conftest import print_banner

from repro.execution.report import ascii_table
from repro.loadgen import (
    LoadPlan,
    LoadRunner,
    ServiceTarget,
    SLOPolicy,
    SyntheticTarget,
)

RESULTS_FILE = Path(__file__).parent / "BENCH_load_generation.json"

#: One simulated server with 10ms mean service ≈ 100 req/s capacity
#: per unit of concurrency.
MEAN_SERVICE = 0.010
CONCURRENCY = 4
DURATION = 20.0
SEED = 42

#: Offered rates as fractions of the 4 × 100 req/s nominal capacity.
SWEEP_FRACTIONS = (0.5, 0.8, 1.6)

ARRIVALS = ("constant", "poisson", "bursty", "diurnal")


def _run(rate: float, arrival: str = "poisson", **plan_options):
    runner = LoadRunner(
        SyntheticTarget(mean_service=MEAN_SERVICE),
        concurrency=CONCURRENCY,
        queue_capacity=64,
    )
    plan = LoadPlan(
        arrival=arrival,
        rate=rate,
        duration=DURATION,
        seed=SEED,
        **plan_options,
    )
    slo = SLOPolicy(p99_budget=0.25, max_shed_fraction=0.02)
    started = time.perf_counter()
    report = runner.run(plan, slo=slo)
    wall = time.perf_counter() - started
    return report, wall


def test_capacity_sweep_flips_the_verdict(benchmark):
    capacity = CONCURRENCY / MEAN_SERVICE

    def drive():
        return {
            fraction: _run(capacity * fraction)
            for fraction in SWEEP_FRACTIONS
        }

    outcomes = benchmark.pedantic(drive, rounds=1, iterations=1)

    print_banner("E15a", "load generation — capacity sweep")
    rows = []
    for fraction, (report, wall) in outcomes.items():
        stats = report.latency_stats()
        rows.append({
            "offered/capacity": fraction,
            "achieved/s": f"{report.achieved_rate:.1f}",
            "shed": f"{report.shed_fraction:.1%}",
            "p50 ms": f"{stats.p50 * 1e3:.2f}",
            "p99 ms": f"{stats.p99 * 1e3:.2f}",
            "verdict": "PASS" if report.verdict.passed else "FAIL",
            "sim req/s": f"{report.offered / wall:.0f}",
        })
    print(ascii_table(rows))

    # Under capacity the SLO holds; at 1.6× the verdict must fail and
    # the bounded queue must shed the overload.
    assert outcomes[0.5][0].verdict.passed
    assert outcomes[0.8][0].verdict.passed
    overloaded = outcomes[1.6][0]
    assert not overloaded.verdict.passed
    assert overloaded.shed_fraction > 0.02
    # Queueing delay shows up in the tail well before saturation.
    assert (
        outcomes[0.8][0].latency_stats().p99
        > outcomes[0.5][0].latency_stats().p99
    )

    append_history(
        RESULTS_FILE,
        "load_generation.capacity_sweep",
        {
            "mean_service": MEAN_SERVICE,
            "concurrency": CONCURRENCY,
            "duration": DURATION,
            "fractions": list(SWEEP_FRACTIONS),
            "seed": SEED,
        },
        {
            str(fraction): {
                "offered_rate": report.offered_rate,
                "achieved_rate": report.achieved_rate,
                "shed_fraction": report.shed_fraction,
                "latency": report.latency_stats().as_dict()
                | {"samples": None},
                "slo_passed": report.verdict.passed,
                "simulated_requests_per_wall_second": report.offered / wall,
            }
            for fraction, (report, wall) in outcomes.items()
        },
    )


def test_arrival_shapes_order_the_tail(benchmark):
    rate = 0.7 * CONCURRENCY / MEAN_SERVICE

    def drive():
        return {arrival: _run(rate, arrival) for arrival in ARRIVALS}

    outcomes = benchmark.pedantic(drive, rounds=1, iterations=1)

    print_banner("E15b", "load generation — arrival shapes at 0.7× capacity")
    print(ascii_table([
        {
            "arrival": arrival,
            "offered/s": f"{report.offered_rate:.1f}",
            "achieved/s": f"{report.achieved_rate:.1f}",
            "p50 ms": f"{report.latency_stats().p50 * 1e3:.2f}",
            "p99 ms": f"{report.latency_stats().p99 * 1e3:.2f}",
            "queue max": report.queue_depth_max,
            "verdict": "PASS" if report.verdict.passed else "FAIL",
        }
        for arrival, (report, wall) in outcomes.items()
    ]))

    # Burstiness orders the tail: smooth arrivals queue less.
    p99 = {a: outcomes[a][0].latency_stats().p99 for a in ARRIVALS}
    assert p99["constant"] <= p99["poisson"] <= p99["bursty"]

    # Determinism: replaying any shape reproduces the summary exactly.
    replay, _ = _run(rate, "bursty")
    assert replay.summary() == outcomes["bursty"][0].summary()

    append_history(
        RESULTS_FILE,
        "load_generation.arrival_shapes",
        {
            "mean_service": MEAN_SERVICE,
            "concurrency": CONCURRENCY,
            "duration": DURATION,
            "rate": rate,
            "seed": SEED,
        },
        {
            arrival: {
                "offered_rate": report.offered_rate,
                "achieved_rate": report.achieved_rate,
                "p50": report.latency_stats().p50,
                "p99": report.latency_stats().p99,
                "queue_depth_max": report.queue_depth_max,
                "slo_passed": report.verdict.passed,
            }
            for arrival, (report, wall) in outcomes.items()
        },
    )


def test_service_sustained_run(benchmark, tmp_path):
    def drive():
        runner = LoadRunner(
            ServiceTarget(store_dir=str(tmp_path / "store")),
            concurrency=2,
        )
        return runner.run(
            LoadPlan(arrival="poisson", rate=6.0, duration=4.0, seed=SEED),
            slo=SLOPolicy(min_rate_fraction=0.5, p99_budget=30.0),
        )

    report = benchmark.pedantic(drive, rounds=1, iterations=1)

    print_banner("E15c", "load generation — service orchestrator under load")
    stats = report.latency_stats()
    print(ascii_table([{
        "target": report.target_name,
        "offered": report.offered,
        "completed": report.completed,
        "shed": report.shed,
        "p50 ms": f"{stats.p50 * 1e3:.2f}",
        "p99 ms": f"{stats.p99 * 1e3:.2f}",
        "verdict": "PASS" if report.verdict.passed else "FAIL",
    }]))

    assert report.completed > 0
    assert report.error_fraction == 0.0
    assert report.verdict.passed

    append_history(
        RESULTS_FILE,
        "load_generation.service_sustained",
        {
            "rate": 6.0,
            "duration": 4.0,
            "concurrency": 2,
            "seed": SEED,
        },
        {
            "offered": report.offered,
            "completed": report.completed,
            "shed_fraction": report.shed_fraction,
            "p50": stats.p50,
            "p99": stats.p99,
            "slo_passed": report.verdict.passed,
        },
    )
