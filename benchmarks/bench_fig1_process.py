"""E3 — Figure 1: the five-step benchmarking process, end to end.

Runs the full Planning → Data Generation → Test Generation → Execution →
Analysis/Evaluation pipeline for one prescription per major application
domain and reports per-step timings — the process diagram as a measured
pipeline.
"""

from __future__ import annotations

import pytest
from conftest import print_banner

from repro.core.process import BenchmarkingProcess
from repro.execution.report import ascii_table

DOMAIN_PRESCRIPTIONS = {
    "micro benchmarks": ("micro-wordcount", 120),
    "search engine": ("search-pagerank", 128),
    "cloud OLTP": ("oltp-read-write", 200),
}


@pytest.mark.parametrize("domain", sorted(DOMAIN_PRESCRIPTIONS))
def test_five_step_process(benchmark, framework, domain):
    prescription, volume = DOMAIN_PRESCRIPTIONS[domain]

    report = benchmark.pedantic(
        framework.run, args=(prescription,), kwargs={"volume": volume},
        rounds=2, iterations=1,
    )
    assert [step.step for step in report.steps] == list(
        BenchmarkingProcess.STEP_NAMES
    )
    print_banner("E3", f"five-step process — {domain} ({prescription})")
    print(
        ascii_table(
            [
                {"step": step.step, "seconds": step.elapsed_seconds}
                for step in report.steps
            ]
        )
    )
    ranking = report.step("analysis-evaluation").detail.get("ranking", [])
    for engine, value in ranking:
        print(f"  lead-metric result: {engine} = {value:.6f}")
