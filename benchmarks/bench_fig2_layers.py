"""E4 — Figure 2: the three-layer architecture, component by component.

Drives every box of the layer diagram: user-interface enumeration and
spec building, function-layer data generation / test generation / both
metric families, and execution-layer configuration, format conversion,
and reporting.
"""

from __future__ import annotations

from conftest import print_banner

from repro import BenchmarkSpec
from repro.core.metrics import MetricKind
from repro.execution.report import ascii_table


def test_user_interface_layer(benchmark, framework):
    ui = framework.user_interface

    def enumerate_and_build():
        catalogue = {
            "prescriptions": ui.available_prescriptions(),
            "domains": ui.available_domains(),
            "engines": ui.available_engines(),
            "generators": ui.available_generators(),
            "workloads": ui.available_workloads(),
        }
        spec = ui.build_spec("micro-wordcount", volume=50, repeats=1)
        return catalogue, spec

    catalogue, spec = benchmark(enumerate_and_build)
    print_banner("E4", "user-interface layer catalogue")
    print(
        ascii_table(
            [{"kind": kind, "count": len(values)} for kind, values in
             catalogue.items()]
        )
    )
    assert isinstance(spec, BenchmarkSpec)
    assert len(catalogue["workloads"]) >= 16


def test_function_layer(benchmark, framework):
    fl = framework.function_layer

    def generate_all_types():
        return {
            "text": fl.generate_data("random-text", 40),
            "table": fl.generate_data("mixture-table", 40),
            "graph": fl.generate_data("rmat-graph", 64),
            "stream": fl.generate_data("poisson-stream", 200),
            "key-value": fl.generate_data("kv-records", 40),
        }

    datasets = benchmark(generate_all_types)
    print_banner("E4", "function layer — one generator per data source")
    print(
        ascii_table(
            [
                {"data source": name, "records": dataset.num_records,
                 "bytes": dataset.estimated_bytes()}
                for name, dataset in datasets.items()
            ]
        )
    )
    kinds = {metric.kind for metric in fl.metric_suite.metrics}
    assert kinds == {MetricKind.USER_PERCEIVABLE, MetricKind.ARCHITECTURE}


def test_execution_layer(benchmark, framework):
    el = framework.execution_layer

    def configure_convert_run_report():
        dataset = framework.function_layer.generate_data("random-text", 60)
        converted = el.convert_format(dataset, "text-lines")
        result = el.runner.run("micro-wordcount", "mapreduce", 60)
        table = el.report([result], ["duration", "throughput",
                                     "ops_per_second"])
        return converted, result, table

    converted, result, table = benchmark.pedantic(
        configure_convert_run_report, rounds=3, iterations=1
    )
    print_banner("E4", "execution layer — convert, run, report")
    print(f"format conversion: {converted.format_name}, "
          f"{len(converted)} lines")
    print(table)
    assert result.mean("throughput") > 0
