"""E5 — Figure 3: the four-step data-generation process.

One run per data type through all four steps: select real data → fit the
data model (veracity) → control volume/velocity → convert format.  Prints
the evidence each step produced.
"""

from __future__ import annotations

from conftest import print_banner

from repro.core.prescription import load_seed
from repro.datagen import (
    FittedTableGenerator,
    LdaTextGenerator,
    ParallelGenerationController,
    RmatGraphGenerator,
    StreamGenerator,
    convert,
    graph_veracity,
    table_veracity,
    text_veracity,
)
from repro.execution.report import ascii_table


def test_text_pipeline(benchmark):
    """Figure 3 for text: corpus → LDA fit → generate → convert."""
    seed = load_seed("text-corpus")

    def pipeline():
        generator = LdaTextGenerator(iterations=8, seed=1).fit(seed)
        controller = ParallelGenerationController(generator, num_partitions=4)
        dataset, velocity = controller.run(80)
        converted = convert(dataset, "text-lines")
        veracity = text_veracity(seed.records, dataset.records)
        return dataset, velocity, converted, veracity

    dataset, velocity, converted, veracity = benchmark.pedantic(
        pipeline, rounds=2, iterations=1
    )
    print_banner("E5", "text generation pipeline (LDA)")
    print(
        ascii_table(
            [{
                "records": dataset.num_records,
                "partitions": velocity.num_partitions,
                "simulated rate (doc/s)": velocity.simulated_rate,
                "format": converted.format_name,
                "veracity JS": veracity.score,
                "faithful": veracity.is_faithful,
            }]
        )
    )
    assert veracity.is_faithful


def test_table_pipeline(benchmark):
    seed = load_seed("retail-orders")

    def pipeline():
        generator = FittedTableGenerator(seed=2).fit(seed)
        dataset = generator.generate(400)
        converted = convert(dataset, "csv")
        veracity = table_veracity(seed.records, dataset.records)
        return dataset, converted, veracity

    dataset, converted, veracity = benchmark(pipeline)
    print_banner("E5", "table generation pipeline (fitted distributions)")
    print(
        ascii_table(
            [{
                "rows": dataset.num_records,
                "csv lines": len(converted),
                "veracity JS": veracity.score,
                "faithful": veracity.is_faithful,
            }]
        )
    )
    assert veracity.is_faithful


def test_graph_pipeline(benchmark):
    seed = load_seed("social-graph")

    def pipeline():
        generator = RmatGraphGenerator(seed=3).fit(seed)
        dataset = generator.generate(512)
        converted = convert(dataset, "adjacency-list")
        veracity = graph_veracity(seed.records, dataset.records)
        return dataset, converted, veracity

    dataset, converted, veracity = benchmark.pedantic(
        pipeline, rounds=2, iterations=1
    )
    print_banner("E5", "graph generation pipeline (fitted R-MAT)")
    print(
        ascii_table(
            [{
                "edges": dataset.num_records,
                "vertices": len(converted.payload),
                "veracity JS": veracity.score,
                "faithful": veracity.is_faithful,
            }]
        )
    )
    assert veracity.is_faithful


def test_stream_pipeline(benchmark):
    source = StreamGenerator(update_fraction=0.3, seed=4)
    real = source.generate(1500)

    def pipeline():
        generator = StreamGenerator(seed=5).fit(real)
        dataset = generator.generate(1500)
        from repro.datagen import stream_veracity

        veracity = stream_veracity(
            [event.timestamp for event in real.records],
            [event.timestamp for event in dataset.records],
        )
        return dataset, veracity

    dataset, veracity = benchmark(pipeline)
    print_banner("E5", "stream generation pipeline (fitted arrivals)")
    print(
        ascii_table(
            [{
                "events": dataset.num_records,
                "learned update fraction": round(
                    sum(1 for e in dataset.records
                        if e.kind.value == "update") / len(dataset.records), 3
                ),
                "veracity JS": veracity.score,
                "faithful": veracity.is_faithful,
            }]
        )
    )
    assert veracity.is_faithful
