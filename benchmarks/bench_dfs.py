"""Substrate ablation — the distributed file system (CFS workloads).

BigDataBench's CFS micro benchmark runs here against the simulated DFS.
Three shapes: write latency grows with the replication factor (pipeline
cost); read throughput is unaffected by replication; a single node
failure loses no replicated data and re-replication restores the
replication factor.
"""

from __future__ import annotations

from conftest import print_banner

from repro.datagen.text import RandomTextGenerator
from repro.engines.dfs import DistributedFileSystem
from repro.execution.report import ascii_table
from repro.workloads import CfsWorkload


def _text():
    return RandomTextGenerator(document_length=40, seed=71).generate(200)


def test_replication_factor_ablation(benchmark):
    data = _text()

    def sweep():
        rows = []
        for replication in (1, 2, 3):
            # Small seek cost so transfer (and therefore the replica
            # pipeline) dominates the measured latencies.
            engine = DistributedFileSystem(
                num_nodes=4, replication=replication,
                seek_seconds=1e-5, network_bytes_per_second=10e6,
            )
            result = CfsWorkload().run(engine, data, files=8)
            means = result.output["mean_latency_by_op"]
            rows.append(
                {
                    "replication": replication,
                    "mean write (ms)": means["write"] * 1e3,
                    "mean read (ms)": means["read"] * 1e3,
                    "write throughput (MB/s)":
                        result.extra["write_throughput_bytes_per_second"] / 1e6,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_banner("ablation", "DFS replication factor (CFS workload)")
    print(ascii_table(rows))
    writes = [row["mean write (ms)"] for row in rows]
    assert writes == sorted(writes)       # more replicas → slower writes
    assert writes[-1] > writes[0] * 1.5   # and noticeably so
    reads = [row["mean read (ms)"] for row in rows]
    # Reads contact one replica: unaffected by the replication factor.
    assert max(reads) - min(reads) < 0.2 * max(reads) + 1e-9
    assert max(reads) <= min(writes) + 1e-9


def test_failure_and_re_replication(benchmark):
    def drive():
        dfs = DistributedFileSystem(num_nodes=4, block_size=256,
                                    replication=2)
        payloads = {
            f"/data/part-{i:03d}": bytes(f"payload-{i}" * 40, "ascii")
            for i in range(12)
        }
        for path, payload in payloads.items():
            dfs.write_file(path, payload)
        lost = dfs.fail_node(0)
        under = len(dfs.under_replicated_blocks())
        survived = sum(
            1 for path, payload in payloads.items()
            if dfs.read_file(path).data == payload
        )
        copies = dfs.re_replicate()
        return {
            "blocks on failed node": lost,
            "under-replicated after failure": under,
            "files readable after failure": survived,
            "re-replication copies": copies,
            "under-replicated after repair": len(dfs.under_replicated_blocks()),
            "data lost": len(dfs.lost_blocks()),
        }

    row = benchmark.pedantic(drive, rounds=2, iterations=1)
    print_banner("ablation", "DFS node failure + re-replication")
    print(ascii_table([row]))
    assert row["files readable after failure"] == 12
    assert row["data lost"] == 0
    assert row["under-replicated after repair"] == 0


def test_scale_down_sampling_shapes(benchmark):
    """Figure 3's sampling tools: forest-fire preserves graph degree
    structure better than uniform edge sampling at the same fraction."""
    from repro.core.prescription import load_seed
    from repro.datagen.graph import average_degree
    from repro.datagen.sampling import forest_fire_sample, random_edge_sample

    graph = load_seed("social-graph")
    real_degree = average_degree(graph.records)

    def compare():
        rows = []
        for label, sampler in (
            ("forest fire", forest_fire_sample),
            ("uniform edge", random_edge_sample),
        ):
            sampled = sampler(graph.records, 0.5, seed=5)
            rows.append(
                {
                    "sampler": label,
                    "edges kept": len(sampled),
                    "avg degree": average_degree(sampled),
                    "degree error": abs(average_degree(sampled) - real_degree),
                }
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=2, iterations=1)
    print_banner("E5b", f"scale-down sampling (real avg degree "
                        f"{real_degree:.2f})")
    print(ascii_table(rows))
    assert rows[0]["degree error"] < rows[1]["degree error"]
