"""E13 — heterogeneous platform evaluation (Section 5.2 future work).

The exact evaluation the paper proposes, on simulated Xeon / Xeon+GPGPU /
Xeon+MIC platforms: project measured workload runs onto each platform via
an Amdahl model and answer the paper's two questions.

Expected shape: **no** platform consistently wins both performance and
energy for all applications (question 1 = no), and each workload class
gets a recommendation (question 2): accelerators win dense numeric
workloads (k-means, PageRank), the plain CPU wins irregular/serving
workloads on energy.
"""

from __future__ import annotations

from conftest import print_banner

from repro.core.platforms import (
    STANDARD_PLATFORMS,
    PlatformEvaluation,
    accelerable_fraction,
)
from repro.datagen.graph import RmatGraphGenerator
from repro.datagen.kv import KeyValueGenerator
from repro.datagen.mixture import GaussianMixtureGenerator
from repro.datagen.text import RandomTextGenerator
from repro.engines.mapreduce import MapReduceEngine
from repro.engines.nosql import NoSqlStore
from repro.execution.report import ascii_table
from repro.workloads import (
    GrepWorkload,
    KMeansWorkload,
    PageRankWorkload,
    SortWorkload,
    YcsbWorkload,
)


def _measured_results():
    text = RandomTextGenerator(document_length=30, seed=41).generate(200)
    results = [
        SortWorkload().run(MapReduceEngine(), text),
        GrepWorkload().run(MapReduceEngine(), text, pattern_text="stone"),
        KMeansWorkload().run(
            MapReduceEngine(),
            GaussianMixtureGenerator(seed=42).generate(300),
            num_clusters=4, max_iterations=8,
        ),
        PageRankWorkload().run(
            MapReduceEngine(),
            RmatGraphGenerator(seed=43).generate(256),
            max_iterations=10,
        ),
        YcsbWorkload().run(
            NoSqlStore(seed=44),
            KeyValueGenerator(field_count=4, field_length=20,
                              seed=45).generate(200),
            workload_mix="A", operation_count=400,
        ),
    ]
    return results


def test_platform_evaluation(benchmark):
    results = _measured_results()

    def evaluate():
        evaluation = PlatformEvaluation()
        for result in results:
            evaluation.add(result)
        return evaluation

    evaluation = benchmark(evaluate)

    print_banner("E13", "workloads × platforms (projected time and energy)")
    print(ascii_table(evaluation.rows()))

    recommendations = evaluation.per_class_recommendation()
    print_banner("E13", "question 2 — per-class platform recommendation")
    print(
        ascii_table(
            [
                {"workload": workload,
                 "accelerable fraction": accelerable_fraction(workload),
                 "best performance": picks["performance"],
                 "best energy": picks["energy"]}
                for workload, picks in recommendations.items()
            ]
        )
    )

    winner = evaluation.consistent_winner()
    print(f"\nquestion 1 — consistent winner on BOTH metrics: "
          f"{winner or 'none (as the paper expected)'}")

    # The paper's expected shapes:
    assert winner is None  # (1) no platform wins everything
    # (2) accelerators win the dense numeric workloads on performance...
    assert recommendations["kmeans"]["performance"] == "Xeon+GPGPU"
    assert recommendations["pagerank"]["performance"] == "Xeon+GPGPU"
    # ...while the plain CPU wins serving/irregular workloads on energy.
    assert recommendations["ycsb"]["energy"] == "Xeon (CPU only)"
    assert recommendations["grep"]["energy"] == "Xeon (CPU only)"


def test_uniform_interface_same_stack(benchmark):
    """The paper requires apples-to-apples: the same application, same
    software stack, projected across platforms — only the platform spec
    varies."""
    from repro.core.platforms import project

    text = RandomTextGenerator(document_length=30, seed=46).generate(150)
    result = SortWorkload().run(MapReduceEngine(), text)

    def project_all():
        return [project(result, platform) for platform in STANDARD_PLATFORMS]

    projections = benchmark(project_all)
    print_banner("E13", "one run, three platforms (uniform interface)")
    print(
        ascii_table(
            [{"platform": p.platform, "seconds": p.seconds,
              "energy (J)": p.energy_joules} for p in projections]
        )
    )
    # Sort is mostly irregular: acceleration helps time a little, but the
    # accelerator's power draw makes the CPU the energy winner.
    cpu, gpu, mic = projections
    assert gpu.seconds < cpu.seconds
    assert cpu.energy_joules < gpu.energy_joules
    assert cpu.energy_joules < mic.energy_joules
