"""E10 — the functional view in action: one abstract test, many systems.

Section 2.2: abstract operations/patterns "allow the comparison of
systems of different types, e.g. a DBMS and a MapReduce system" and
"systems of the same type".  Two comparisons:

* the select→join→aggregate prescription on the DBMS vs the MapReduce
  engine (Pavlo-style, different system types);
* the YCSB operation mix on the NoSQL store vs the DBMS (YCSB-style,
  serving stores).

Expected shape: identical answers; the specialised system wins its home
turf (the DBMS on relational queries, per Pavlo's findings).
"""

from __future__ import annotations

from conftest import print_banner

from repro.execution.harness import BenchmarkHarness
from repro.execution.report import ascii_table
from repro.execution.runner import RunnerOptions, TestRunner


def test_relational_query_dbms_vs_mapreduce(benchmark):
    harness = BenchmarkHarness(
        TestRunner(options=RunnerOptions(repeats=3, warmup_runs=1))
    )

    def compare():
        return harness.compare_engines(
            "database-aggregate-join", ["dbms", "mapreduce"], 400
        )

    analyzer = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = analyzer.summary_rows(["duration", "ops_per_second", "energy"])
    print_banner("E10", "select→join→aggregate — DBMS vs MapReduce")
    print(ascii_table(rows))
    factors = analyzer.speedup(
        "duration", baseline_engine="mapreduce", higher_is_better=False
    )
    print(f"  speedup over MapReduce: {factors}")
    # Pavlo's shape: the DBMS wins relational queries.
    assert factors["dbms"] > 1.0


def test_relational_query_row_vs_columnar(benchmark):
    """The same cross-system prescription under both execution layouts:
    identical deterministic answers, and the recorded row-vs-columnar
    delta on the full five-step path (both engines' batch paths — DBMS
    vectorized operators, MapReduce combiner batching — engage)."""
    from repro import api

    def run_layouts():
        reports = {}
        for layout in ("row", "columnar"):
            reports[layout] = api.run(
                "database-aggregate-join",
                engines=["dbms", "mapreduce"],
                volume=400,
                layout=layout,
            )
        return reports

    reports = benchmark.pedantic(run_layouts, rounds=1, iterations=1)
    rows = []
    for layout, report in reports.items():
        for result in report.results:
            rows.append(
                {
                    "layout": layout,
                    "engine": result.engine,
                    "duration_s": f"{result.mean('duration'):.4f}",
                    "executed as": result.extra.get("layout", "row"),
                }
            )
    print_banner("E10", "select→join→aggregate — row vs columnar layout")
    print(ascii_table(rows))

    def result_for(layout, engine_name):
        for result in reports[layout].results:
            if result.engine == engine_name:
                return result
        raise AssertionError(f"no {engine_name} result under {layout}")

    # The DBMS honestly reports the layout it executed, and the
    # columnar plan is the vectorized tree, not a row fallback.
    assert result_for("row", "dbms").extra["layout"] == "row"
    columnar_dbms = result_for("columnar", "dbms")
    assert columnar_dbms.extra["layout"] == "columnar"
    assert columnar_dbms.extra["plan"]["layout"] == "columnar"
    # MapReduce's deterministic architecture metrics agree across
    # layouts: combiner batching changes how the work runs (per-batch
    # partial aggregation), never the work itself.
    for name in ("throughput", "ops_per_second", "data_rate",
                 "network_rate", "energy", "cost"):
        assert result_for("row", "mapreduce").mean(name) == result_for(
            "columnar", "mapreduce"
        ).mean(name), name


def test_ycsb_mix_nosql_vs_dbms(benchmark):
    harness = BenchmarkHarness(TestRunner(options=RunnerOptions(repeats=2)))

    def compare():
        return harness.compare_engines(
            "oltp-read-write", ["nosql", "dbms"], 300,
            operation_count=400,
        )

    analyzer = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = analyzer.summary_rows(["mean_latency", "latency_p99", "throughput"])
    print_banner("E10", "YCSB mix A — NoSQL store vs DBMS")
    print(ascii_table(rows))
    for result in analyzer.results:
        assert result.mean("mean_latency") > 0


def test_consistency_latency_tradeoff(benchmark):
    """The YCSB paper's consistency dimension on the simulated store:
    stronger consistency costs latency; weak reads can observe stale
    data until anti-entropy runs."""
    from repro.engines.nosql import ConsistencyLevel, LatencyModel, NoSqlStore

    def drive():
        store = NoSqlStore(
            num_partitions=6, replication=3,
            latency=LatencyModel(jitter_sigma=0.0), seed=13,
        )
        for index in range(100):
            store.insert(f"k{index:04d}", {"v": "initial"})
        # Weakly consistent updates leave replication debt behind.
        for index in range(100):
            store.update(f"k{index:04d}", {"v": "updated"},
                         consistency=ConsistencyLevel.ONE)
        rows = []
        for level in (ConsistencyLevel.ONE, ConsistencyLevel.QUORUM,
                      ConsistencyLevel.ALL):
            latencies = []
            stale = 0
            for index in range(100):
                result = store.read(f"k{index:04d}", consistency=level)
                latencies.append(result.latency_seconds)
                if result.fields and result.fields["v"] != "updated":
                    stale += 1
            rows.append(
                {
                    "read consistency": level.value,
                    "mean latency (us)": 1e6 * sum(latencies) / len(latencies),
                    "stale reads / 100": stale,
                }
            )
        rows.append({"read consistency": "(pending repairs)",
                     "mean latency (us)": 0.0,
                     "stale reads / 100": store.pending_replications})
        return rows

    rows = benchmark.pedantic(drive, rounds=2, iterations=1)
    print_banner("E10", "consistency vs latency vs staleness (YCSB dimension)")
    print(ascii_table(rows))
    one, quorum, everyone = rows[0], rows[1], rows[2]
    assert one["mean latency (us)"] < quorum["mean latency (us)"]
    assert quorum["mean latency (us)"] < everyone["mean latency (us)"]
    assert one["stale reads / 100"] > 0       # weak reads see staleness
    assert quorum["stale reads / 100"] == 0   # quorum overlap stays fresh
    assert everyone["stale reads / 100"] == 0


def test_count_url_links_both_systems(benchmark):
    """Pavlo's count-URL-links on both system types, same answer."""
    from repro.datagen.corpus import load_retail_tables
    from repro.datagen.weblog import WebLogGenerator
    from repro.engines.dbms import DbmsEngine
    from repro.engines.mapreduce import MapReduceEngine
    from repro.workloads import CountUrlLinksWorkload

    tables = load_retail_tables()
    weblog = WebLogGenerator(tables["customers"], tables["products"],
                             seed=7).generate(600)
    workload = CountUrlLinksWorkload()

    def run_both():
        return (
            workload.run(DbmsEngine(), weblog),
            workload.run(MapReduceEngine(), weblog),
        )

    dbms_result, mr_result = benchmark.pedantic(run_both, rounds=2, iterations=1)
    assert sorted(dbms_result.output) == sorted(mr_result.output)
    print_banner("E10", "count URL links — identical answers on both systems")
    print(
        ascii_table(
            [
                {"engine": dbms_result.engine,
                 "paths": dbms_result.records_out,
                 "duration_s": dbms_result.duration_seconds},
                {"engine": mr_result.engine,
                 "paths": mr_result.records_out,
                 "duration_s": mr_result.duration_seconds},
            ]
        )
    )
