"""Substrate ablation — DBMS planner choices (DESIGN.md §6.5).

Sweeps the relational substrate's planner knobs on the same query:
join algorithm (hash / merge / nested-loop), predicate pushdown on/off,
and index scans on/off.  Expected shapes: hash beats nested-loop once the
inner input is non-trivial; pushdown cuts compute ops; the index turns a
point query's scan cost from O(N) to O(log N)-ish record reads.
"""

from __future__ import annotations

from conftest import print_banner

from repro.datagen.corpus import load_retail_tables
from repro.engines.dbms import DbmsEngine, PlannerConfig, col, lit
from repro.execution.report import ascii_table


def _load(engine: DbmsEngine) -> None:
    tables = load_retail_tables(
        num_customers=200, num_products=100, num_orders=2000
    )
    for name, dataset in tables.items():
        engine.load_dataset(dataset, name)


def _join_query(engine: DbmsEngine):
    return (
        engine.query("orders")
        .join("products", "product_id", "product_id")
        .where(col("quantity") >= lit(2))
        .group_by("category")
        .aggregate("sum", "quantity", "total")
    )


def test_join_algorithm_ablation(benchmark):
    def sweep():
        rows = []
        reference = None
        for algorithm in ("hash", "merge", "nested_loop"):
            engine = DbmsEngine(PlannerConfig(join_algorithm=algorithm))
            _load(engine)
            result = engine.execute(_join_query(engine))
            answer = sorted(result.rows)
            if reference is None:
                reference = answer
            assert answer == reference  # all algorithms agree
            rows.append(
                {
                    "join": algorithm,
                    "duration (s)": result.wall_seconds,
                    "compute ops": result.cost.compute_ops,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_banner("ablation", "join algorithm on 2000⋈100 rows")
    print(ascii_table(rows))
    by_name = {row["join"]: row for row in rows}
    assert by_name["hash"]["compute ops"] < by_name["nested_loop"]["compute ops"]


def test_predicate_pushdown_ablation(benchmark):
    def sweep():
        rows = []
        for pushdown in (True, False):
            engine = DbmsEngine(PlannerConfig(predicate_pushdown=pushdown,
                                              join_algorithm="nested_loop"))
            _load(engine)
            result = engine.execute(_join_query(engine))
            rows.append(
                {
                    "pushdown": pushdown,
                    "duration (s)": result.wall_seconds,
                    "compute ops": result.cost.compute_ops,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_banner("ablation", "predicate pushdown (nested-loop join)")
    print(ascii_table(rows))
    assert rows[0]["compute ops"] < rows[1]["compute ops"]


def test_index_scan_ablation(benchmark):
    def sweep():
        rows = []
        for use_indexes in (True, False):
            engine = DbmsEngine(PlannerConfig(use_indexes=use_indexes))
            _load(engine)
            engine.create_index("orders", "order_id")
            result = engine.execute(
                engine.query("orders").where(col("order_id") == lit(1234))
            )
            rows.append(
                {
                    "index scans": use_indexes,
                    "records read": result.cost.records_read,
                    "plan": result.plan["op"],
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_banner("ablation", "point query with and without the index")
    print(ascii_table(rows))
    assert rows[0]["records read"] < rows[1]["records read"] / 100


def test_execution_layout_ablation(benchmark):
    """Row vs columnar on the same join+filter+aggregate query: the
    batch-at-a-time plan must return the row plan's exact answer, and
    the recorded delta tracks what vectorization buys on this shape."""

    def sweep():
        rows = []
        reference = None
        for layout in ("row", "columnar"):
            engine = DbmsEngine(PlannerConfig(layout=layout))
            _load(engine)
            result = engine.execute(_join_query(engine))
            answer = [repr(row) for row in result.rows]
            if reference is None:
                reference = answer
            assert answer == reference  # bit-identical, same order
            assert result.plan["layout"] == layout
            rows.append(
                {
                    "layout": layout,
                    "duration (s)": result.wall_seconds,
                    "compute ops": result.cost.compute_ops,
                    "batches": result.cost.batches,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_banner("ablation", "execution layout on 2000⋈100 rows")
    print(ascii_table(rows))
    by_layout = {row["layout"]: row for row in rows}
    assert by_layout["row"]["batches"] == 0
    assert by_layout["columnar"]["batches"] > 0


def test_mapreduce_cluster_scaling(benchmark):
    """Companion substrate ablation: simulated cluster size vs makespan."""
    from repro.datagen.text import RandomTextGenerator
    from repro.engines.base import SimulatedClusterSpec
    from repro.engines.mapreduce import MapReduceEngine
    from repro.workloads import WordCountWorkload

    data = RandomTextGenerator(document_length=60, seed=31).generate(400)

    def sweep():
        rows = []
        for nodes in (1, 2, 4, 8):
            engine = MapReduceEngine(SimulatedClusterSpec(num_nodes=nodes))
            # Enough tasks that every cluster size has work to parallelise.
            result = WordCountWorkload().run(
                engine, data, num_map_tasks=32, num_reduce_tasks=16
            )
            rows.append(
                {"nodes": nodes,
                 "simulated makespan (s)": result.simulated_seconds}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_banner("ablation", "simulated cluster size (wordcount)")
    print(ascii_table(rows))
    makespans = [row["simulated makespan (s)"] for row in rows]
    assert makespans == sorted(makespans, reverse=True)


def test_straggler_and_speculation_ablation(benchmark):
    """The Dean & Ghemawat backup-task result on the cluster model: an
    unexpected 5×-slow node inflates the makespan; speculative execution
    recovers most of the loss."""
    from repro.datagen.text import RandomTextGenerator
    from repro.engines.base import SimulatedClusterSpec
    from repro.engines.mapreduce import MapReduceEngine
    from repro.workloads import WordCountWorkload

    data = RandomTextGenerator(document_length=60, seed=32).generate(400)
    specs = {
        "uniform cluster": SimulatedClusterSpec(num_nodes=4),
        "one 5x-slow node": SimulatedClusterSpec(
            num_nodes=4, node_speed_factors=(1.0, 1.0, 1.0, 0.2)
        ),
        "slow node + speculation": SimulatedClusterSpec(
            num_nodes=4, node_speed_factors=(1.0, 1.0, 1.0, 0.2),
            speculative_execution=True,
        ),
    }

    def sweep():
        rows = []
        for label, spec in specs.items():
            engine = MapReduceEngine(spec)
            result = WordCountWorkload().run(
                engine, data, num_map_tasks=32, num_reduce_tasks=16
            )
            rows.append(
                {"cluster": label,
                 "simulated makespan (s)": result.simulated_seconds}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_banner("ablation", "stragglers and speculative execution")
    print(ascii_table(rows))
    uniform, straggling, speculated = (
        row["simulated makespan (s)"] for row in rows
    )
    assert straggling > uniform
    assert uniform <= speculated < straggling
