"""E11 — Table 2's three workload categories, measured with the right
user-perceivable metric for each.

* online services → request latency (YCSB mix on the NoSQL store),
* offline analytics → job duration/throughput (sort, wordcount, PageRank),
* real-time analytics → keeping up with the arrival rate (windowed
  aggregation on the streaming engine).
"""

from __future__ import annotations

import pytest
from conftest import print_banner

from repro.execution.report import ascii_table
from repro.execution.runner import RunnerOptions, TestRunner

RUNNER = TestRunner(options=RunnerOptions(repeats=2))


def test_online_services_latency(benchmark):
    def run():
        return RUNNER.run("oltp-read-write", "nosql", 300,
                          operation_count=500)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("E11", "online services — request latency (YCSB A)")
    print(
        ascii_table(
            [{
                "mean latency (ms)": result.mean("mean_latency") * 1e3,
                "p95 (ms)": result.mean("latency_p95") * 1e3,
                "p99 (ms)": result.mean("latency_p99") * 1e3,
                "throughput (ops/s)": result.mean("throughput"),
            }]
        )
    )
    assert result.mean("latency_p99") >= result.mean("mean_latency")


@pytest.mark.parametrize(
    "prescription,volume",
    [("micro-sort", 300), ("micro-wordcount", 300), ("search-pagerank", 256)],
)
def test_offline_analytics_duration(benchmark, prescription, volume):
    def run():
        return RUNNER.run(prescription, "mapreduce", volume)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("E11", f"offline analytics — {prescription}")
    print(
        ascii_table(
            [{
                "duration (s)": result.mean("duration"),
                "throughput (rec/s)": result.mean("throughput"),
                "ops/s (architecture)": result.mean("ops_per_second"),
                "energy (J)": result.mean("energy"),
            }]
        )
    )
    assert result.mean("duration") > 0


def test_realtime_analytics_keeping_up(benchmark):
    from repro.datagen import PoissonArrivals, StreamGenerator
    from repro.engines.streaming import StreamingEngine
    from repro.workloads import WindowedAggregationWorkload

    stream = StreamGenerator(
        arrivals=PoissonArrivals(5000.0), key_space=8, seed=11
    ).generate(4000)

    def run_both_regimes():
        rows = []
        for label, service in (("keeping up", 50e-6), ("overloaded", 500e-6)):
            engine = StreamingEngine(service_seconds_per_event=service)
            result = WindowedAggregationWorkload().run(engine, stream)
            rows.append(
                {
                    "regime": label,
                    "arrival (ev/s)": result.extra["arrival_rate"],
                    "service (ev/s)": result.extra["service_rate"],
                    "keeps up": result.extra["keeps_up"],
                    "backlog (s)": result.extra["backlog_seconds"],
                    "max latency (ms)": max(result.latencies) * 1e3,
                }
            )
        return rows

    rows = benchmark.pedantic(run_both_regimes, rounds=2, iterations=1)
    print_banner("E11", "real-time analytics — processing speed vs arrivals")
    print(ascii_table(rows))
    assert rows[0]["keeps up"] and not rows[1]["keeps up"]
    assert rows[1]["backlog (s)"] > rows[0]["backlog (s)"]
