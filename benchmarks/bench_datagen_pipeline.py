"""E14 — the chunked dataset pipeline: throughput and peak memory.

Compares the two shapes of the data path on the same generator and
volume:

* **materialized** — ``generate(volume)`` builds the full record list;
* **chunked** — ``iter_batches(volume, chunk_size)`` streams
  ``RecordBatch`` chunks, holding one chunk at a time.

Each shape runs in its own subprocess so ``ru_maxrss`` is a clean
per-shape high-water mark (within one process the peak never resets).
The contract asserted here is the pipeline's core claim: the chunked
pass touches every record the materialized pass produces (same count,
same digest) while its peak RSS stays essentially flat as volume grows.

Each run appends a run-store-schema row (see ``_history``) to
``BENCH_datagen_pipeline.json`` so the throughput and memory numbers
accumulate into a perf trajectory across revisions.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from _history import append_history
from conftest import print_banner

from repro.execution.report import ascii_table

GENERATOR = "random-text"
VOLUME = 100_000
CHUNK_SIZES = (128, 1024, 8192)

RESULTS_FILE = Path(__file__).parent / "BENCH_datagen_pipeline.json"
SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

#: The child generates in the requested shape and reports elapsed
#: seconds, peak RSS, record count, and a record digest on stdout.
_CHILD = """
import hashlib
import json
import resource
import sys
import time

mode = sys.argv[1]            # "materialized" | "chunked"
volume = int(sys.argv[2])
chunk_size = int(sys.argv[3])

import repro
from repro.core import registry

generator = registry.generators.create({generator!r})
digest = hashlib.sha256()
started = time.perf_counter()
if mode == "materialized":
    records = generator.generate(volume).records
    count = len(records)
    for record in records:
        digest.update(record.encode())
else:
    count = 0
    for batch in generator.iter_batches(volume, chunk_size):
        count += len(batch)
        for record in batch:
            digest.update(record.encode())
elapsed = time.perf_counter() - started
print(json.dumps({{
    "seconds": elapsed,
    "peak_rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    * 1024,
    "records": count,
    "digest": digest.hexdigest(),
}}))
"""


def _run_shape(tmp_path: Path, mode: str, chunk_size: int = 0) -> dict:
    script = tmp_path / "pipeline_shape.py"
    script.write_text(_CHILD.format(generator=GENERATOR))
    completed = subprocess.run(
        [sys.executable, str(script), mode, str(VOLUME), str(chunk_size)],
        capture_output=True,
        text=True,
        timeout=600,
        env={"PYTHONPATH": SRC_DIR, "PATH": os.environ.get("PATH", "")},
        check=True,
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_chunked_vs_materialized_pipeline(benchmark, tmp_path):
    def drive():
        shapes = {"materialized": _run_shape(tmp_path, "materialized")}
        for chunk_size in CHUNK_SIZES:
            shapes[f"chunked-{chunk_size}"] = _run_shape(
                tmp_path, "chunked", chunk_size
            )
        return shapes

    shapes = benchmark.pedantic(drive, rounds=1, iterations=1)

    print_banner("E14", "chunked pipeline — throughput and peak RSS")
    print(
        ascii_table(
            [
                {
                    "shape": shape,
                    "records/s": data["records"] / data["seconds"],
                    "seconds": data["seconds"],
                    "peak RSS MB": data["peak_rss_bytes"] / 1e6,
                }
                for shape, data in shapes.items()
            ]
        )
    )

    # Contract 1: every shape visits the same records, bit for bit.
    reference = shapes["materialized"]
    assert reference["records"] == VOLUME
    for shape, data in shapes.items():
        assert data["records"] == reference["records"], shape
        assert data["digest"] == reference["digest"], shape

    # Contract 2: chunking bounds memory — every chunked shape's peak
    # stays below the materialized peak (the record list itself is tens
    # of MB at this volume, so the gap is structural, not noise).
    for chunk_size in CHUNK_SIZES:
        chunked = shapes[f"chunked-{chunk_size}"]
        assert chunked["peak_rss_bytes"] < reference["peak_rss_bytes"], (
            chunk_size
        )

    append_history(
        RESULTS_FILE,
        "datagen_pipeline.chunked_vs_materialized",
        {
            "generator": GENERATOR,
            "volume": VOLUME,
            "chunk_sizes": list(CHUNK_SIZES),
        },
        {
            "shapes": {
                shape: {
                    "seconds": data["seconds"],
                    "records_per_second": data["records"] / data["seconds"],
                    "peak_rss_bytes": data["peak_rss_bytes"],
                }
                for shape, data in shapes.items()
            },
        },
    )
