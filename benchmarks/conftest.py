"""Shared helpers for the benchmark harness.

Every benchmark prints the rows/series it regenerates (run with ``-s`` to
see them); pytest-benchmark records the timings.  EXPERIMENTS.md captures
paper-vs-measured for each experiment id (E1–E12) defined in DESIGN.md.
"""

from __future__ import annotations

import pytest


def print_banner(experiment: str, title: str) -> None:
    print(f"\n=== {experiment}: {title} " + "=" * max(0, 60 - len(title)))


@pytest.fixture(scope="session")
def framework():
    from repro import BigDataBenchmark

    return BigDataBenchmark()
