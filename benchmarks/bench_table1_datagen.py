"""E1 — regenerate Table 1: data-generation techniques of ten suites.

The rows are *derived* from capability facts by the classification rules
of Section 4.1; the benchmark asserts a cell-for-cell match with the
published table and additionally classifies this repository's own
generators on the same axes (showing they reach the Section 5.1 goal of
full velocity control).
"""

from __future__ import annotations

from conftest import print_banner

from repro.core import registry
from repro.execution.report import ascii_table
from repro.suites import (
    PAPER_TABLE1,
    classify_generator,
    generate_table1,
    table1_matches_paper,
)


def _rows():
    return [
        {
            "Benchmark efforts": row.benchmark,
            "Volume": row.volume,
            "Velocity": row.velocity,
            "Variety (data sources)": row.variety,
            "Veracity": row.veracity,
        }
        for row in generate_table1()
    ]


def test_table1_matches_paper(benchmark):
    rows = benchmark(generate_table1)
    assert len(rows) == len(PAPER_TABLE1)
    matches, mismatches = table1_matches_paper()
    assert matches, mismatches
    print_banner("E1", "Table 1 — data generation techniques (derived)")
    print(ascii_table(_rows()))
    print("row-for-row match with the published table: YES")


def test_own_generators_reach_section51_goal(benchmark):
    def classify_all():
        return [
            classify_generator(registry.generators.create(name))
            for name in registry.generators.names()
        ]

    rows = benchmark(classify_all)
    print_banner("E1b", "this framework's generators on the same axes")
    print(
        ascii_table(
            [
                {
                    "Generator": row.benchmark,
                    "Volume": row.volume,
                    "Velocity": row.velocity,
                    "Variety": row.variety,
                    "Veracity": row.veracity,
                }
                for row in rows
            ]
        )
    )
    assert all(row.velocity == "Fully controllable" for row in rows)
    assert all(row.volume == "Scalable" for row in rows)
