"""CI gate for the tuning-ablation matrix.

Reads the JSON report emitted by ``repro ablate --style json`` and
enforces the subsystem's headline property: the documented ``optimized``
DBMS profile must never come out ``regressed`` against ``normal`` on
any workload in the matrix.  (MapReduce is reported but not gated: its
combiner knobs honestly regress wall-clock at CI-sized volumes — the
whole point of the ablation is to show that, not hide it.)

Every gated verdict is also appended to ``BENCH_tuning_ablation.json``
through the shared :mod:`_history` helper, so the delta/p-value
trajectory of the optimized profile accumulates across revisions in the
run-store record schema.

Exit codes: 0 — no gated cell regressed; 1 — at least one optimized
DBMS cell regressed vs normal; 2 — the report has no gated cells to
check (treat as a failure in CI: the ablation did not run or did not
judge).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from _history import append_history

GATED_ENGINE = "dbms"
GATED_PROFILE = "optimized"
DEFAULT_REPORT = Path("ablation-report.json")
HISTORY_FILE = Path(__file__).parent / "BENCH_tuning_ablation.json"


def gate(report_path: Path = DEFAULT_REPORT,
         history_path: Path = HISTORY_FILE) -> int:
    if not report_path.exists():
        print(f"gate: {report_path} does not exist", file=sys.stderr)
        return 2
    report = json.loads(report_path.read_text())
    gated = [
        verdict
        for verdict in report.get("verdicts", [])
        if verdict["engine"] == GATED_ENGINE
        and verdict["profile"] == GATED_PROFILE
    ]
    if not gated:
        print(
            f"gate: no {GATED_PROFILE!r} {GATED_ENGINE!r} verdicts in "
            f"{report_path}",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for verdict in gated:
        lead = verdict["comparison"]["metrics"].get(verdict["metric"], {})
        delta = lead.get("relative_delta")
        p_value = lead.get("p_value")
        rendered_delta = "?" if delta is None else f"{delta:+.1%}"
        rendered_p = "?" if p_value is None else f"{p_value:.4f}"
        regressed = verdict["verdict"] == "regressed"
        print(
            f"{verdict['prescription']}  {GATED_ENGINE}/{GATED_PROFILE}  "
            f"{verdict['metric']} {rendered_delta} (p={rendered_p})  "
            f"{'REGRESSED' if regressed else verdict['verdict']}"
        )
        append_history(
            history_path,
            "tuning_ablation.optimized_dbms",
            fingerprint={
                "prescription": verdict["prescription"],
                "engine": GATED_ENGINE,
                "profile": GATED_PROFILE,
                "metric": verdict["metric"],
                "repeats": report.get("repeats"),
                "seed": report.get("seed"),
            },
            measurements={
                "relative_delta": delta,
                "ci_low": lead.get("ci_low"),
                "ci_high": lead.get("ci_high"),
                "p_value": p_value,
                "verdict": verdict["verdict"],
            },
        )
        if regressed:
            failures += 1
    if failures:
        print(
            f"gate: {failures} of {len(gated)} optimized {GATED_ENGINE} "
            f"cells regressed vs normal — the documented tuned profile "
            f"lost to the bare engine",
            file=sys.stderr,
        )
        return 1
    print(
        f"gate: all {len(gated)} optimized {GATED_ENGINE} cells held "
        f"(never regressed vs normal)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(
        gate(Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_REPORT)
    )
