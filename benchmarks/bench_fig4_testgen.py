"""E6 — Figure 4: the five-step test-generation process.

Builds prescriptions for three application domains, binds each to every
engine its workload supports, and runs the prescribed tests — step 5's
"prescribed test for a specific system and software stack".
"""

from __future__ import annotations

import pytest
from conftest import print_banner

from repro.core.test_generator import TestGenerator
from repro.execution.report import ascii_table

CASES = {
    "basic database operations": ("database-aggregate-join", 80),
    "cloud OLTP": ("oltp-read-write", 100),
    "micro benchmarks": ("micro-wordcount", 80),
}


@pytest.mark.parametrize("domain", sorted(CASES))
def test_generate_and_bind(benchmark, domain):
    prescription_name, volume = CASES[domain]
    generator = TestGenerator()

    def generate_all():
        return generator.generate_for_all_engines(prescription_name, volume)

    tests = benchmark.pedantic(generate_all, rounds=2, iterations=1)
    rows = []
    for test in tests:
        result = test.run()
        rows.append(
            {
                "prescribed test": test.name,
                "engine": test.engine.name,
                "stack": test.engine.info.software_stack,
                "records in": result.records_in,
                "records out": result.records_out,
            }
        )
    print_banner("E6", f"test generation — {domain}")
    print(ascii_table(rows))
    assert len(tests) >= 1


def test_custom_prescription_roundtrip(benchmark):
    """Steps 2-4 driven manually: operations → pattern → prescription."""
    from repro.core.operations import operations
    from repro.core.patterns import MultiOperationPattern
    from repro.core.prescription import DataRequirement
    from repro.datagen.base import DataType

    def build_and_run():
        generator = TestGenerator()
        prescription = generator.make_prescription(
            name="bench-custom-grep",
            domain="micro benchmarks",
            data=DataRequirement("random-text", DataType.TEXT, volume=60),
            operations=operations("grep"),
            pattern=MultiOperationPattern(operations("grep")),
            workload="grep",
            params={"pattern_text": "stone"},
        )
        test = generator.generate(prescription, "mapreduce")
        return test.run()

    result = benchmark.pedantic(build_and_run, rounds=2, iterations=1)
    print_banner("E6", "custom prescription assembled from parts")
    print(f"  matched {result.records_out}/{result.records_in} documents")
    assert result.records_in == 60
