"""E7 — volume scalability: generation time vs data volume.

Section 2.1's volume requirement: generators "must be able to generate
different volumes of data".  Expected shape: near-linear growth of
generation time with volume for every data type (doubling volume must
not blow up super-linearly).
"""

from __future__ import annotations

import time

import pytest
from conftest import print_banner

from repro.core.prescription import load_seed
from repro.datagen import (
    FittedTableGenerator,
    RmatGraphGenerator,
    StreamGenerator,
    UnigramTextGenerator,
)
from repro.datagen.kv import KeyValueGenerator
from repro.execution.report import ascii_table

VOLUMES = (200, 400, 800, 1600)


def _sweep(generator, volumes=VOLUMES):
    rows = []
    for volume in volumes:
        started = time.perf_counter()
        dataset = generator.generate(volume)
        elapsed = time.perf_counter() - started
        rows.append(
            {"volume": volume, "seconds": elapsed,
             "records": dataset.num_records,
             "rate (rec/s)": dataset.num_records / elapsed if elapsed else 0}
        )
    return rows


def _assert_no_superlinear_blowup(rows, tolerance=4.0):
    """Per-record time at the largest volume must not exceed the smallest
    volume's by more than `tolerance`× — i.e. growth stays ~linear.
    (Per-record time *falling* with volume is fine: constant overheads
    amortise.)"""
    first = rows[0]["seconds"] / rows[0]["volume"]
    last = rows[-1]["seconds"] / rows[-1]["volume"]
    assert last <= tolerance * first + 1e-9


@pytest.mark.parametrize(
    "name,factory",
    [
        ("text", lambda: UnigramTextGenerator(seed=1).fit(load_seed("text-corpus"))),
        ("table", lambda: FittedTableGenerator(seed=2).fit(load_seed("retail-orders"))),
        ("graph", lambda: RmatGraphGenerator(seed=3)),
        ("stream", lambda: StreamGenerator(seed=4)),
        ("key-value", lambda: KeyValueGenerator(field_count=4, field_length=20, seed=5)),
    ],
)
def test_volume_scaling(benchmark, name, factory):
    generator = factory()
    rows = benchmark.pedantic(_sweep, args=(generator,), rounds=1, iterations=1)
    print_banner("E7", f"volume sweep — {name}")
    print(ascii_table(rows))
    _assert_no_superlinear_blowup(rows)
    # Volume is controlled exactly: record counts scale with the requested
    # volume (graphs measure volume in vertices but emit edges, a constant
    # factor more records).
    unit = rows[0]["records"] / VOLUMES[0]
    assert [row["records"] for row in rows] == [
        int(unit * volume) for volume in VOLUMES
    ]


def test_workload_time_scales_with_volume(benchmark, framework):
    """Downstream view: execution time also tracks data volume."""
    from repro.execution.harness import BenchmarkHarness

    harness = BenchmarkHarness()

    def sweep():
        return harness.volume_sweep(
            "micro-wordcount", "mapreduce", [100, 200, 400]
        )

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = report.series("duration")
    print_banner("E7", "workload duration vs input volume (wordcount)")
    print(ascii_table([{"volume": v, "duration_s": d} for v, d in series]))
    assert series[-1][1] > series[0][1]
