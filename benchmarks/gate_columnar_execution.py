"""CI gate for the vectorized series of ``BENCH_columnar_execution.json``.

Enforces the columnar refactor's headline property: batch-at-a-time
execution must be at least row-speed on the hot shapes — i.e.
``speedup_vs_row >= 1.0`` for scan, filter, and aggregate on **every**
row of the ``columnar_execution.vectorized`` series.  Run it on a file
freshly extended by ``bench_columnar_execution.py`` so the newest row
reflects the revision under test.

Exit codes: 0 — every row holds the bound; 1 — at least one row
regressed below it; 2 — no vectorized rows to check (treat as a
failure in CI: the bench did not run or did not record).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SERIES = "columnar_execution.vectorized"
GATED_QUERIES = ("scan", "filter", "aggregate")
THRESHOLD = 1.0
DEFAULT_FILE = Path(__file__).parent / "BENCH_columnar_execution.json"


def gate(path: Path = DEFAULT_FILE, threshold: float = THRESHOLD) -> int:
    if not path.exists():
        print(f"gate: {path} does not exist", file=sys.stderr)
        return 2
    rows = [
        row
        for row in json.loads(path.read_text())
        if row.get("fingerprint", {}).get("benchmark") == SERIES
    ]
    if not rows:
        print(f"gate: no {SERIES!r} rows in {path}", file=sys.stderr)
        return 2
    failures = 0
    for row in rows:
        speedups = row["measurements"]["speedup_vs_row"]
        stamp = row.get("created_at") or row.get("timestamp", "?")
        regressed = [
            name
            for name in GATED_QUERIES
            if speedups[name] < threshold
        ]
        verdict = "ok" if not regressed else "REGRESSED"
        rendered = "  ".join(
            f"{name}={speedups[name]:.3f}" for name in GATED_QUERIES
        )
        print(
            f"{stamp}  speedup_vs_row: {rendered} "
            f"(each >= {threshold:.1f})  {verdict}"
        )
        if regressed:
            failures += 1
    if failures:
        print(
            f"gate: {failures} of {len(rows)} vectorized rows below "
            f"{threshold:.1f}x — columnar execution lost to the row path",
            file=sys.stderr,
        )
        return 1
    print(
        f"gate: all {len(rows)} vectorized rows hold >= {threshold:.1f}x "
        f"on {', '.join(GATED_QUERIES)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(gate(Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_FILE))
