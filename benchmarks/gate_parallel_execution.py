"""CI gate for the warm-pool series of ``BENCH_parallel_execution.json``.

Enforces the process backend's headline property: in steady state a warm
process pool must be at least as fast as the cold serial path — i.e.
``speedup_vs_serial.process >= 1.0`` on **every** row of the
``parallel_execution.warm_pool`` series.  Run it on a file freshly
extended by ``bench_parallel_execution.py`` so the newest row reflects
the revision under test.

Exit codes: 0 — every row holds the bound; 1 — at least one row
regressed below it; 2 — no warm-pool rows to check (treat as a failure
in CI: the bench did not run or did not record).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SERIES = "parallel_execution.warm_pool"
THRESHOLD = 1.0
DEFAULT_FILE = Path(__file__).parent / "BENCH_parallel_execution.json"


def gate(path: Path = DEFAULT_FILE, threshold: float = THRESHOLD) -> int:
    if not path.exists():
        print(f"gate: {path} does not exist", file=sys.stderr)
        return 2
    rows = [
        row
        for row in json.loads(path.read_text())
        # Older rows kept the benchmark name at the top level; newer
        # ones carry it inside the run-store-style fingerprint.
        if (row.get("fingerprint", {}).get("benchmark") or row.get("benchmark"))
        == SERIES
    ]
    if not rows:
        print(f"gate: no {SERIES!r} rows in {path}", file=sys.stderr)
        return 2
    failures = 0
    for row in rows:
        speedup = row["measurements"]["speedup_vs_serial"]["process"]
        stamp = row.get("created_at") or row.get("timestamp", "?")
        verdict = "ok" if speedup >= threshold else "REGRESSED"
        print(
            f"{stamp}  process speedup_vs_serial = {speedup:.3f} "
            f"(>= {threshold:.1f})  {verdict}"
        )
        if speedup < threshold:
            failures += 1
    if failures:
        print(
            f"gate: {failures} of {len(rows)} warm-pool rows below "
            f"{threshold:.1f}x — the process backend lost to serial",
            file=sys.stderr,
        )
        return 1
    print(f"gate: all {len(rows)} warm-pool rows hold >= {threshold:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(
        gate(Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_FILE)
    )
