"""E9 — veracity metrics and the veracity-aware vs -unaware ablation.

Section 5.1 proposes measuring data veracity with statistical divergences
(the paper's worked example: topic/word distributions compared via KL).
Expected shape: model-fitted generators (LDA text, R-MAT graphs, fitted
tables) score strictly better (lower divergence from the real data) than
veracity-unaware baselines (uniform random text, Erdős–Rényi graphs,
uniform tables).
"""

from __future__ import annotations

from conftest import print_banner

from repro.core.prescription import load_seed
from repro.datagen import (
    ErdosRenyiGenerator,
    LdaTextGenerator,
    RandomTextGenerator,
    RmatGraphGenerator,
    UnigramTextGenerator,
    graph_veracity,
    table_veracity,
    text_veracity,
)
from repro.datagen.table import (
    FittedTableGenerator,
    SequentialKey,
    TableGenerator,
    TableSchema,
    UniformInt,
)
from repro.execution.report import ascii_table


def test_text_veracity_ablation(benchmark):
    corpus = load_seed("text-corpus")

    def compare():
        lda = LdaTextGenerator(iterations=10, seed=1).fit(corpus)
        unigram = UnigramTextGenerator(seed=1).fit(corpus)
        random_text = RandomTextGenerator(seed=1)
        rows = []
        for label, generator in (
            ("LDA (full model)", lda),
            ("unigram (marginals only)", unigram),
            ("random words (un-considered)", random_text),
        ):
            report = text_veracity(
                corpus.records, generator.generate(120).records
            )
            rows.append(
                {
                    "generator": label,
                    "JS divergence": report.score,
                    "KL divergence": report.metrics["kl_real_vs_synthetic"],
                    "vocab Jaccard": report.metrics["vocabulary_jaccard"],
                    "faithful": report.is_faithful,
                }
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_banner("E9", "text veracity — model-fitted vs baselines")
    print(ascii_table(rows))
    lda_score, unigram_score, random_score = (row["JS divergence"] for row in rows)
    assert lda_score < random_score / 10  # model-fitted wins decisively
    assert unigram_score < random_score / 10
    assert not rows[2]["faithful"]


def test_topic_structure_ablation(benchmark):
    """The paper's worked example completed: word distributions alone
    cannot separate LDA from a unigram model (both match the marginals);
    the *topic* distributions do.  Expected shape: LDA's topical
    concentration matches the real corpus; unigram documents are flat."""
    from repro.datagen import topic_structure_veracity

    corpus = load_seed("text-corpus")

    def compare():
        lda = LdaTextGenerator(iterations=12, seed=5).fit(corpus)
        unigram = UnigramTextGenerator(seed=5).fit(corpus)
        rows = []
        for label, generator in (
            ("LDA (topics modelled)", lda),
            ("unigram (topics lost)", unigram),
        ):
            report = topic_structure_veracity(
                corpus.records, generator.generate(120).records, lda.model
            )
            rows.append(
                {
                    "generator": label,
                    "topic-structure JS": report.score,
                    "mean dominant-topic share":
                        report.metrics["mean_share_synthetic"],
                    "faithful": report.is_faithful,
                }
            )
        rows.append({"generator": "(real corpus reference)",
                     "topic-structure JS": 0.0,
                     "mean dominant-topic share":
                         report.metrics["mean_share_real"],
                     "faithful": True})
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_banner("E9", "topic-structure veracity — where LDA beats unigram")
    print(ascii_table(rows))
    assert rows[0]["topic-structure JS"] < rows[1]["topic-structure JS"] / 3
    assert rows[0]["faithful"] and not rows[1]["faithful"]


def test_graph_veracity_ablation(benchmark):
    graph = load_seed("social-graph")

    def compare():
        rmat = RmatGraphGenerator(seed=2).fit(graph)
        erdos = ErdosRenyiGenerator(
            edges_per_vertex=rmat.edges_per_vertex, seed=2
        )
        rows = []
        for label, generator in (
            ("R-MAT fitted (considered)", rmat),
            ("Erdős–Rényi (un-considered)", erdos),
        ):
            report = graph_veracity(
                graph.records, generator.generate(512).records
            )
            rows.append(
                {
                    "generator": label,
                    "degree-dist JS": report.score,
                    "avg degree": report.metrics["avg_degree_synthetic"],
                    "faithful": report.is_faithful,
                }
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=2, iterations=1)
    print_banner("E9", "graph veracity — fitted R-MAT vs Erdős–Rényi")
    print(ascii_table(rows))
    assert rows[0]["degree-dist JS"] < rows[1]["degree-dist JS"]


def test_table_veracity_ablation(benchmark):
    orders = load_seed("retail-orders")

    def compare():
        fitted = FittedTableGenerator(seed=3).fit(orders)
        naive_schema = TableSchema("orders-naive")
        naive_schema.add("order_id", SequentialKey())
        naive_schema.add("customer_id", UniformInt(0, 200))
        naive_schema.add("product_id", UniformInt(0, 100))
        naive_schema.add("quantity", UniformInt(1, 6))
        naive_schema.add("day", UniformInt(0, 365))
        uniform = TableGenerator(naive_schema, seed=3)
        rows = []
        for label, generator in (
            ("fitted per-column (considered)", fitted),
            ("uniform columns (un-considered)", uniform),
        ):
            report = table_veracity(
                orders.records, generator.generate(600).records
            )
            rows.append(
                {"generator": label, "mean column JS": report.score,
                 "faithful": report.is_faithful}
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=2, iterations=1)
    print_banner("E9", "table veracity — fitted vs uniform columns")
    print(ascii_table(rows))
    assert rows[0]["mean column JS"] < rows[1]["mean column JS"]


def test_model_vs_data_metrics(benchmark):
    """Section 5.1's two metric types: (1) raw data vs the model,
    (2) raw data vs the synthetic data."""
    from repro.datagen import model_veracity, word_distribution

    corpus = load_seed("text-corpus")

    def both_metrics():
        lda = LdaTextGenerator(iterations=10, seed=4).fit(corpus)
        real_distribution = word_distribution(corpus.records)
        model_distribution = {
            lda.model.vocabulary.word_of(i): p
            for i, p in enumerate(lda.model.topic_distribution())
        }
        metric_one = model_veracity(real_distribution, model_distribution,
                                    data_type="text-model")
        synthetic = lda.generate(120)
        metric_two = text_veracity(corpus.records, synthetic.records)
        return metric_one, metric_two

    metric_one, metric_two = benchmark.pedantic(
        both_metrics, rounds=1, iterations=1
    )
    print_banner("E9", "metric type 1 (data vs model) and type 2 (data vs synthetic)")
    print(
        ascii_table(
            [
                {"metric": "raw data vs constructed model",
                 "JS": metric_one.score, "faithful": metric_one.is_faithful},
                {"metric": "raw data vs synthetic data",
                 "JS": metric_two.score, "faithful": metric_two.is_faithful},
            ]
        )
    )
    assert metric_one.is_faithful
    assert metric_two.is_faithful
