"""E14 — batch-at-a-time columnar execution vs the row oracle.

Runs four query shapes (projection scan, selective filter, grouped
aggregate, equi-join) on the same relational engine under both
execution layouts and verifies the refactor's two contracts:

1. **bit-identity** — the columnar plan returns exactly the rows the
   row-at-a-time plan returns, in the same order (the row path is the
   correctness oracle; compared by ``repr`` so ``1`` vs ``1.0`` and
   ``True`` vs ``1`` cannot slip through);
2. **no slower on the hot shapes** — at the largest volume the
   vectorized scan/filter/aggregate are at least row-speed
   (``speedup_vs_row >= 1.0``), the property the CI gate
   ``gate_columnar_execution.py`` enforces on every recorded row.

Each run appends a run-store-schema row (see ``_history``) to
``BENCH_columnar_execution.json`` so the row-vs-columnar deltas
accumulate into a perf trajectory across revisions.
"""

from __future__ import annotations

import random
import time
from pathlib import Path

from _history import append_history
from conftest import print_banner

from repro.engines.dbms import Aggregate, DbmsEngine, col, lit
from repro.engines.dbms.planner import JoinSpec, Query
from repro.execution.report import ascii_table

VOLUMES = (2_000, 8_000, 20_000)
QUERIES = ("scan", "filter", "aggregate", "join")
#: The shapes the CI gate bounds at the largest volume.
GATED_QUERIES = ("scan", "filter", "aggregate")
TIMING_ROUNDS = 5
SERIES = "columnar_execution.vectorized"

RESULTS_FILE = Path(__file__).parent / "BENCH_columnar_execution.json"


def _build_engine(volume: int) -> DbmsEngine:
    rng = random.Random(volume)
    engine = DbmsEngine()
    engine.create_table("events", ["id", "user", "amount", "category"])
    engine.insert(
        "events",
        [
            (
                i,
                f"user{i % 500}",
                rng.randint(1, 1000),
                f"cat{i % 20}",
            )
            for i in range(volume)
        ],
    )
    engine.create_table("categories", ["name", "weight"])
    engine.insert("categories", [(f"cat{i}", i * 10) for i in range(20)])
    return engine


def _queries() -> dict[str, Query]:
    return {
        "scan": Query(
            table="events",
            projection=[("id", col("id")), ("amount", col("amount"))],
        ),
        "filter": Query(
            table="events",
            predicate=col("amount") > lit(500),
            projection=[
                ("id", col("id")),
                ("user", col("user")),
                ("amount", col("amount")),
            ],
        ),
        "aggregate": Query(
            table="events",
            group_by=["category"],
            aggregates=[
                Aggregate("sum", "amount", "total"),
                Aggregate("count", None, "n"),
            ],
        ),
        "join": Query(
            table="events",
            joins=[JoinSpec("categories", "category", "name")],
            predicate=col("amount") > lit(800),
            projection=[("id", col("id")), ("weight", col("weight"))],
        ),
    }


def _best_of(action, rounds: int = TIMING_ROUNDS) -> float:
    """Min-of-N wall time: the least-noisy point estimate per shape."""
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        action()
        times.append(time.perf_counter() - started)
    return min(times)


def _measure_volume(volume: int) -> dict[str, dict[str, float]]:
    engine = _build_engine(volume)
    measurements: dict[str, dict[str, float]] = {}
    # Warm the columnar view once: the transpose is a cached one-time
    # cost of the storage layout, not a per-query cost.
    engine.execute(_queries()["scan"], layout="columnar")
    for name, query in _queries().items():
        row_result = engine.execute(query, layout="row")
        columnar_result = engine.execute(query, layout="columnar")
        assert columnar_result.plan["layout"] == "columnar", name
        assert [repr(r) for r in row_result.rows] == [
            repr(r) for r in columnar_result.rows
        ], f"{name}@{volume}: columnar result diverged from the row oracle"
        row_seconds = _best_of(lambda: engine.execute(query, layout="row"))
        columnar_seconds = _best_of(
            lambda: engine.execute(query, layout="columnar")
        )
        measurements[name] = {
            "row_seconds": row_seconds,
            "columnar_seconds": columnar_seconds,
            "speedup": row_seconds / columnar_seconds,
        }
    return measurements


def test_columnar_vs_row(benchmark):
    def drive():
        return {
            str(volume): _measure_volume(volume) for volume in VOLUMES
        }

    by_volume = benchmark.pedantic(drive, rounds=1, iterations=1)
    largest = by_volume[str(max(VOLUMES))]
    speedups = {name: largest[name]["speedup"] for name in QUERIES}

    print_banner("E14", "columnar execution — row vs batch-at-a-time")
    print(
        ascii_table(
            [
                {
                    "query": name,
                    "row_ms": f"{largest[name]['row_seconds'] * 1e3:.2f}",
                    "columnar_ms": (
                        f"{largest[name]['columnar_seconds'] * 1e3:.2f}"
                    ),
                    "speedup": f"{speedups[name]:.2f}x",
                }
                for name in QUERIES
            ]
        )
    )

    # The property the CI gate enforces on this series: the vectorized
    # hot shapes must not lose to the row oracle they replace.
    for name in GATED_QUERIES:
        assert speedups[name] >= 1.0, (
            f"columnar {name} is slower than row at volume {max(VOLUMES)}: "
            f"{speedups[name]:.2f}x"
        )

    append_history(
        RESULTS_FILE,
        SERIES,
        {
            "volumes": list(VOLUMES),
            "queries": list(QUERIES),
            "timing": f"best of {TIMING_ROUNDS}",
        },
        {
            "by_volume": by_volume,
            "speedup_vs_row": speedups,
        },
    )
