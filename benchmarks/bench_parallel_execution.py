"""E13 — the parallel execution layer and the deterministic dataset cache.

Times the same cross-engine comparison (``database-aggregate-join`` on
DBMS, MapReduce, and NoSQL — the paper's functional-view experiment) on
each executor backend and verifies the layer's two contracts:

1. **determinism** — every backend reports identical means for the
   deterministic metrics (simulated-cluster and seeded-latency metrics;
   wall-clock timings are measurements, not answers);
2. **no redundant generation** — the dataset cache serves one generated
   data set to all three engines (1 miss, N−1 hits).

Each run appends a run-store-schema row (see ``_history``) to
``BENCH_parallel_execution.json`` so the serial/thread/process timings
accumulate into a perf trajectory across revisions.  On multi-core
hosts the pooled backends overlap independent engine runs; on a single
core they can only tie serial, so the timing columns are recorded, not
asserted.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest
from _history import append_history
from conftest import print_banner

from repro.execution.harness import BenchmarkHarness
from repro.execution.report import ascii_table
from repro.execution.runner import RunnerOptions, TestRunner

ENGINES = ["dbms", "mapreduce", "nosql"]
PRESCRIPTION = "database-aggregate-join"
VOLUME = 300
BACKENDS = ("serial", "thread", "process")

#: Metrics whose means must match across backends (see
#: tests/execution/test_parallel.py for the per-engine rationale).
DETERMINISTIC_METRICS = {
    "mapreduce": [
        "throughput", "ops_per_second", "data_rate",
        "network_rate", "energy", "cost",
    ],
    "nosql": ["throughput", "mean_latency", "latency_p95", "latency_p99"],
    "dbms": [],
}

RESULTS_FILE = Path(__file__).parent / "BENCH_parallel_execution.json"


def _deterministic_means(results) -> dict[str, float]:
    means = {}
    for result in results:
        for name in DETERMINISTIC_METRICS[result.engine]:
            if name in result.metrics:
                means[f"{result.engine}.{name}"] = result.mean(name)
    return means


def _timed_compare(backend: str):
    options = RunnerOptions(executor=backend, max_workers=len(ENGINES))
    with TestRunner(options=options) as runner:
        harness = BenchmarkHarness(runner)
        started = time.perf_counter()
        analyzer = harness.compare_engines(PRESCRIPTION, ENGINES, VOLUME)
        elapsed = time.perf_counter() - started
        cache_stats = runner.test_generator.dataset_cache.stats().as_dict()
    return elapsed, analyzer.results, cache_stats


def test_executor_backends_cross_engine(benchmark):
    def drive():
        measurements = {}
        for backend in BACKENDS:
            elapsed, results, cache_stats = _timed_compare(backend)
            measurements[backend] = {
                "seconds": elapsed,
                "means": _deterministic_means(results),
                "cache": cache_stats,
            }
        return measurements

    measurements = benchmark.pedantic(drive, rounds=2, iterations=1)

    print_banner("E13", "executor backends — cross-engine comparison")
    print(
        ascii_table(
            [
                {
                    "backend": backend,
                    "seconds": data["seconds"],
                    "vs serial": data["seconds"]
                    / measurements["serial"]["seconds"],
                    "cache hits": data["cache"]["hits"],
                    "cache misses": data["cache"]["misses"],
                }
                for backend, data in measurements.items()
            ]
        )
    )

    # Contract 1: identical deterministic metric means on every backend.
    serial_means = measurements["serial"]["means"]
    assert serial_means, "expected deterministic metrics to compare"
    for backend in BACKENDS:
        assert measurements[backend]["means"] == serial_means, backend

    # Contract 2: one generation feeds all engines (serial and thread
    # share the parent cache; process workers regenerate independently).
    for backend in ("serial", "thread"):
        assert measurements[backend]["cache"]["misses"] == 1
        assert measurements[backend]["cache"]["hits"] == len(ENGINES) - 1

    append_history(
        RESULTS_FILE,
        "parallel_execution.cross_engine",
        {
            "prescription": PRESCRIPTION,
            "volume": VOLUME,
            "engines": ENGINES,
        },
        {
            "seconds": {
                backend: measurements[backend]["seconds"]
                for backend in BACKENDS
            },
            "speedup_vs_serial": {
                backend: measurements["serial"]["seconds"]
                / measurements[backend]["seconds"]
                for backend in BACKENDS
            },
        },
    )


#: Volume for the warm-pool series: large enough that the generation
#: work a warm batch avoids clearly exceeds the pool's IPC cost, so the
#: speedup holds even on a single-core host.
WARM_VOLUME = 4000


def test_warm_pool_steady_state(benchmark):
    """E13b — the warm process pool vs the cold one-shot path.

    Both sides pay what a caller actually pays per comparison.  The
    cold column is the historical cost of every batch: a fresh runner,
    data set generated from scratch, engines built, everything torn
    down after (measured on the serial backend — the cold process path
    additionally paid pool spawning and per-task payloads, so serial is
    the *stricter* baseline).  The warm column is a batch on a process
    runner whose pool already served one batch: workers hold their
    engines and dataset caches, tasks ship as descriptors.  The pool's
    one-time spawn cost is reported separately as ``warmup_seconds``.

    On a single core the workers cannot overlap, so the entire reported
    speedup is overhead actually removed — generation skipped via
    shipped handles, pool reuse, batched submission — not parallelism.
    """

    def drive():
        cold_seconds = []
        for _ in range(5):
            started = time.perf_counter()
            with TestRunner(options=RunnerOptions(executor="serial")) as runner:
                analyzer = BenchmarkHarness(runner).compare_engines(
                    PRESCRIPTION, ENGINES, WARM_VOLUME
                )
            cold_seconds.append(time.perf_counter() - started)
        serial_means = _deterministic_means(analyzer.results)

        options = RunnerOptions(executor="process", max_workers=len(ENGINES))
        runner = TestRunner(options=options)
        try:
            harness = BenchmarkHarness(runner)
            started = time.perf_counter()
            harness.compare_engines(PRESCRIPTION, ENGINES, WARM_VOLUME)
            warmup_seconds = time.perf_counter() - started
            warm_seconds = []
            for _ in range(5):
                started = time.perf_counter()
                analyzer = harness.compare_engines(
                    PRESCRIPTION, ENGINES, WARM_VOLUME
                )
                warm_seconds.append(time.perf_counter() - started)
            process_means = _deterministic_means(analyzer.results)
            pool = runner._worker_pool
            pool_stats = {
                "batches": pool.batches,
                "exports": len(pool.exports),
            }
        finally:
            runner.close()
        return {
            "serial_cold": min(cold_seconds),
            "process_warm": min(warm_seconds),
            "warmup_seconds": warmup_seconds,
            "serial_means": serial_means,
            "process_means": process_means,
            "pool": pool_stats,
        }

    data = benchmark.pedantic(drive, rounds=1, iterations=1)
    speedup = data["serial_cold"] / data["process_warm"]

    print_banner("E13b", "warm process pool — steady state vs cold one-shot")
    print(
        ascii_table(
            [
                {
                    "path": "serial (cold, per-batch setup)",
                    "seconds": data["serial_cold"],
                    "speedup": 1.0,
                },
                {
                    "path": "process (warm pool, steady state)",
                    "seconds": data["process_warm"],
                    "speedup": speedup,
                },
            ]
        )
    )
    print(
        f"one-time pool warmup: {data['warmup_seconds'] * 1000:.1f} ms, "
        f"batches served: {data['pool']['batches']}, "
        f"datasets exported: {data['pool']['exports']}"
    )

    # Contract 1: the warm pool reproduces serial metrics exactly.
    assert data["serial_means"], "expected deterministic metrics to compare"
    assert data["process_means"] == data["serial_means"]
    # Contract 2: steady-state process is at least serial-fast — the
    # property the CI regression gate enforces on this series.
    assert speedup >= 1.0

    append_history(
        RESULTS_FILE,
        "parallel_execution.warm_pool",
        {
            "prescription": PRESCRIPTION,
            "volume": WARM_VOLUME,
            "engines": ENGINES,
        },
        {
            "seconds": {
                "serial": data["serial_cold"],
                "process": data["process_warm"],
            },
            "speedup_vs_serial": {
                "serial": 1.0,
                "process": speedup,
            },
            "warmup_seconds": data["warmup_seconds"],
            "pool": data["pool"],
        },
    )


def test_dataset_cache_scaling(benchmark):
    """Cache value grows with repeats × engines: still exactly one miss."""

    def drive():
        options = RunnerOptions(repeats=3)
        with TestRunner(options=options) as runner:
            runner.run_on_engines(PRESCRIPTION, ENGINES, VOLUME)
            return runner.test_generator.dataset_cache.stats().as_dict()

    stats = benchmark.pedantic(drive, rounds=2, iterations=1)
    print_banner("E13", "dataset cache — one generation per unique request")
    print(ascii_table([stats]))
    assert stats["misses"] == 1
    assert stats["hits"] == len(ENGINES) - 1
    assert stats["hit_rate"] == pytest.approx((len(ENGINES) - 1) / len(ENGINES))
