"""E12 — hybrid workloads vs isolated workloads (Section 5.2 ablation).

The paper argues no existing benchmark supports "the truly hybrid
workload … the mix of various data processing operations and their
arriving rates and sequences".  This benchmark runs the hybrid workload
(serving traffic + interleaved analytics scans) against a serving-only
run on identical stores, and drives the mix from an arrival pattern
profiled from generated web logs.

Expected shape: analytics interleaving inflates total service time and
the serving operations' tail is visible next to the scan latencies —
interference a single-category benchmark cannot expose.
"""

from __future__ import annotations

from conftest import print_banner

from repro.datagen.corpus import load_retail_tables
from repro.datagen.kv import KeyValueGenerator
from repro.datagen.weblog import WebLogGenerator
from repro.engines.nosql import NoSqlStore
from repro.execution.report import ascii_table
from repro.workloads import HybridWorkload, profile_arrival_pattern


def _kv_data():
    return KeyValueGenerator(field_count=4, field_length=20, seed=21).generate(300)


def test_hybrid_vs_isolated(benchmark):
    data = _kv_data()
    workload = HybridWorkload()

    def run_both():
        isolated = workload.run(
            NoSqlStore(seed=22), data,
            operation_count=800, analytics_every=0,
        )
        hybrid = workload.run(
            NoSqlStore(seed=22), data,
            operation_count=800, analytics_every=40,
            analytics_scan_length=400,
        )
        return isolated, hybrid

    isolated, hybrid = benchmark.pedantic(run_both, rounds=2, iterations=1)
    rows = []
    for label, result in (("serving only", isolated), ("hybrid", hybrid)):
        means = result.output["mean_latency_by_class"]
        rows.append(
            {
                "run": label,
                "total service time (s)": result.simulated_seconds,
                "mean read (ms)": means.get("read", 0) * 1e3,
                "mean scan (ms)": means.get("scan", 0) * 1e3,
                "scans": result.extra["per_class_counts"]["scan"],
            }
        )
    print_banner("E12", "hybrid vs isolated serving")
    print(ascii_table(rows))
    assert hybrid.simulated_seconds > isolated.simulated_seconds
    assert hybrid.extra["per_class_counts"]["scan"] > 0


def test_profiled_arrival_pattern_drives_hybrid(benchmark):
    tables = load_retail_tables()
    weblog = WebLogGenerator(tables["customers"], tables["products"],
                             seed=23).generate(800)
    data = _kv_data()

    def profile_and_run():
        pattern = profile_arrival_pattern(weblog)
        result = HybridWorkload().run(
            NoSqlStore(seed=24), data,
            arrival_pattern=pattern, operation_count=600,
        )
        return pattern, result

    pattern, result = benchmark.pedantic(profile_and_run, rounds=2, iterations=1)
    print_banner("E12", "arrival pattern profiled from web logs → hybrid mix")
    print(
        ascii_table(
            [
                {"operation": name,
                 "profiled rate (ops/s)": rate,
                 "executed": result.extra["per_class_counts"].get(name, 0)}
                for name, rate in sorted(pattern.rates.items())
            ]
        )
    )
    counts = result.extra["per_class_counts"]
    # GET-heavy logs must produce read-heavy store traffic.
    assert counts["read"] == max(
        count for name, count in counts.items() if name != "scan"
    )
