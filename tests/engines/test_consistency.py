"""Tests for tunable consistency levels in the NoSQL store."""

from __future__ import annotations

import pytest

from repro.engines.nosql import ConsistencyLevel, LatencyModel, NoSqlStore

ONE = ConsistencyLevel.ONE
QUORUM = ConsistencyLevel.QUORUM
ALL = ConsistencyLevel.ALL


@pytest.fixture()
def store():
    return NoSqlStore(
        num_partitions=6, replication=3,
        latency=LatencyModel(jitter_sigma=0.0), seed=1,
    )


class TestReplicaCounts:
    def test_replicas_required(self):
        assert ONE.replicas_required(3) == 1
        assert QUORUM.replicas_required(3) == 2
        assert QUORUM.replicas_required(5) == 3
        assert ALL.replicas_required(3) == 3
        # Degenerate single-replica store: all levels coincide.
        assert QUORUM.replicas_required(1) == ALL.replicas_required(1) == 1


class TestFreshness:
    def test_quorum_read_sees_quorum_write(self, store):
        store.insert("k", {"v": 1}, consistency=ALL)
        store.update("k", {"v": 2}, consistency=QUORUM)
        # Write quorum (2) and read quorum (2) overlap in a 3-replica set.
        for _ in range(20):
            assert store.read("k", consistency=QUORUM).fields == {"v": 2}

    def test_all_read_always_fresh(self, store):
        store.insert("k", {"v": 1}, consistency=ALL)
        store.update("k", {"v": 2}, consistency=ONE)
        assert store.read("k", consistency=ALL).fields == {"v": 2}

    def test_one_read_can_be_stale_after_one_write(self, store):
        store.insert("k", {"v": "old"}, consistency=ALL)
        store.update("k", {"v": "new"}, consistency=ONE)
        assert store.pending_replications == 2
        observed = {
            store.read("k", consistency=ONE).fields["v"] for _ in range(60)
        }
        # Rotating single-replica reads hit both fresh and stale copies.
        assert observed == {"old", "new"}

    def test_anti_entropy_restores_full_consistency(self, store):
        store.insert("k", {"v": "old"}, consistency=ALL)
        store.update("k", {"v": "new"}, consistency=ONE)
        applied = store.anti_entropy()
        assert applied == 2
        assert store.pending_replications == 0
        observed = {
            store.read("k", consistency=ONE).fields["v"] for _ in range(30)
        }
        assert observed == {"new"}

    def test_anti_entropy_respects_newer_versions(self, store):
        store.insert("k", {"v": 1}, consistency=ONE)   # pending for 2 replicas
        store.update("k", {"v": 2}, consistency=ALL)   # newer, everywhere
        store.anti_entropy()
        # The stale pending write must not clobber the newer value.
        assert store.read("k", consistency=ALL).fields == {"v": 2}

    def test_delete_cancels_pending_writes(self, store):
        store.insert("k", {"v": 1}, consistency=ONE)
        store.delete("k")
        store.anti_entropy()
        assert not store.read("k", consistency=ALL).ok


class TestLatencyTradeoff:
    def test_stronger_writes_cost_more(self, store):
        weak = store.insert("a", {"v": 1}, consistency=ONE).latency_seconds
        strong = store.insert("b", {"v": 1}, consistency=ALL).latency_seconds
        assert weak < strong

    def test_stronger_reads_cost_more(self, store):
        store.insert("k", {"v": 1}, consistency=ALL)
        one = store.read("k", consistency=ONE).latency_seconds
        everyone = store.read("k", consistency=ALL).latency_seconds
        assert one < everyone

    def test_quorum_between_one_and_all(self, store):
        store.insert("k", {"v": 1}, consistency=ALL)
        one = store.read("k", consistency=ONE).latency_seconds
        quorum = store.read("k", consistency=QUORUM).latency_seconds
        everyone = store.read("k", consistency=ALL).latency_seconds
        assert one < quorum < everyone


class TestDefaultsPreserveStrongBehaviour:
    def test_default_write_is_all(self, store):
        store.insert("k", {"v": 1})
        assert store.pending_replications == 0

    def test_default_read_your_writes(self, store):
        store.insert("k", {"v": 1})
        store.update("k", {"v": 2})
        assert store.read("k").fields == {"v": 2}
