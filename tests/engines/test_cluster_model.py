"""Tests for the heterogeneous-cluster and speculative-execution model."""

from __future__ import annotations

import pytest

from repro.engines.base import (
    SimulatedClusterSpec,
    schedule_heterogeneous,
)
from repro.engines.mapreduce import ClusterModel


class TestScheduleHeterogeneous:
    def test_homogeneous_matches_lpt_shape(self):
        from repro.engines.base import schedule_lpt

        costs = [3.0, 2.0, 2.0, 1.0]
        heterogeneous = schedule_heterogeneous(costs, [1.0, 1.0])
        # Earliest-completion-time with equal speeds is at least as good
        # as plain LPT (same greedy family).
        assert heterogeneous <= schedule_lpt(costs, 2) + 1e-9

    def test_slow_slot_inflates_makespan(self):
        costs = [1.0] * 8
        uniform = schedule_heterogeneous(costs, [1.0, 1.0, 1.0, 1.0])
        straggling = schedule_heterogeneous(costs, [1.0, 1.0, 1.0, 0.25])
        assert straggling >= uniform

    def test_scheduler_is_oblivious_to_speeds(self):
        # Placement assumes equal speeds: with empty slots, the single
        # task lands on the first slot regardless of its actual speed —
        # the "unexpected straggler" scenario.
        makespan = schedule_heterogeneous([4.0], [0.5, 1.0])
        assert makespan == pytest.approx(8.0)

    def test_speculation_bounds_stragglers(self):
        costs = [1.0] * 12
        slow = schedule_heterogeneous(
            costs, [1.0, 1.0, 1.0, 0.1], speculative_execution=False
        )
        rescued = schedule_heterogeneous(
            costs, [1.0, 1.0, 1.0, 0.1], speculative_execution=True
        )
        assert rescued < slow

    def test_speculation_noop_on_homogeneous_cluster(self):
        costs = [1.0] * 8
        plain = schedule_heterogeneous(costs, [1.0] * 4)
        speculated = schedule_heterogeneous(
            costs, [1.0] * 4, speculative_execution=True
        )
        assert speculated == pytest.approx(plain)

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_heterogeneous([1.0], [])
        with pytest.raises(ValueError):
            schedule_heterogeneous([1.0], [0.0])

    def test_empty_tasks(self):
        assert schedule_heterogeneous([], [1.0]) == 0.0


class TestSpecValidation:
    def test_speed_factor_count_must_match_nodes(self):
        with pytest.raises(ValueError):
            SimulatedClusterSpec(num_nodes=4, node_speed_factors=(1.0, 1.0))

    def test_speed_factors_must_be_positive(self):
        with pytest.raises(ValueError):
            SimulatedClusterSpec(
                num_nodes=2, node_speed_factors=(1.0, -1.0)
            )

    def test_slot_speeds_expand_per_node(self):
        spec = SimulatedClusterSpec(
            num_nodes=2, slots_per_node=2, node_speed_factors=(1.0, 0.5)
        )
        assert spec.slot_speeds() == [1.0, 1.0, 0.5, 0.5]

    def test_homogeneous_default(self):
        spec = SimulatedClusterSpec(num_nodes=3, slots_per_node=1)
        assert spec.slot_speeds() == [1.0, 1.0, 1.0]


class TestClusterModelWithStragglers:
    def _simulate(self, spec: SimulatedClusterSpec) -> float:
        model = ClusterModel(spec)
        report = model.simulate_job(
            map_task_records=[1000] * 16,
            shuffle_bytes=10_000,
            reduce_task_records=[500] * 8,
        )
        return report.simulated_seconds

    def test_straggler_node_slows_the_job(self):
        uniform = self._simulate(SimulatedClusterSpec(num_nodes=4))
        straggling = self._simulate(
            SimulatedClusterSpec(
                num_nodes=4, node_speed_factors=(1.0, 1.0, 1.0, 0.2)
            )
        )
        assert straggling > uniform

    def test_speculation_recovers_most_of_the_loss(self):
        straggling = self._simulate(
            SimulatedClusterSpec(
                num_nodes=4, node_speed_factors=(1.0, 1.0, 1.0, 0.2)
            )
        )
        speculated = self._simulate(
            SimulatedClusterSpec(
                num_nodes=4,
                node_speed_factors=(1.0, 1.0, 1.0, 0.2),
                speculative_execution=True,
            )
        )
        uniform = self._simulate(SimulatedClusterSpec(num_nodes=4))
        assert speculated < straggling
        # Backup tasks recover at least a third of the straggler penalty.
        assert (straggling - speculated) > (straggling - uniform) / 3
