"""Columnar storage and batch-at-a-time execution (DESIGN.md §3.14).

The row path is the correctness oracle: every vectorized plan must
return exactly the rows the row plan returns, in the same order, with
identical cost totals (only the ``batches`` counter may differ — it is
the vectorization's own fingerprint and stays 0 on row paths).
"""

from __future__ import annotations

import random
from array import array

import pytest

from repro.core.errors import EngineError
from repro.engines.base import CostCounters
from repro.engines.dbms import (
    Aggregate,
    DbmsEngine,
    PlannerConfig,
    col,
    lit,
)
from repro.engines.dbms.planner import JoinSpec, Query
from repro.engines.dbms.storage import ColumnarTable, HeapTable
from repro.engines.dbms.vector_plans import (
    BatchFilter,
    ColumnarScan,
    ColumnBatch,
    RowAdapter,
)


@pytest.fixture()
def people_db():
    engine = DbmsEngine()
    engine.create_table("people", ("id", "name", "age", "city"))
    engine.insert(
        "people",
        [
            (1, "ann", 30, "rome"),
            (2, "bob", 25, "oslo"),
            (3, "cat", 35, "rome"),
            (4, "dan", 25, "kiev"),
            (5, "eve", 40, "oslo"),
        ],
    )
    engine.create_table("cities", ("city", "country"))
    engine.insert(
        "cities",
        [("rome", "it"), ("oslo", "no"), ("kiev", "ua")],
    )
    return engine


class TestColumnarTable:
    def test_transpose_round_trips(self):
        table = HeapTable("t", ("a", "b"))
        table.insert((1, "x"))
        table.insert((2, "y"))
        view = ColumnarTable.from_heap(table)
        assert len(view) == 2
        assert list(view.column("a")) == [1, 2]
        assert list(view.column("b")) == ["x", "y"]

    def test_int_column_packs_into_typed_array(self):
        table = HeapTable("t", ("a",))
        for value in (1, 2, 3):
            table.insert((value,))
        view = table.columnar()
        assert isinstance(view.column("a"), array)
        assert view.column("a").typecode == "q"

    def test_bool_stays_out_of_int_arrays(self):
        # bool is an int subclass; a typed array would silently coerce
        # True -> 1 and break bit-identity with the row path.
        table = HeapTable("t", ("a",))
        table.insert((True,))
        table.insert((2,))
        view = table.columnar()
        assert not isinstance(view.column("a"), array)
        assert view.column("a")[0] is True

    def test_mixed_and_none_columns_stay_lists(self):
        table = HeapTable("t", ("a",))
        table.insert((1,))
        table.insert((None,))
        view = table.columnar()
        assert list(view.column("a")) == [1, None]

    def test_huge_ints_fall_back_to_lists(self):
        table = HeapTable("t", ("a",))
        table.insert((2**100,))
        view = table.columnar()
        assert list(view.column("a")) == [2**100]

    def test_cache_reused_until_mutation(self):
        table = HeapTable("t", ("a",))
        table.insert((1,))
        first = table.columnar()
        assert table.columnar() is first
        table.insert((2,))
        second = table.columnar()
        assert second is not first
        assert list(second.column("a")) == [1, 2]

    def test_deleted_rows_invisible(self):
        table = HeapTable("t", ("a",))
        table.insert((1,))
        row_id = table.insert((2,))
        table.insert((3,))
        table.delete_row(row_id)
        assert list(table.columnar().column("a")) == [1, 3]

    def test_positions_track_heap_row_ids(self):
        table = HeapTable("t", ("a",))
        ids = [table.insert((value,)) for value in (10, 20, 30)]
        table.delete_row(ids[0])
        view = table.columnar()
        positions = view.positions_for([ids[2], ids[1]])
        assert [view.column("a")[p] for p in positions] == [30, 20]


class TestColumnBatch:
    def test_from_rows_and_back(self):
        batch = ColumnBatch.from_rows(("a", "b"), [(1, "x"), (2, "y")])
        assert batch.num_rows == 2
        assert batch.to_rows() == [(1, "x"), (2, "y")]

    def test_empty(self):
        batch = ColumnBatch.from_rows(("a", "b"), [])
        assert batch.num_rows == 0
        assert batch.to_rows() == []

    def test_take_gathers_positions(self):
        batch = ColumnBatch.from_rows(("a",), [(1,), (2,), (3,)])
        assert batch.take([2, 0]).to_rows() == [(3,), (1,)]

    def test_head_trims(self):
        batch = ColumnBatch.from_rows(("a",), [(1,), (2,), (3,)])
        assert batch.head(2).to_rows() == [(1,), (2,)]


class TestVectorOperators:
    def test_columnar_scan_batches_and_counts(self):
        table = HeapTable("t", ("a",))
        for value in range(10):
            table.insert((value,))
        cost = CostCounters()
        scan = ColumnarScan(table, cost, batch_size=4)
        batches = list(scan.batches())
        assert [b.num_rows for b in batches] == [4, 4, 2]
        assert cost.records_read == 10
        assert cost.batches == 3

    def test_batch_filter_keeps_whole_passing_batch(self):
        table = HeapTable("t", ("a",))
        for value in range(4):
            table.insert((value,))
        cost = CostCounters()
        scan = ColumnarScan(table, cost, batch_size=4)
        keep_all = BatchFilter(scan, col("a") >= lit(0), cost)
        [batch] = list(keep_all.batches())
        assert batch.num_rows == 4

    def test_row_adapter_ducks_as_row_operator(self):
        table = HeapTable("t", ("a",))
        table.insert((7,))
        cost = CostCounters()
        adapter = RowAdapter(ColumnarScan(table, cost), cost)
        assert list(adapter.rows()) == [(7,)]
        assert adapter.explain()["op"] == "RowAdapter"


class TestPlannerLayout:
    def test_default_layout_is_row(self, people_db):
        assert people_db.execution_layout == "row"
        result = people_db.execute(people_db.query("people"))
        assert result.plan["layout"] == "row"
        assert result.cost.batches == 0

    def test_configured_columnar_engine(self, people_db):
        engine = DbmsEngine(PlannerConfig(layout="columnar"))
        assert engine.execution_layout == "columnar"

    def test_invalid_layout_rejected(self):
        with pytest.raises(EngineError):
            PlannerConfig(layout="diagonal")
        engine = DbmsEngine()
        with pytest.raises(EngineError):
            engine.execute(engine.query("nope"), layout="diagonal")

    def test_per_query_override(self, people_db):
        result = people_db.execute(
            people_db.query("people"), layout="columnar"
        )
        assert result.plan["layout"] == "columnar"
        assert result.plan["op"] == "ColumnarScan"
        assert result.cost.batches > 0
        # The engine default is untouched.
        assert people_db.execution_layout == "row"

    def test_explain_reports_layout(self, people_db):
        assert people_db.explain(people_db.query("people"))["layout"] == "row"
        plan = people_db.explain(people_db.query("people"), layout="columnar")
        assert plan["layout"] == "columnar"

    def test_merge_join_falls_back_to_row_honestly(self):
        engine = DbmsEngine(
            PlannerConfig(layout="columnar", join_algorithm="merge")
        )
        engine.create_table("people", ("id", "name", "age", "city"))
        engine.insert("people", [(1, "ann", 30, "rome")])
        engine.create_table("cities", ("city", "country"))
        engine.insert("cities", [("rome", "it")])
        query = engine.query("people").join("cities", "city", "city")
        result = engine.execute(query)
        assert result.plan["layout"] == "row"
        assert result.rows == [(1, "ann", 30, "rome", "rome", "it")]

    def test_auto_join_resolves_to_hash_under_columnar(self, people_db):
        query = people_db.query("people").join("cities", "city", "city")
        row = people_db.execute(query, layout="row")
        columnar = people_db.execute(
            people_db.query("people").join("cities", "city", "city"),
            layout="columnar",
        )
        # Row auto picks nested-loop for the tiny inner; columnar auto
        # resolves to the vectorized hash join.  Same rows, same order
        # — hash output order matches nested-loop exactly.
        assert row.plan["op"] == "NestedLoopJoin"
        assert columnar.plan["op"] == "BatchHashJoin"
        assert columnar.rows == row.rows

    def test_columnar_index_scan(self, people_db):
        people_db.create_index("people", "age")
        query = people_db.query("people").where(col("age") == lit(25))
        row = people_db.execute(query, layout="row")
        columnar = people_db.execute(query, layout="columnar")
        # The point predicate is consumed by the index, so the scan IS
        # the plan root on both paths.
        assert row.plan["op"] == "IndexScan"
        assert columnar.plan["op"] == "ColumnarIndexScan"
        assert columnar.rows == row.rows
        assert columnar.cost.records_read == row.cost.records_read


def _people_engine(**config) -> DbmsEngine:
    engine = DbmsEngine(PlannerConfig(**config) if config else None)
    engine.create_table("people", ("id", "name", "age", "city"))
    engine.insert(
        "people",
        [
            (1, "ann", 30, "rome"),
            (2, "bob", 25, "oslo"),
            (3, "cat", 35, "rome"),
            (4, "dan", 25, "kiev"),
            (5, "eve", 40, "oslo"),
        ],
    )
    engine.create_table("cities", ("city", "country"))
    engine.insert(
        "cities",
        [("rome", "it"), ("oslo", "no"), ("kiev", "ua")],
    )
    return engine


class TestCostParity:
    """Vector twins charge exactly the row operators' cost totals.

    The join algorithm is pinned to hash: under ``auto`` the two
    layouts may legitimately pick different algorithms (columnar
    resolves auto to hash, the vectorized choice), and parity is an
    operator-vs-twin property, not a planner-vs-planner one.
    """

    QUERIES = {
        "scan": lambda e: e.query("people").select("id", "age"),
        "filter": lambda e: e.query("people").where(col("age") > lit(26)),
        "join": lambda e: e.query("people").join("cities", "city", "city"),
        "aggregate": lambda e: (
            e.query("people")
            .group_by("city")
            .aggregate("avg", "age", "mean_age")
            .aggregate("count", None, "n")
        ),
        "sorted_limit": lambda e: (
            e.query("people").order_by("age", descending=True).limit(3)
        ),
    }

    @pytest.mark.parametrize("shape", sorted(QUERIES))
    def test_identical_except_batches(self, shape):
        engine = _people_engine(join_algorithm="hash")
        build = self.QUERIES[shape]
        row = engine.execute(build(engine).build(), layout="row")
        columnar = engine.execute(build(engine).build(), layout="columnar")
        assert [repr(r) for r in columnar.rows] == [
            repr(r) for r in row.rows
        ]
        row_snapshot = row.cost.snapshot()
        columnar_snapshot = columnar.cost.snapshot()
        assert row_snapshot.pop("batches") == 0
        assert columnar_snapshot.pop("batches") > 0
        assert columnar_snapshot == row_snapshot


def _random_table(rng: random.Random, prefix: str) -> list[tuple]:
    """A generated table mixing ints, strings, and None-ish values."""
    num_rows = rng.choice([0, 1, rng.randint(2, 60)])
    rows = []
    for index in range(num_rows):
        rows.append(
            (
                index,
                rng.choice(["red", "green", "blue", None]),
                rng.choice([rng.randint(-5, 5), None, rng.randint(0, 100)]),
                f"{prefix}{rng.randint(0, 6)}",
            )
        )
    return rows


class TestRowColumnarProperty:
    """Seeded generative equivalence: columnar == row, bit for bit."""

    @pytest.mark.parametrize("seed", range(12))
    def test_generated_tables_agree(self, seed):
        rng = random.Random(seed)
        engine = DbmsEngine()
        engine.create_table("left_t", ("id", "color", "score", "key"))
        engine.insert("left_t", _random_table(rng, "k"))
        engine.create_table("right_t", ("key", "weight"))
        engine.insert(
            "right_t",
            [(f"k{i}", rng.randint(0, 9)) for i in range(rng.randint(0, 7))],
        )

        queries = [
            Query(table="left_t"),
            Query(
                table="left_t",
                projection=[("id", col("id")), ("color", col("color"))],
            ),
            Query(table="left_t", predicate=col("id") > lit(5)),
            Query(
                table="left_t",
                joins=[JoinSpec("right_t", "key", "key")],
            ),
            Query(
                table="left_t",
                group_by=["color"],
                aggregates=[
                    Aggregate("count", None, "n"),
                    Aggregate("max", "id", "top"),
                ],
            ),
            Query(
                table="left_t",
                order_by=[("key", False), ("id", True)],
                limit=rng.randint(1, 10),
            ),
        ]
        for query in queries:
            row = engine.execute(query, layout="row")
            columnar = engine.execute(query, layout="columnar")
            assert [repr(r) for r in columnar.rows] == [
                repr(r) for r in row.rows
            ], query

    @pytest.mark.parametrize("seed", range(4))
    def test_sql_path_agrees(self, seed):
        rng = random.Random(1000 + seed)
        engine = DbmsEngine()
        engine.create_table("t", ("id", "color", "score", "key"))
        engine.insert("t", _random_table(rng, "k"))
        statements = [
            "SELECT id, color FROM t",
            "SELECT * FROM t WHERE id > 3",
            "SELECT color, COUNT(*) AS n FROM t GROUP BY color",
            "SELECT * FROM t ORDER BY key LIMIT 5",
        ]
        for statement in statements:
            row = engine.sql(statement, layout="row")
            columnar = engine.sql(statement, layout="columnar")
            assert [repr(r) for r in columnar.rows] == [
                repr(r) for r in row.rows
            ], statement


class TestPredicatePushdown:
    """Filters fused into ColumnarScan: untouched columns are only
    materialized for surviving positions, cost parity stays exact."""

    def _table(self, rows=10):
        table = HeapTable("t", ("a", "b"))
        for value in range(rows):
            table.insert((value, f"v{value}"))
        return table

    def test_fused_scan_matches_unfused_rows(self):
        table = self._table()
        predicate = col("a") >= lit(5)
        fused = ColumnarScan(
            table, CostCounters(), batch_size=4, predicate=predicate
        )
        unfused = BatchFilter(
            ColumnarScan(table, CostCounters(), batch_size=4),
            predicate,
            CostCounters(),
        )
        assert list(fused.rows()) == list(unfused.rows())

    def test_cost_parity_with_unfused_pair(self):
        table = self._table()
        fused_cost = CostCounters()
        list(ColumnarScan(
            table, fused_cost, batch_size=4, predicate=col("a") >= lit(5)
        ).batches())
        unfused_cost = CostCounters()
        list(BatchFilter(
            ColumnarScan(table, unfused_cost, batch_size=4),
            col("a") >= lit(5),
            unfused_cost,
        ).batches())
        assert fused_cost.records_read == unfused_cost.records_read == 10
        assert fused_cost.compute_ops == unfused_cost.compute_ops == 10

    def test_all_dropped_batch_emits_nothing(self):
        table = self._table()
        cost = CostCounters()
        scan = ColumnarScan(
            table, cost, batch_size=5, predicate=col("a") > lit(100)
        )
        assert list(scan.batches()) == []
        # Every row was still scanned and evaluated (cost parity)...
        assert cost.records_read == 10
        assert cost.compute_ops == 10
        # ...but no batch was ever emitted.
        assert cost.batches == 0

    def test_fully_surviving_batch_is_a_cheap_slice(self):
        table = self._table()
        cost = CostCounters()
        scan = ColumnarScan(
            table, cost, batch_size=5, predicate=col("a") >= lit(0)
        )
        batches = list(scan.batches())
        assert [b.num_rows for b in batches] == [5, 5]
        assert cost.batches == 2

    def test_untouched_columns_not_materialized_for_dropped_rows(self):
        table = self._table()

        class CountingSeq:
            """Wraps the b column to count per-position gathers."""

            def __init__(self, inner):
                self.inner = inner
                self.touches = 0

            def __getitem__(self, key):
                if isinstance(key, int):
                    self.touches += 1
                return self.inner[key]

            def __len__(self):
                return len(self.inner)

        view = table.columnar()
        counting = CountingSeq(list(view.column("b")))
        original_column = view.column

        def patched(name):
            return counting if name == "b" else original_column(name)

        view.column = patched
        scan = ColumnarScan(
            table, CostCounters(), batch_size=10, predicate=col("a") >= lit(8)
        )
        scan.table.columnar = lambda: view
        rows = list(scan.rows())
        assert [row[0] for row in rows] == [8, 9]
        # Only the two survivors gathered from the untouched column.
        assert counting.touches == 2

    def test_planner_fuses_local_predicate_into_the_scan(self, people_db):
        query = (
            people_db.query("people").where(col("age") > lit(26)).build()
        )
        result = people_db.execute(query, layout="columnar")
        plan = result.plan
        assert plan["op"] == "ColumnarScan"
        assert "predicate" in plan

    def test_planner_row_path_unchanged(self, people_db):
        query = (
            people_db.query("people").where(col("age") > lit(26)).build()
        )
        result = people_db.execute(query, layout="row")
        assert result.plan["op"] == "Filter"

    def test_fused_plan_agrees_with_row_plan(self, people_db):
        query = (
            people_db.query("people").where(col("age") > lit(26)).build()
        )
        row = people_db.execute(query, layout="row")
        columnar = people_db.execute(query, layout="columnar")
        assert [repr(r) for r in columnar.rows] == [
            repr(r) for r in row.rows
        ]
        assert columnar.cost.records_read == row.cost.records_read
        assert columnar.cost.compute_ops == row.cost.compute_ops
