"""Tests for the simulated distributed file system and the CFS workload."""

from __future__ import annotations

import pytest

from repro.core.errors import EngineError, ExecutionError
from repro.datagen.text import RandomTextGenerator
from repro.engines.dfs import DistributedFileSystem
from repro.workloads import CfsWorkload


@pytest.fixture()
def dfs():
    return DistributedFileSystem(num_nodes=4, block_size=64, replication=2)


class TestReadWrite:
    def test_write_then_read_roundtrips(self, dfs):
        payload = b"hello distributed world" * 10
        dfs.write_file("/a", payload)
        result = dfs.read_file("/a")
        assert result.ok
        assert result.data == payload

    def test_file_is_split_into_blocks(self, dfs):
        dfs.write_file("/a", b"x" * 300)  # block size 64 → 5 blocks
        entry = dfs._namespace["/a"]  # noqa: SLF001 - white-box check
        assert len(entry.block_ids) == 5

    def test_blocks_are_replicated(self, dfs):
        dfs.write_file("/a", b"y" * 100)
        for node_ids in dfs._block_locations.values():  # noqa: SLF001
            assert len(node_ids) == 2
            assert len(set(node_ids)) == 2  # on distinct nodes

    def test_read_missing_file(self, dfs):
        result = dfs.read_file("/ghost")
        assert not result.ok
        assert result.data is None

    def test_overwrite_replaces_content(self, dfs):
        dfs.write_file("/a", b"first")
        dfs.write_file("/a", b"second")
        assert dfs.read_file("/a").data == b"second"

    def test_empty_file(self, dfs):
        dfs.write_file("/empty", b"")
        result = dfs.read_file("/empty")
        assert result.ok
        assert result.data == b""

    def test_append(self, dfs):
        dfs.write_file("/log", b"line1")
        dfs.append("/log", b"\nline2")
        assert dfs.read_file("/log").data == b"line1\nline2"

    def test_append_creates_missing_file(self, dfs):
        dfs.append("/new", b"content")
        assert dfs.read_file("/new").data == b"content"

    def test_delete_frees_space(self, dfs):
        dfs.write_file("/a", b"z" * 500)
        used_before = sum(node.used_bytes for node in dfs.nodes)
        assert used_before > 0
        assert dfs.delete_file("/a").ok
        assert sum(node.used_bytes for node in dfs.nodes) == 0
        assert not dfs.delete_file("/a").ok

    def test_namespace_listing(self, dfs):
        dfs.write_file("/data/a", b"1")
        dfs.write_file("/data/b", b"2")
        dfs.write_file("/tmp/c", b"3")
        assert dfs.list_files("/data/") == ["/data/a", "/data/b"]
        assert dfs.exists("/tmp/c")
        assert dfs.file_size("/data/a") == 1

    def test_file_size_missing(self, dfs):
        with pytest.raises(EngineError):
            dfs.file_size("/nope")


class TestSimulation:
    def test_write_latency_grows_with_size(self, dfs):
        small = dfs.write_file("/s", b"a" * 64)
        large = dfs.write_file("/l", b"a" * 6400)
        assert large.simulated_seconds > small.simulated_seconds

    def test_replication_costs_network(self):
        single = DistributedFileSystem(num_nodes=4, replication=1)
        triple = DistributedFileSystem(num_nodes=4, replication=3)
        single.write_file("/a", b"x" * 1000)
        triple.write_file("/a", b"x" * 1000)
        assert triple.counters.network_bytes > single.counters.network_bytes

    def test_placement_balances_load(self, dfs):
        for index in range(20):
            dfs.write_file(f"/f{index}", b"b" * 64)
        utilizations = dfs.utilization()
        assert max(utilizations) <= 2 * min(utilizations) + 1e-9

    def test_capacity_exhaustion(self):
        tiny = DistributedFileSystem(
            num_nodes=2, replication=2, node_capacity=128, block_size=64
        )
        tiny.write_file("/a", b"x" * 128)
        with pytest.raises(EngineError):
            tiny.write_file("/b", b"x" * 128)

    def test_parameter_validation(self):
        with pytest.raises(EngineError):
            DistributedFileSystem(num_nodes=0)
        with pytest.raises(EngineError):
            DistributedFileSystem(num_nodes=2, replication=3)
        with pytest.raises(EngineError):
            DistributedFileSystem(block_size=0)


class TestFaultTolerance:
    def test_data_survives_single_node_loss(self, dfs):
        payload = b"durable" * 50
        dfs.write_file("/a", payload)
        dfs.fail_node(0)
        assert dfs.read_file("/a").data == payload
        assert not dfs.lost_blocks()

    def test_under_replication_detected_and_repaired(self, dfs):
        dfs.write_file("/a", b"r" * 500)
        dfs.fail_node(1)
        under = dfs.under_replicated_blocks()
        if under:  # node 1 held at least one replica
            copies = dfs.re_replicate()
            assert copies == len(under)
        assert dfs.under_replicated_blocks() == []
        for node_ids in dfs._block_locations.values():  # noqa: SLF001
            assert len(node_ids) == 2

    def test_unreplicated_data_is_lost(self):
        fragile = DistributedFileSystem(num_nodes=2, replication=1,
                                        block_size=64)
        fragile.write_file("/a", b"gone" * 64)
        # Fail both nodes: every block loses its only replica.
        fragile.fail_node(0)
        fragile.fail_node(1)
        assert fragile.lost_blocks()

    def test_fail_unknown_node(self, dfs):
        with pytest.raises(EngineError):
            dfs.fail_node(99)


class TestCfsWorkload:
    @pytest.fixture()
    def text_data(self):
        return RandomTextGenerator(document_length=12, seed=5).generate(40)

    def test_full_cycle_runs(self, text_data):
        result = CfsWorkload().run(DistributedFileSystem(), text_data, files=4)
        assert result.output["files"] == 4
        assert result.simulated_seconds > 0
        means = result.output["mean_latency_by_op"]
        assert all(means[op] > 0 for op in ("write", "read", "append",
                                            "delete"))

    def test_files_deleted_at_end(self, text_data):
        engine = DistributedFileSystem()
        CfsWorkload().run(engine, text_data, files=4)
        assert engine.list_files("/bench/") == []

    def test_write_throughput_reported(self, text_data):
        result = CfsWorkload().run(DistributedFileSystem(), text_data)
        assert result.extra["write_throughput_bytes_per_second"] > 0

    def test_registered_and_prescribed(self):
        from repro.core import registry
        from repro.core.test_generator import TestGenerator

        assert "cfs" in registry.workloads
        test = TestGenerator().generate("micro-cfs", "dfs", 30)
        result = test.run()
        assert result.engine == "dfs"

    def test_empty_dataset_rejected(self):
        from repro.datagen.base import DataType, as_dataset

        empty = as_dataset([], DataType.TEXT)
        with pytest.raises(ExecutionError):
            CfsWorkload().run(DistributedFileSystem(), empty)

    def test_invalid_file_count(self, text_data):
        with pytest.raises(ExecutionError):
            CfsWorkload().run(DistributedFileSystem(), text_data, files=0)
