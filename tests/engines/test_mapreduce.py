"""Tests for the MapReduce engine (phases, counters, cluster model)."""

from __future__ import annotations

import pytest

from repro._util import chunked
from repro.core.errors import EngineError
from repro.engines.base import SimulatedClusterSpec, schedule_lpt
from repro.engines.mapreduce import (
    CounterGroup,
    JobChain,
    JobConf,
    MapReduceEngine,
    MapReduceJob,
    default_partitioner,
    identity_mapper,
    identity_reducer,
)


def word_count_job(**conf_kwargs) -> MapReduceJob:
    def wc_map(key, value):
        for word in value.split():
            yield word, 1

    def wc_reduce(key, values):
        yield key, sum(values)

    return MapReduceJob(
        "wordcount", wc_map, wc_reduce, combiner=wc_reduce,
        conf=JobConf(**conf_kwargs),
    )


PAIRS = [(0, "a b a"), (1, "b c"), (2, "a c c d")]
EXPECTED = {"a": 3, "b": 2, "c": 3, "d": 1}


class TestEngineBasics:
    def test_wordcount_is_correct(self):
        result = MapReduceEngine().run(word_count_job(), PAIRS)
        assert dict(result.output) == EXPECTED

    def test_result_matches_sequential_reference(self):
        """MapReduce must equal the obvious single-threaded computation."""
        from collections import Counter

        reference = Counter()
        for _, line in PAIRS:
            reference.update(line.split())
        result = MapReduceEngine().run(word_count_job(), PAIRS)
        assert dict(result.output) == dict(reference)

    def test_task_counts_do_not_change_output(self):
        baseline = dict(MapReduceEngine().run(word_count_job(), PAIRS).output)
        for maps, reduces in ((1, 1), (2, 3), (8, 5)):
            result = MapReduceEngine().run(
                word_count_job(num_map_tasks=maps, num_reduce_tasks=reduces),
                PAIRS,
            )
            assert dict(result.output) == baseline

    def test_combiner_reduces_shuffle_volume(self):
        with_combiner = MapReduceEngine().run(word_count_job(), PAIRS)
        job = word_count_job()
        job.combiner = None
        without_combiner = MapReduceEngine().run(job, PAIRS)
        assert (
            with_combiner.counters.get("shuffle", "records")
            < without_combiner.counters.get("shuffle", "records")
        )
        assert dict(with_combiner.output) == dict(without_combiner.output)

    def test_empty_input(self):
        result = MapReduceEngine().run(word_count_job(), [])
        assert result.output == []

    def test_identity_job(self):
        job = MapReduceJob("identity", identity_mapper, identity_reducer)
        result = MapReduceEngine().run(job, [(1, "x"), (2, "y")])
        assert sorted(result.output) == [(1, "x"), (2, "y")]

    def test_sorted_keys_in_each_partition(self):
        job = MapReduceJob(
            "sort",
            lambda k, v: [(v, None)],
            conf=JobConf(num_reduce_tasks=1, sort_keys=True),
        )
        result = MapReduceEngine().run(job, [(0, "pear"), (1, "apple"), (2, "fig")])
        keys = [key for key, _ in result.output]
        assert keys == sorted(keys)

    def test_mapper_must_yield_pairs(self):
        job = MapReduceJob("bad", lambda k, v: ["not-a-pair"])
        with pytest.raises(EngineError):
            MapReduceEngine().run(job, PAIRS)

    def test_reducer_must_yield_pairs(self):
        job = MapReduceJob(
            "bad", identity_mapper, lambda k, vs: ["oops"]
        )
        with pytest.raises(EngineError):
            MapReduceEngine().run(job, PAIRS)

    def test_bad_partitioner_detected(self):
        job = word_count_job()
        job.conf.partitioner = lambda key, n: n + 5
        with pytest.raises(EngineError):
            MapReduceEngine().run(job, PAIRS)


class TestCounters:
    def test_map_input_records(self):
        result = MapReduceEngine().run(word_count_job(), PAIRS)
        assert result.counters.get("map", "input_records") == 3

    def test_reduce_groups(self):
        result = MapReduceEngine().run(word_count_job(), PAIRS)
        assert result.counters.get("reduce", "input_groups") == len(EXPECTED)

    def test_counter_group_merge(self):
        a = CounterGroup()
        a.increment("g", "c", 2)
        b = CounterGroup()
        b.increment("g", "c", 3)
        b.increment("h", "x")
        a.merge(b)
        assert a.get("g", "c") == 5
        assert a.get("h", "x") == 1

    def test_engine_accumulates_cost(self):
        engine = MapReduceEngine()
        engine.run(word_count_job(), PAIRS)
        first = engine.counters.compute_ops
        engine.run(word_count_job(), PAIRS)
        assert engine.counters.compute_ops == 2 * first

    def test_snapshot_is_a_copy(self):
        counters = CounterGroup()
        counters.increment("g", "c")
        snapshot = counters.snapshot()
        snapshot["g"]["c"] = 99
        assert counters.get("g", "c") == 1


class TestJobChain:
    def test_chain_feeds_output_forward(self):
        first = word_count_job()

        def filter_map(word, count):
            if count >= 2:
                yield word, count

        second = MapReduceJob("filter", filter_map)
        chain = first.then(second)
        results = MapReduceEngine().run_chain(chain, PAIRS)
        assert len(results) == 2
        assert dict(results[-1].output) == {"a": 3, "b": 2, "c": 3}

    def test_chain_extension(self):
        chain = JobChain([word_count_job()]).then(word_count_job())
        assert len(chain) == 2


class TestClusterModel:
    def test_simulated_time_decreases_with_more_nodes(self):
        small = MapReduceEngine(SimulatedClusterSpec(num_nodes=1))
        large = MapReduceEngine(SimulatedClusterSpec(num_nodes=8))
        pairs = [(i, "word " * 50) for i in range(64)]
        job = word_count_job(num_map_tasks=16, num_reduce_tasks=8)
        slow = small.run(job, pairs).simulated_seconds
        fast = large.run(job, pairs).simulated_seconds
        assert fast < slow

    def test_utilization_bounded(self):
        result = MapReduceEngine().run(word_count_job(), PAIRS)
        assert 0.0 <= result.cluster_report.utilization <= 1.0

    def test_three_phases_reported(self):
        result = MapReduceEngine().run(word_count_job(), PAIRS)
        assert [phase.name for phase in result.cluster_report.phases] == [
            "map", "shuffle", "reduce",
        ]

    def test_single_node_has_no_network_cost(self):
        engine = MapReduceEngine(SimulatedClusterSpec(num_nodes=1))
        result = engine.run(word_count_job(), PAIRS)
        shuffle = result.cluster_report.phases[1]
        assert shuffle.seconds == 0.0


class TestSchedulingPrimitives:
    def test_lpt_single_slot_sums(self):
        assert schedule_lpt([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_lpt_many_slots_takes_max(self):
        assert schedule_lpt([1.0, 2.0, 3.0], 10) == pytest.approx(3.0)

    def test_lpt_balances_within_known_bound(self):
        # LPT is a 4/3-approximation: optimal here is 6 ({3,3} vs {2,2,2});
        # greedy LPT lands on 7, within the bound.
        makespan = schedule_lpt([3.0, 3.0, 2.0, 2.0, 2.0], 2)
        assert makespan == pytest.approx(7.0)
        assert makespan <= 6.0 * (4 / 3)

    def test_lpt_empty(self):
        assert schedule_lpt([], 4) == 0.0

    def test_lpt_invalid_slots(self):
        with pytest.raises(ValueError):
            schedule_lpt([1.0], 0)

    def test_chunked_covers_all_items(self):
        chunks = chunked(list(range(10)), 3)
        assert sum(len(chunk) for chunk in chunks) == 10
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_default_partitioner_is_stable_and_bounded(self):
        for key in ("alpha", 42, (1, "x")):
            first = default_partitioner(key, 7)
            assert 0 <= first < 7
            assert default_partitioner(key, 7) == first


class TestJobConfValidation:
    def test_invalid_task_counts(self):
        with pytest.raises(EngineError):
            JobConf(num_map_tasks=0)
        with pytest.raises(EngineError):
            JobConf(num_reduce_tasks=-1)

    def test_secondary_sort(self):
        job = MapReduceJob(
            "values",
            lambda k, v: [("key", v)],
            identity_reducer,
            conf=JobConf(sort_values=True, num_reduce_tasks=1),
        )
        result = MapReduceEngine().run(job, [(0, 3), (1, 1), (2, 2)])
        assert [value for _, value in result.output] == [1, 2, 3]
