"""Tests for the deterministic fault-injection module."""

from __future__ import annotations

import pytest

from repro.core import registry
from repro.core.errors import EngineError
from repro.engines.faults import (
    FaultSpec,
    FaultyEngine,
    FaultyWorkload,
    InjectedFault,
    current_fault_attempt,
    fault_attempt,
    with_faults,
)


class TestFaultSpec:
    def test_decisions_are_pure(self):
        spec = FaultSpec(seed=3, failure_rate=0.5, latency_rate=0.5,
                         latency_seconds=0.01)
        for point in [("a@x", 0, 0), ("a@x", 1, 0), ("b@y", 0, 3)]:
            assert spec.decide(*point) == spec.decide(*point)

    def test_different_seeds_differ_somewhere(self):
        points = [("task", attempt, call)
                  for attempt in range(4) for call in range(4)]
        a = [FaultSpec(seed=1, failure_rate=0.5).decide(*p) for p in points]
        b = [FaultSpec(seed=2, failure_rate=0.5).decide(*p) for p in points]
        assert a != b

    def test_failure_rate_roughly_respected(self):
        spec = FaultSpec(seed=0, failure_rate=0.3)
        decisions = [spec.decide("k", 0, call) for call in range(500)]
        rate = sum(d.fail for d in decisions) / len(decisions)
        assert 0.2 < rate < 0.4

    def test_fail_attempts_always_fail(self):
        spec = FaultSpec(fail_attempts=(0, 1))
        assert spec.decide("k", 0, 0).fail
        assert spec.decide("k", 1, 0).fail
        assert not spec.decide("k", 2, 0).fail

    def test_fail_calls_always_fail(self):
        spec = FaultSpec(fail_calls=(2,))
        assert not spec.decide("k", 0, 0).fail
        assert spec.decide("k", 0, 2).fail

    def test_latency_decision(self):
        spec = FaultSpec(latency_rate=1.0, latency_seconds=0.25)
        assert spec.decide("k", 0, 0).latency_seconds == 0.25

    @pytest.mark.parametrize("kwargs", [
        {"failure_rate": 1.5},
        {"failure_rate": -0.1},
        {"latency_rate": 2.0},
        {"latency_seconds": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)


class TestAttemptContext:
    def test_context_sets_and_restores(self):
        assert current_fault_attempt() is None
        with fault_attempt("outer", 0):
            state = current_fault_attempt()
            assert (state.key, state.attempt) == ("outer", 0)
            with fault_attempt("inner", 2):
                assert current_fault_attempt().key == "inner"
            assert current_fault_attempt().key == "outer"
        assert current_fault_attempt() is None

    def test_call_counter_increments_within_attempt(self):
        with fault_attempt("k", 0):
            state = current_fault_attempt()
            assert [state.next_call() for _ in range(3)] == [0, 1, 2]


class TestFaultyEngine:
    def _engine(self, spec: FaultSpec) -> FaultyEngine:
        return FaultyEngine(registry.engines.create("nosql"), spec)

    def test_preserves_name_and_info(self):
        engine = self._engine(FaultSpec())
        assert engine.name == "nosql"
        assert engine.info.name == "nosql"

    def test_delegates_attributes_and_dunders(self):
        engine = self._engine(FaultSpec())
        assert engine.counters is engine._inner.counters
        assert len(engine) == len(engine._inner)

    def test_injects_on_scheduled_attempt(self):
        engine = self._engine(FaultSpec(fail_attempts=(0,)))
        with fault_attempt("k", 0):
            with pytest.raises(InjectedFault):
                engine.inject_fault()
        with fault_attempt("k", 1):
            engine.inject_fault()  # later attempt passes

    def test_standalone_counts_calls(self):
        engine = self._engine(FaultSpec(fail_calls=(1,)))
        engine.inject_fault()  # call 0: clean
        with pytest.raises(InjectedFault):
            engine.inject_fault()  # call 1: scheduled failure
        engine.inject_fault()  # call 2: clean again

    def test_injected_fault_is_engine_error(self):
        assert issubclass(InjectedFault, EngineError)


class TestFaultyWorkloadAndDispatcher:
    def test_with_faults_wraps_engine(self):
        wrapped = with_faults(registry.engines.create("dbms"), FaultSpec())
        assert isinstance(wrapped, FaultyEngine)

    def test_with_faults_wraps_workload(self):
        workload = registry.workloads.create("wordcount")
        wrapped = with_faults(workload, FaultSpec())
        assert isinstance(wrapped, FaultyWorkload)
        assert wrapped.name == workload.name
        assert wrapped.supported_engines() == workload.supported_engines()

    def test_with_faults_rejects_other_types(self):
        with pytest.raises(TypeError):
            with_faults(object(), FaultSpec())

    def test_faulty_workload_raises_before_running(self):
        workload = with_faults(
            registry.workloads.create("wordcount"),
            FaultSpec(fail_calls=(0,)),
        )
        with pytest.raises(InjectedFault):
            workload.run(registry.engines.create("mapreduce"), None)
