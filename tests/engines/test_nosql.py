"""Tests for the NoSQL store and the YCSB client."""

from __future__ import annotations

import pytest

from repro.core.errors import EngineError
from repro.engines.nosql import (
    LatencyModel,
    NoSqlStore,
    OpType,
    RequestDistribution,
    STANDARD_WORKLOADS,
    YcsbClient,
    YcsbWorkloadSpec,
    workload_a,
)


@pytest.fixture()
def store():
    return NoSqlStore(num_partitions=4, replication=2, seed=1)


class TestStoreOperations:
    def test_read_your_writes(self, store):
        store.insert("k1", {"f": "v"})
        result = store.read("k1")
        assert result.ok
        assert result.fields == {"f": "v"}

    def test_read_missing_key(self, store):
        result = store.read("ghost")
        assert not result.ok
        assert result.fields is None

    def test_field_projection(self, store):
        store.insert("k", {"a": 1, "b": 2})
        result = store.read("k", field_names=["b"])
        assert result.fields == {"b": 2}

    def test_update_merges_fields(self, store):
        store.insert("k", {"a": 1})
        store.update("k", {"b": 2})
        assert store.read("k").fields == {"a": 1, "b": 2}

    def test_update_missing_key_fails(self, store):
        assert not store.update("ghost", {"a": 1}).ok

    def test_delete_removes_everywhere(self, store):
        store.insert("k", {"a": 1})
        assert store.delete("k").ok
        assert not store.read("k").ok
        assert not store.delete("k").ok  # second delete is a miss

    def test_insert_overwrite_keeps_key_count(self, store):
        store.insert("k", {"a": 1})
        store.insert("k", {"a": 2})
        assert len(store) == 1
        assert store.read("k").fields == {"a": 2}

    def test_scan_returns_key_order(self, store):
        for key in ("c", "a", "b", "d"):
            store.insert(key, {"v": key})
        result = store.scan("a", 3)
        assert [key for key, _ in result.rows] == ["a", "b", "c"]

    def test_scan_from_midpoint(self, store):
        for key in ("a", "b", "c"):
            store.insert(key, {})
        assert [k for k, _ in store.scan("b", 10).rows] == ["b", "c"]

    def test_scan_validation(self, store):
        with pytest.raises(EngineError):
            store.scan("a", 0)

    def test_replication_places_copies(self):
        store = NoSqlStore(num_partitions=4, replication=3, seed=2)
        store.insert("key", {"a": 1})
        populated = sum(1 for size in store.partition_sizes() if size > 0)
        assert populated == 3

    def test_replication_validation(self):
        with pytest.raises(EngineError):
            NoSqlStore(num_partitions=2, replication=3)
        with pytest.raises(EngineError):
            NoSqlStore(num_partitions=0)

    def test_latencies_are_positive(self, store):
        latency = store.insert("k", {"a": 1}).latency_seconds
        assert latency > 0
        assert store.total_latency_seconds >= latency

    def test_replicated_writes_cost_more(self):
        quiet = LatencyModel(jitter_sigma=0.0)
        single = NoSqlStore(num_partitions=4, replication=1, latency=quiet)
        triple = NoSqlStore(num_partitions=4, replication=3, latency=quiet)
        assert (
            triple.insert("k", {"a": 1}).latency_seconds
            > single.insert("k", {"a": 1}).latency_seconds
        )

    def test_counters_track_operations(self, store):
        store.insert("k", {"a": 1})
        store.read("k")
        assert store.counters.records_written == 1
        assert store.counters.records_read == 1


class TestWorkloadSpecs:
    def test_standard_workloads_sum_to_one(self):
        for factory in STANDARD_WORKLOADS.values():
            spec = factory()
            total = sum(weight for _, weight in spec.operation_mix())
            assert total == pytest.approx(1.0)

    def test_bad_proportions_rejected(self):
        with pytest.raises(EngineError):
            YcsbWorkloadSpec("bad", read_proportion=0.9)

    def test_workload_d_uses_latest(self):
        assert (
            STANDARD_WORKLOADS["D"]().request_distribution
            is RequestDistribution.LATEST
        )


class TestYcsbClient:
    def test_load_then_run(self, store):
        client = YcsbClient(store, workload_a(), seed=3)
        client.load(100)
        report = client.run(300)
        assert report.operations == 300
        assert report.failures == 0
        assert report.throughput_ops_per_second > 0

    def test_run_without_load_rejected(self, store):
        client = YcsbClient(store, workload_a(), seed=4)
        with pytest.raises(EngineError):
            client.run(10)

    def test_latency_percentiles_ordered(self, store):
        client = YcsbClient(store, workload_a(), seed=5)
        client.load(50)
        report = client.run(400)
        p50 = report.latency_percentile(OpType.READ, 0.50)
        p99 = report.latency_percentile(OpType.READ, 0.99)
        assert p50 <= p99
        assert report.mean_latency(OpType.READ) > 0

    def test_scan_workload_runs(self, store):
        client = YcsbClient(store, STANDARD_WORKLOADS["E"](), seed=6)
        client.load(50)
        report = client.run(100)
        assert report.latencies[OpType.SCAN]

    def test_rmw_workload_runs(self, store):
        client = YcsbClient(store, STANDARD_WORKLOADS["F"](), seed=7)
        client.load(50)
        report = client.run(100)
        assert report.latencies[OpType.READ_MODIFY_WRITE]

    def test_zipfian_skews_requests(self):
        quiet = LatencyModel(jitter_sigma=0.0)
        store = NoSqlStore(num_partitions=4, latency=quiet, seed=8)
        spec = YcsbWorkloadSpec("C", read_proportion=1.0)
        client = YcsbClient(store, spec, seed=9)
        client.load(100)
        # Track reads by patching the store's read.
        counts: dict[str, int] = {}
        original_read = store.read

        def counting_read(key, field_names=None):
            counts[key] = counts.get(key, 0) + 1
            return original_read(key, field_names)

        store.read = counting_read  # type: ignore[method-assign]
        client.run(500)
        hottest = max(counts.values())
        assert hottest > 500 / 100 * 5  # far above the uniform share

    def test_invalid_counts(self, store):
        client = YcsbClient(store, workload_a(), seed=10)
        with pytest.raises(EngineError):
            client.load(0)
        client.load(10)
        with pytest.raises(EngineError):
            client.run(0)
