"""Tests for the relational engine: storage, expressions, planner, API."""

from __future__ import annotations

import pytest

from repro.core.errors import EngineError
from repro.engines.dbms import (
    Aggregate,
    DbmsEngine,
    PlannerConfig,
    col,
    lit,
)
from repro.engines.dbms.storage import HeapTable, SortedIndex


@pytest.fixture()
def people_db():
    engine = DbmsEngine()
    engine.create_table("people", ("id", "name", "age", "city"))
    engine.insert(
        "people",
        [
            (1, "ann", 30, "rome"),
            (2, "bob", 25, "oslo"),
            (3, "cat", 35, "rome"),
            (4, "dan", 25, "kiev"),
            (5, "eve", 40, "oslo"),
        ],
    )
    return engine


class TestSortedIndex:
    def test_lookup(self):
        index = SortedIndex("c")
        index.build([(5, 0), (3, 1), (5, 2)])
        assert sorted(index.lookup(5)) == [0, 2]
        assert index.lookup(4) == []

    def test_insert_and_remove(self):
        index = SortedIndex("c")
        index.insert(7, 0)
        index.insert(7, 1)
        index.remove(7, 0)
        assert index.lookup(7) == [1]

    def test_range_scan(self):
        index = SortedIndex("c")
        index.build([(i, i) for i in range(10)])
        assert index.range_scan(3, 6) == [3, 4, 5, 6]
        assert index.range_scan(None, 2) == [0, 1, 2]
        assert index.range_scan(8, None) == [8, 9]

    def test_mixed_types_stay_ordered(self):
        index = SortedIndex("c")
        index.build([("zebra", 0), (5, 1), ("apple", 2), (1, 3)])
        # Numbers rank before strings; within ranks, natural order.
        assert index.range_scan() == [3, 1, 2, 0]


class TestHeapTable:
    def test_insert_and_scan(self):
        table = HeapTable("t", ("a", "b"))
        table.insert((1, "x"))
        table.insert((2, "y"))
        assert list(table.scan()) == [(1, "x"), (2, "y")]
        assert len(table) == 2

    def test_width_mismatch_rejected(self):
        table = HeapTable("t", ("a",))
        with pytest.raises(EngineError):
            table.insert((1, 2))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(EngineError):
            HeapTable("t", ("a", "a"))

    def test_delete_tombstones_rows(self):
        table = HeapTable("t", ("a",))
        row_id = table.insert((1,))
        table.insert((2,))
        table.delete_row(row_id)
        assert list(table.scan()) == [(2,)]
        with pytest.raises(EngineError):
            table.fetch(row_id)

    def test_update_maintains_index(self):
        table = HeapTable("t", ("a", "b"))
        row_id = table.insert((1, "x"))
        table.create_index("a")
        table.update_row(row_id, {"a": 9})
        assert table.indexes["a"].lookup(9) == [row_id]
        assert table.indexes["a"].lookup(1) == []

    def test_compact_reclaims_tombstones(self):
        table = HeapTable("t", ("a",))
        for value in range(6):
            table.insert((value,))
        table.create_index("a")
        table.delete_row(0)
        table.delete_row(3)
        reclaimed = table.compact()
        assert reclaimed == 2
        assert len(table) == 4
        assert table.indexes["a"].lookup(5) != []

    def test_duplicate_index_rejected(self):
        table = HeapTable("t", ("a",))
        table.create_index("a")
        with pytest.raises(EngineError):
            table.create_index("a")


class TestExpressions:
    LAYOUT = {"x": 0, "y": 1}

    def test_comparisons(self):
        row = (5, 10)
        assert (col("x") < col("y")).evaluate(row, self.LAYOUT)
        assert (col("x") == lit(5)).evaluate(row, self.LAYOUT)
        assert not (col("y") <= lit(9)).evaluate(row, self.LAYOUT)

    def test_boolean_combinators(self):
        row = (5, 10)
        both = (col("x") == lit(5)) & (col("y") == lit(10))
        either = (col("x") == lit(0)) | (col("y") == lit(10))
        negated = ~(col("x") == lit(5))
        assert both.evaluate(row, self.LAYOUT)
        assert either.evaluate(row, self.LAYOUT)
        assert not negated.evaluate(row, self.LAYOUT)

    def test_arithmetic(self):
        row = (6, 3)
        assert (col("x") + col("y")).evaluate(row, self.LAYOUT) == 9
        assert (col("x") / col("y")).evaluate(row, self.LAYOUT) == 2
        assert (col("x") * lit(2) - lit(1)).evaluate(row, self.LAYOUT) == 11

    def test_unknown_column_raises(self):
        with pytest.raises(EngineError):
            col("zzz").evaluate((1,), {"x": 0})

    def test_columns_collects_references(self):
        expression = (col("a") > lit(1)) & (col("b") == col("c"))
        assert expression.columns() == frozenset({"a", "b", "c"})

    def test_split_and_conjoin_roundtrip(self):
        from repro.engines.dbms.expressions import conjoin, split_conjuncts

        predicate = (col("a") > lit(1)) & (col("b") == lit(2)) & (col("c") < lit(3))
        conjuncts = split_conjuncts(predicate)
        assert len(conjuncts) == 3
        rebuilt = conjoin(conjuncts)
        row = (2, 2, 1)
        layout = {"a": 0, "b": 1, "c": 2}
        assert rebuilt.evaluate(row, layout) == predicate.evaluate(row, layout)


class TestQueries:
    def test_filter(self, people_db):
        result = people_db.execute(
            people_db.query("people").where(col("age") >= lit(30))
        )
        assert {row[1] for row in result.rows} == {"ann", "cat", "eve"}

    def test_projection(self, people_db):
        result = people_db.execute(
            people_db.query("people").select("name", "city").limit(2)
        )
        assert result.schema == ("name", "city")
        assert len(result.rows) == 2

    def test_computed_projection(self, people_db):
        result = people_db.execute(
            people_db.query("people").select(
                "name", ("age_next_year", col("age") + lit(1))
            )
        )
        ages = dict(result.rows)
        assert ages["ann"] == 31

    def test_group_by_with_aggregates(self, people_db):
        result = people_db.execute(
            people_db.query("people")
            .group_by("city")
            .aggregate("count", None, "n")
            .aggregate("avg", "age", "mean_age")
            .order_by("city")
        )
        rows = {row[0]: row for row in result.rows}
        assert rows["rome"][1] == 2
        assert rows["oslo"][2] == pytest.approx(32.5)

    def test_aggregate_without_group_by(self, people_db):
        result = people_db.execute(
            people_db.query("people").aggregate("sum", "age", "total")
        )
        assert result.rows == [(155.0,)]

    def test_min_max(self, people_db):
        result = people_db.execute(
            people_db.query("people")
            .aggregate("min", "age", "youngest")
            .aggregate("max", "age", "oldest")
        )
        assert result.rows == [(25, 40)]

    def test_order_by_desc_and_limit(self, people_db):
        result = people_db.execute(
            people_db.query("people").order_by("age", descending=True).limit(2)
        )
        assert [row[1] for row in result.rows] == ["eve", "cat"]

    def test_multi_key_order(self, people_db):
        result = people_db.execute(
            people_db.query("people").order_by("age").order_by("name")
        )
        names = [row[1] for row in result.rows]
        assert names == ["bob", "dan", "ann", "cat", "eve"]

    def test_column_accessor(self, people_db):
        result = people_db.execute(people_db.query("people"))
        assert result.column("name")[0] == "ann"
        with pytest.raises(EngineError):
            result.column("missing")

    def test_unknown_table_rejected(self, people_db):
        with pytest.raises(EngineError):
            people_db.execute(people_db.query("nope"))

    def test_unknown_predicate_column_rejected(self, people_db):
        with pytest.raises(EngineError):
            people_db.execute(
                people_db.query("people").where(col("salary") > lit(1))
            )

    def test_invalid_aggregate_function(self):
        with pytest.raises(EngineError):
            Aggregate("median", "x", "m")


class TestJoinsAndPlanner:
    @pytest.fixture()
    def joined_db(self, people_db):
        people_db.create_table("visits", ("visit_id", "person_id", "length"))
        people_db.insert(
            "visits",
            [(10, 1, 5), (11, 1, 7), (12, 3, 2), (13, 9, 1)],
        )
        return people_db

    def _join_rows(self, engine):
        return engine.execute(
            engine.query("visits")
            .join("people", "person_id", "id")
            .select("visit_id", "name")
            .order_by("visit_id")
        ).rows

    def test_join_matches_expected(self, joined_db):
        assert self._join_rows(joined_db) == [
            (10, "ann"), (11, "ann"), (12, "cat"),
        ]

    def test_all_join_algorithms_agree(self, people_db):
        expected = None
        for algorithm in ("hash", "nested_loop", "merge"):
            engine = DbmsEngine(PlannerConfig(join_algorithm=algorithm))
            engine.create_table("people", ("id", "name", "age", "city"))
            engine.insert("people", [(1, "ann", 30, "rome"), (2, "bob", 25, "oslo")])
            engine.create_table("visits", ("visit_id", "person_id", "length"))
            engine.insert("visits", [(10, 1, 5), (11, 2, 3), (12, 1, 9)])
            rows = sorted(
                engine.execute(
                    engine.query("visits").join("people", "person_id", "id")
                ).rows
            )
            if expected is None:
                expected = rows
            assert rows == expected

    def test_predicate_pushdown_appears_below_join(self, joined_db):
        plan = joined_db.explain(
            joined_db.query("visits")
            .join("people", "person_id", "id")
            .where(col("length") >= lit(5))
        )
        # The filter on visits.length must sit under the join's outer side.
        join_node = plan
        while join_node.get("op") not in ("HashJoin", "NestedLoopJoin", "MergeJoin"):
            join_node = join_node["child"]
        assert join_node["outer"]["op"] == "Filter"

    def test_pushdown_can_be_disabled(self):
        engine = DbmsEngine(PlannerConfig(predicate_pushdown=False))
        engine.create_table("t", ("a",))
        engine.insert("t", [(1,), (2,)])
        plan = engine.explain(engine.query("t").where(col("a") == lit(1)))
        assert plan["op"] == "Filter"
        assert plan["child"]["op"] == "SeqScan"

    def test_index_scan_chosen_for_point_query(self, people_db):
        people_db.create_index("people", "id")
        plan = people_db.explain(
            people_db.query("people").where(col("id") == lit(3))
        )
        assert plan["op"] == "IndexScan"

    def test_index_scan_can_be_disabled(self, people_db):
        people_db.create_index("people", "id")
        engine = people_db
        engine.planner.config.use_indexes = False
        plan = engine.explain(engine.query("people").where(col("id") == lit(3)))
        assert plan["op"] == "Filter"

    def test_auto_picks_nested_loop_for_tiny_inner(self, joined_db):
        plan = joined_db.explain(
            joined_db.query("visits").join("people", "person_id", "id")
        )
        assert plan["op"] == "NestedLoopJoin"  # 5-row inner under threshold

    def test_join_column_validation(self, joined_db):
        with pytest.raises(EngineError):
            joined_db.execute(
                joined_db.query("visits").join("people", "nope", "id")
            )

    def test_duplicate_columns_qualified(self, people_db):
        people_db.create_table("pets", ("id", "name", "owner_id"))
        people_db.insert("pets", [(1, "rex", 1)])
        result = people_db.execute(
            people_db.query("pets").join("people", "owner_id", "id")
        )
        assert "id_r" in result.schema
        assert "name_r" in result.schema


class TestDml:
    def test_update(self, people_db):
        changed = people_db.update(
            "people", col("city") == lit("rome"), {"age": 99}
        )
        assert changed == 2
        result = people_db.execute(
            people_db.query("people").where(col("age") == lit(99))
        )
        assert len(result.rows) == 2

    def test_delete(self, people_db):
        removed = people_db.delete("people", col("age") < lit(30))
        assert removed == 2
        assert len(people_db.execute(people_db.query("people")).rows) == 3

    def test_load_dataset(self, retail_tables):
        engine = DbmsEngine()
        name = engine.load_dataset(retail_tables["orders"], "orders")
        assert name == "orders"
        assert engine.stats("orders").row_count == 300

    def test_load_requires_table_type(self, text_corpus):
        engine = DbmsEngine()
        with pytest.raises(EngineError):
            engine.load_dataset(text_corpus)

    def test_drop_table(self, people_db):
        people_db.drop_table("people")
        assert not people_db.catalog.has_table("people")
        with pytest.raises(EngineError):
            people_db.drop_table("people")
