"""Tests for the SQL front-end of the relational engine."""

from __future__ import annotations

import pytest

from repro.engines.dbms import DbmsEngine, col, lit
from repro.engines.dbms.sql import SqlSyntaxError, parse_sql


@pytest.fixture()
def db(retail_tables):
    engine = DbmsEngine()
    for name, dataset in retail_tables.items():
        engine.load_dataset(dataset, name)
    return engine


class TestParsing:
    def test_select_star(self, db):
        result = db.sql("SELECT * FROM customers")
        assert len(result.rows) == 80
        assert result.schema == ("customer_id", "name", "country", "age")

    def test_projection(self, db):
        result = db.sql("SELECT name, age FROM customers LIMIT 3")
        assert result.schema == ("name", "age")
        assert len(result.rows) == 3

    def test_projection_with_alias(self, db):
        result = db.sql("SELECT age AS years FROM customers LIMIT 1")
        assert result.schema == ("years",)

    def test_computed_expression(self, db):
        result = db.sql(
            "SELECT age + 1 AS next_age FROM customers LIMIT 2"
        )
        raw = db.sql("SELECT age FROM customers LIMIT 2")
        assert [row[0] for row in result.rows] == [
            row[0] + 1 for row in raw.rows
        ]

    def test_arithmetic_precedence(self, db):
        result = db.sql(
            "SELECT age + 2 * 10 AS v FROM customers LIMIT 1"
        )
        base = db.sql("SELECT age FROM customers LIMIT 1").rows[0][0]
        assert result.rows[0][0] == base + 20

    def test_where_filters(self, db):
        result = db.sql("SELECT * FROM customers WHERE age >= 60")
        builder = db.execute(
            db.query("customers").where(col("age") >= lit(60))
        )
        assert sorted(result.rows) == sorted(builder.rows)

    def test_where_and_or_not(self, db):
        result = db.sql(
            "SELECT * FROM customers "
            "WHERE (country = 'us' OR country = 'uk') AND NOT age < 30"
        )
        for row in result.rows:
            assert row[2] in ("us", "uk")
            assert row[3] >= 30

    def test_string_literal_with_quote(self, db):
        db.create_table("notes", ("id", "text"))
        db.insert("notes", [(1, "it's fine")])
        result = db.sql("SELECT * FROM notes WHERE text = 'it''s fine'")
        assert len(result.rows) == 1

    def test_not_equal_variants(self, db):
        a = db.sql("SELECT * FROM customers WHERE country != 'us'")
        b = db.sql("SELECT * FROM customers WHERE country <> 'us'")
        assert sorted(a.rows) == sorted(b.rows)

    def test_join(self, db):
        result = db.sql(
            "SELECT * FROM orders "
            "JOIN customers ON orders.customer_id = customers.customer_id"
        )
        assert len(result.rows) == 300  # every order has a customer

    def test_group_by_with_aggregates(self, db):
        result = db.sql(
            "SELECT country, COUNT(*) AS n, AVG(age) AS mean_age "
            "FROM customers GROUP BY country ORDER BY country"
        )
        assert result.schema == ("country", "n", "mean_age")
        total = sum(row[1] for row in result.rows)
        assert total == 80

    def test_aggregate_without_group(self, db):
        result = db.sql("SELECT SUM(quantity) AS total FROM orders")
        reference = sum(row[3] for row in db.sql("SELECT * FROM orders").rows)
        assert result.rows == [(float(reference),)]

    def test_order_by_desc_and_limit(self, db):
        result = db.sql(
            "SELECT name, age FROM customers ORDER BY age DESC LIMIT 2"
        )
        ages = [row[1] for row in result.rows]
        assert ages == sorted(ages, reverse=True)
        assert len(result.rows) == 2

    def test_multi_key_order(self, db):
        result = db.sql(
            "SELECT country, age FROM customers ORDER BY country ASC, age DESC"
        )
        rows = result.rows
        assert rows == sorted(rows, key=lambda r: (r[0], -r[1]))

    def test_full_paper_query(self, db):
        """The full select→join→aggregate shape, via SQL text."""
        sql_result = db.sql(
            "SELECT category, SUM(quantity) AS total FROM orders "
            "JOIN products ON orders.product_id = products.product_id "
            "WHERE quantity >= 2 GROUP BY category ORDER BY total DESC"
        )
        builder_result = db.execute(
            db.query("orders")
            .where(col("quantity") >= lit(2))
            .join("products", "product_id", "product_id")
            .group_by("category")
            .aggregate("sum", "quantity", "total")
            .order_by("total", descending=True)
        )
        assert sql_result.rows == builder_result.rows

    def test_case_insensitive_keywords(self, db):
        result = db.sql("select name from customers limit 1")
        assert result.schema == ("name",)


class TestSyntaxErrors:
    def test_missing_from(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT *")

    def test_trailing_garbage(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT * FROM customers extra")

    def test_bad_limit(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT * FROM customers LIMIT many")

    def test_bare_column_next_to_aggregate_needs_group_by(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT country, COUNT(*) AS n FROM customers")

    def test_bad_comparison(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT * FROM customers WHERE age ~ 5")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT ; FROM t")

    def test_empty_query(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("")


class TestParseOnly:
    def test_parse_produces_logical_query(self):
        query = parse_sql(
            "SELECT a, SUM(b) AS total FROM t "
            "JOIN u ON t.k = u.k WHERE a > 1 GROUP BY a LIMIT 5"
        )
        assert query.table == "t"
        assert query.joins[0].table == "u"
        assert query.group_by == ["a"]
        assert query.aggregates[0].alias == "total"
        assert query.limit == 5

    def test_qualified_names_are_stripped(self):
        query = parse_sql("SELECT t.a FROM t WHERE t.a = 1")
        assert query.projection[0][0] == "a"
