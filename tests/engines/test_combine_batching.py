"""Combiner-side batch accumulation on the MapReduce shuffle path.

``combine_batch_records`` makes the combiner run per full buffer
instead of once at map-task end — the shuffle half of the columnar
refactor (DESIGN.md §3.14).  For algebraic combiners the output must be
identical (the Hadoop contract: a combiner may run 0..n times), the
per-partition first-appearance key order must survive, and the
``combine::*`` counters must report the flush sizes.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import EngineError
from repro.engines.mapreduce import (
    DEFAULT_COMBINE_BATCH_RECORDS,
    CounterGroup,
    JobConf,
    MapReduceEngine,
    MapReduceJob,
)


def word_count_job(**conf_kwargs) -> MapReduceJob:
    def wc_map(key, value):
        for word in value.split():
            yield word, 1

    def wc_reduce(key, values):
        yield key, sum(values)

    return MapReduceJob(
        "wordcount", wc_map, wc_reduce, combiner=wc_reduce,
        conf=JobConf(**conf_kwargs),
    )


def _corpus(num_lines: int, seed: int = 11) -> list[tuple[int, str]]:
    rng = random.Random(seed)
    words = [f"w{index}" for index in range(40)]
    return [
        (line, " ".join(rng.choice(words) for _ in range(12)))
        for line in range(num_lines)
    ]


PAIRS = _corpus(150)


class TestOutputEquivalence:
    def test_batched_combine_output_matches_legacy(self):
        legacy = MapReduceEngine().run(word_count_job(), PAIRS)
        for batch_records in (1, 7, 64, 10_000):
            batched = MapReduceEngine().run(
                word_count_job(combine_batch_records=batch_records), PAIRS
            )
            assert batched.output == legacy.output, batch_records

    def test_order_preserved_without_sorted_keys(self):
        legacy = MapReduceEngine().run(
            word_count_job(sort_keys=False), PAIRS
        )
        batched = MapReduceEngine().run(
            word_count_job(sort_keys=False, combine_batch_records=16), PAIRS
        )
        assert batched.output == legacy.output

    def test_engine_default_equivalent_to_job_conf(self):
        via_engine = MapReduceEngine(combine_batch_records=32).run(
            word_count_job(), PAIRS
        )
        via_job = MapReduceEngine().run(
            word_count_job(combine_batch_records=32), PAIRS
        )
        assert via_engine.output == via_job.output

    def test_job_conf_overrides_engine_default(self):
        engine = MapReduceEngine(combine_batch_records=10_000)
        result = engine.run(
            word_count_job(combine_batch_records=8), PAIRS
        )
        # A tiny job-level buffer forces many flushes; the engine-wide
        # 10k default would have flushed once per task.
        assert result.counters.get("combine", "max_flush_records") <= 8

    def test_jobs_without_combiner_unaffected(self):
        job = word_count_job(combine_batch_records=8)
        job.combiner = None
        result = MapReduceEngine().run(job, PAIRS)
        legacy = MapReduceEngine().run(word_count_job(), PAIRS)
        assert dict(result.output) == dict(legacy.output)
        assert result.counters.get("combine", "flushes") == 0


class TestBatchCounters:
    def test_flush_counters_report_batch_sizes(self):
        result = MapReduceEngine().run(
            word_count_job(combine_batch_records=64), PAIRS
        )
        flushes = result.counters.get("combine", "flushes")
        flushed = result.counters.get("combine", "flushed_records")
        max_flush = result.counters.get("combine", "max_flush_records")
        assert flushes > 0
        # Every mapped record passes through the accumulator.
        assert flushed == result.counters.get("map", "output_records")
        assert 0 < max_flush <= 64
        assert result.cost.batches == flushes

    def test_legacy_path_reports_no_flushes(self):
        result = MapReduceEngine().run(word_count_job(), PAIRS)
        assert result.counters.get("combine", "flushes") == 0
        assert result.cost.batches == 0

    def test_max_flush_merges_by_max_not_sum(self):
        left = CounterGroup()
        left.record_max("combine", "max_flush_records", 40)
        right = CounterGroup()
        right.record_max("combine", "max_flush_records", 64)
        right.increment("combine", "flushes", 2)
        left.merge(right)
        assert left.get("combine", "max_flush_records") == 64
        assert left.get("combine", "flushes") == 2

    def test_record_max_keeps_high_water_mark(self):
        counters = CounterGroup()
        counters.record_max("combine", "max_flush_records", 10)
        counters.record_max("combine", "max_flush_records", 5)
        assert counters.get("combine", "max_flush_records") == 10


class TestValidation:
    def test_non_positive_batch_rejected_on_conf(self):
        with pytest.raises(EngineError):
            JobConf(combine_batch_records=0)

    def test_non_positive_batch_rejected_on_engine(self):
        with pytest.raises(EngineError):
            MapReduceEngine(combine_batch_records=-1)

    def test_default_constant_is_positive(self):
        assert DEFAULT_COMBINE_BATCH_RECORDS > 0
