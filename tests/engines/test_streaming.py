"""Tests for the streaming engine: windows, topologies, queueing model."""

from __future__ import annotations

import pytest

from repro.core.errors import EngineError
from repro.datagen.stream import EventKind, StreamEvent
from repro.engines.streaming import (
    FilterOperator,
    MapOperator,
    SlidingWindowAggregate,
    StreamingEngine,
    Topology,
    TumblingWindowAggregate,
)


def make_events(timestamps, keys=None, values=None):
    keys = keys or [0] * len(timestamps)
    values = values or [1.0] * len(timestamps)
    return [
        StreamEvent(timestamp=t, key=k, value=v)
        for t, k, v in zip(timestamps, keys, values)
    ]


class TestTumblingWindows:
    def test_counts_per_window(self):
        events = make_events([0.1, 0.2, 1.1, 1.2, 1.3, 2.5])
        window = TumblingWindowAggregate(1.0, lambda acc, v: acc + 1)
        topology = Topology("count").then(window)
        report = StreamingEngine().run(topology, events)
        counts = {
            (result.window_start, result.key): result.value
            for result in report.results
        }
        assert counts[(0.0, 0)] == 2
        assert counts[(1.0, 0)] == 3
        assert counts[(2.0, 0)] == 1

    def test_per_key_aggregation(self):
        events = make_events([0.1, 0.2, 0.3], keys=[1, 2, 1])
        window = TumblingWindowAggregate(1.0, lambda acc, v: acc + 1)
        report = StreamingEngine().run(Topology("t").then(window), events)
        by_key = {result.key: result.value for result in report.results}
        assert by_key == {1: 2, 2: 1}

    def test_sum_aggregation(self):
        events = make_events([0.1, 0.2], values=[3.0, 4.0])
        window = TumblingWindowAggregate(1.0, lambda acc, v: acc + v)
        report = StreamingEngine().run(Topology("t").then(window), events)
        assert report.results[0].value == pytest.approx(7.0)

    def test_watermark_emits_closed_windows_early(self):
        window = TumblingWindowAggregate(1.0, lambda acc, v: acc + 1)
        window.process(StreamEvent(0.5, 0, 1.0))
        window.process(StreamEvent(2.5, 0, 1.0))  # closes window [0, 1)
        emitted = window.take_emitted()
        assert len(emitted) == 1
        assert emitted[0].window_start == 0.0

    def test_invalid_window(self):
        with pytest.raises(EngineError):
            TumblingWindowAggregate(0.0, lambda acc, v: acc)

    def test_every_event_lands_in_exactly_one_window(self):
        events = make_events([i * 0.113 for i in range(100)])
        window = TumblingWindowAggregate(0.25, lambda acc, v: acc + 1)
        report = StreamingEngine().run(Topology("t").then(window), events)
        assert sum(result.value for result in report.results) == 100


class TestSlidingWindows:
    def test_event_lands_in_overlapping_windows(self):
        events = make_events([0.55])
        window = SlidingWindowAggregate(1.0, 0.5, lambda acc, v: acc + 1)
        report = StreamingEngine().run(Topology("t").then(window), events)
        starts = sorted(result.window_start for result in report.results)
        assert starts == [0.0, 0.5]

    def test_coverage_ratio(self):
        """With size = 2x slide, each event contributes to two windows."""
        events = make_events([0.1 + i * 0.2 for i in range(50)])
        window = SlidingWindowAggregate(0.4, 0.2, lambda acc, v: acc + 1)
        report = StreamingEngine().run(Topology("t").then(window), events)
        total = sum(result.value for result in report.results)
        # Events near t=0 fall in one window only; everything else in two.
        assert 90 <= total <= 100

    def test_validation(self):
        with pytest.raises(EngineError):
            SlidingWindowAggregate(1.0, 2.0, lambda acc, v: acc)
        with pytest.raises(EngineError):
            SlidingWindowAggregate(0.0, 0.0, lambda acc, v: acc)


class TestOperators:
    def test_filter_drops_events(self):
        events = [
            StreamEvent(0.1, 0, 1.0, EventKind.INSERT),
            StreamEvent(0.2, 0, 1.0, EventKind.UPDATE),
        ]
        topology = (
            Topology("updates")
            .then(FilterOperator(lambda e: e.kind is EventKind.UPDATE))
            .then(TumblingWindowAggregate(1.0, lambda acc, v: acc + 1))
        )
        report = StreamingEngine().run(topology, events)
        assert sum(result.value for result in report.results) == 1

    def test_map_transforms_values(self):
        events = make_events([0.1], values=[2.0])
        doubler = MapOperator(
            lambda e: StreamEvent(e.timestamp, e.key, e.value * 2, e.kind)
        )
        topology = (
            Topology("double")
            .then(doubler)
            .then(TumblingWindowAggregate(1.0, lambda acc, v: acc + v))
        )
        report = StreamingEngine().run(topology, events)
        assert report.results[0].value == pytest.approx(4.0)


class TestQueueingModel:
    def _uniform_events(self, rate: float, count: int):
        return make_events([i / rate for i in range(count)])

    def test_keeps_up_when_service_exceeds_arrival(self):
        engine = StreamingEngine(service_seconds_per_event=1e-4)  # 10k/s
        report = engine.run(
            Topology("t"), self._uniform_events(rate=1000.0, count=500)
        )
        assert report.keeps_up
        assert report.final_backlog_seconds < 0.01

    def test_overload_builds_backlog(self):
        engine = StreamingEngine(service_seconds_per_event=2e-3)  # 500/s
        report = engine.run(
            Topology("t"), self._uniform_events(rate=1000.0, count=500)
        )
        assert not report.keeps_up
        assert report.final_backlog_seconds > 0.1
        # Latency grows towards the end of the stream (queue builds).
        assert report.latencies[-1] > report.latencies[0]

    def test_latency_floor_is_service_time(self):
        engine = StreamingEngine(service_seconds_per_event=1e-3)
        report = engine.run(Topology("t"), self._uniform_events(10.0, 20))
        assert min(report.latencies) >= 1e-3 - 1e-12

    def test_out_of_order_events_are_sorted(self):
        events = [StreamEvent(0.3, 0, 1.0), StreamEvent(0.1, 0, 1.0)]
        window = TumblingWindowAggregate(1.0, lambda acc, v: acc + 1)
        report = StreamingEngine().run(Topology("t").then(window), events)
        assert sum(result.value for result in report.results) == 2

    def test_empty_stream(self):
        report = StreamingEngine().run(Topology("t"), [])
        assert report.events_in == 0
        assert report.results == []

    def test_invalid_service_time(self):
        with pytest.raises(EngineError):
            StreamingEngine(service_seconds_per_event=0.0)

    def test_counters(self):
        engine = StreamingEngine()
        engine.run(Topology("t"), self._uniform_events(100.0, 10))
        assert engine.counters.records_read == 10
