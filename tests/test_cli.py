"""Tests for the repro-bench command-line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_catalogues(self):
        code, output = run_cli("list")
        assert code == 0
        for needle in ("prescriptions:", "micro-wordcount", "engines:",
                       "mapreduce", "generators:", "lda-text",
                       "workloads:", "formats:", "csv"):
            assert needle in output


class TestRun:
    def test_runs_a_prescription(self):
        code, output = run_cli(
            "run", "micro-wordcount", "--volume", "40"
        )
        assert code == 0
        assert "five-step process" in output
        assert "data-generation" in output
        assert "mapreduce" in output

    def test_engine_selection(self):
        code, output = run_cli(
            "run", "database-aggregate-join", "--engine", "dbms",
            "--volume", "50",
        )
        assert code == 0
        assert "dbms" in output
        assert "mapreduce" not in output.split("five-step process")[1]

    def test_repeats_and_partitions(self):
        code, output = run_cli(
            "run", "micro-sort", "--volume", "30",
            "--repeats", "2", "--partitions", "3",
        )
        assert code == 0

    def test_params_are_typed(self):
        code, output = run_cli(
            "run", "oltp-read-write", "--engine", "nosql",
            "--volume", "40", "--param", "operation_count=120",
        )
        assert code == 0

    def test_json_output(self):
        code, output = run_cli(
            "run", "micro-wordcount", "--volume", "20", "--json"
        )
        assert code == 0
        payload = json.loads(output)
        assert payload[0]["engine"] == "mapreduce"

    def test_fault_tolerance_flags_accepted(self):
        code, output = run_cli(
            "run", "micro-wordcount", "--volume", "30",
            "--retries", "2", "--retry-backoff", "0",
            "--on-error", "continue", "--task-timeout", "30",
        )
        assert code == 0
        assert "failures" not in output  # clean run: no failure section

    def test_on_error_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            run_cli("run", "micro-wordcount", "--on-error", "panic")

    def test_unknown_prescription_fails_cleanly(self):
        code, _ = run_cli("run", "does-not-exist")
        assert code == 2

    def test_bad_param_syntax(self):
        with pytest.raises(SystemExit):
            run_cli("run", "micro-sort", "--param", "notkeyvalue")


class TestTraceFlags:
    STEPS = ("planning", "data-generation", "test-generation",
             "execution", "analysis-evaluation")

    def test_trace_prints_the_span_tree(self):
        code, output = run_cli(
            "run", "micro-wordcount", "--volume", "20", "--trace"
        )
        assert code == 0
        assert "span tree:" in output
        tree = output.split("span tree:")[1]
        assert "benchmark-run" in tree
        for step in self.STEPS:
            assert step in tree
        assert "queue_wait_seconds=" in tree
        assert "ms" in tree

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_trace_covers_every_executor_backend(self, executor):
        code, output = run_cli(
            "run", "micro-wordcount", "--volume", "20",
            "--executor", executor, "--workers", "2", "--trace",
        )
        assert code == 0
        tree = output.split("span tree:")[1]
        assert "task" in tree
        assert "queue_wait_seconds=" in tree

    def test_trace_out_writes_parseable_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, output = run_cli(
            "run", "micro-wordcount", "--volume", "20",
            "--trace-out", str(path),
        )
        assert code == 0
        # --trace-out alone records but does not print the tree.
        assert "span tree:" not in output
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        root = json.loads(lines[0])
        assert root["name"] == "benchmark-run"
        names = {span["name"] for span in _walk_payload(root)}
        assert set(self.STEPS) <= names
        assert "task" in names and "run" in names

    def test_step_durations_sum_to_the_run_total(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, _ = run_cli(
            "run", "micro-wordcount", "--volume", "20",
            "--trace-out", str(path),
        )
        assert code == 0
        root = json.loads(path.read_text().strip())
        steps = sum(
            child["duration_seconds"] for child in root["children"]
        )
        assert 0 < steps <= root["duration_seconds"]
        # The five steps account for (nearly) the whole run.
        assert steps >= 0.9 * root["duration_seconds"]


def _walk_payload(node: dict) -> list[dict]:
    spans = [node]
    for child in node.get("children", []):
        spans.extend(_walk_payload(child))
    return spans


class TestGenerate:
    def test_purely_synthetic(self):
        code, output = run_cli(
            "generate", "random-text", "--volume", "10", "--sample", "2"
        )
        assert code == 0
        assert "generated 10 records" in output

    def test_veracity_aware_with_seed_corpus(self):
        code, output = run_cli(
            "generate", "unigram-text", "--volume", "5",
            "--fit-on", "text-corpus",
        )
        assert code == 0
        assert "generated 5 records" in output

    def test_format_conversion(self):
        code, output = run_cli(
            "generate", "mixture-table", "--volume", "5",
            "--format", "csv", "--sample", "3",
        )
        assert code == 0
        assert "x0" in output  # the CSV header line

    def test_unknown_generator(self):
        code, _ = run_cli("generate", "quantum-data")
        assert code == 2


class TestTables:
    def test_regenerates_both_tables(self):
        code, output = run_cli("tables")
        assert code == 0
        assert "Table 1" in output
        assert "BigDataBench" in output
        assert output.count("matches the paper: yes") == 2


class TestPrescriptionFiles:
    def test_export_then_run_from_file(self, tmp_path):
        """§5.2 reusable prescriptions as shareable files, end to end."""
        path = tmp_path / "prescriptions.json"
        code, output = run_cli("export-prescriptions", str(path))
        assert code == 0
        assert "wrote" in output
        assert path.exists()
        code, output = run_cli(
            "run", "micro-wordcount", "--volume", "25",
            "--repository", str(path),
        )
        assert code == 0
        assert "mapreduce" in output

    def test_corrupt_repository_file_fails_cleanly(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        code, _ = run_cli(
            "run", "micro-wordcount", "--repository", str(path)
        )
        assert code == 2


class TestResultAnalysis:
    """The record → promote → compare → gate CLI loop on a tmp store."""

    def _record(self, tmp_path, *extra):
        return run_cli(
            "run", "micro-wordcount", "--volume", "30", "--repeats", "2",
            "--record", "--store-dir", str(tmp_path / "store"), *extra,
        )

    def test_record_and_runs_listing(self, tmp_path):
        code, output = self._record(tmp_path)
        assert code == 0
        assert "recorded 1 run(s)" in output
        assert "r0001" in output
        code, output = run_cli(
            "runs", "list", "--store-dir", str(tmp_path / "store")
        )
        assert code == 0
        assert "r0001" in output
        assert "micro-wordcount@mapreduce" in output
        code, output = run_cli(
            "runs", "show", "r0001",
            "--store-dir", str(tmp_path / "store"),
        )
        assert code == 0
        assert "duration" in output

    def test_store_dir_env_variable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env-store"))
        code, _ = run_cli(
            "run", "micro-wordcount", "--volume", "30", "--record"
        )
        assert code == 0
        assert (tmp_path / "env-store" / "runs.jsonl").exists()

    def test_compare_identical_reruns(self, tmp_path):
        self._record(tmp_path)
        self._record(tmp_path)
        code, output = run_cli(
            "compare", "r0001", "r0002",
            "--store-dir", str(tmp_path / "store"),
            "--metric", "throughput",
        )
        assert code == 0
        assert "unchanged" in output
        code, output = run_cli(
            "compare", "r0001", "r0002", "--json",
            "--store-dir", str(tmp_path / "store"),
            "--metric", "throughput",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["overall"] == "unchanged"

    def test_gate_passes_then_fails_on_injected_slowdown(self, tmp_path):
        self._record(tmp_path)
        code, output = run_cli(
            "baseline", "promote", "latest", "main",
            "--store-dir", str(tmp_path / "store"),
        )
        assert code == 0
        assert "promoted r0001" in output
        # Identical rerun: deterministic metrics unchanged, gate passes.
        self._record(tmp_path)
        code, output = run_cli(
            "gate", "--baseline", "main",
            "--store-dir", str(tmp_path / "store"),
            "--metric", "throughput",
        )
        assert code == 0
        assert "PASS" in output
        # Injected latency: duration regresses, gate exits nonzero.  The
        # repeats stay the same — repeats are part of the spec
        # fingerprint, and the gate only considers the baseline's series.
        self._record(tmp_path, "--inject-latency", "0.05")
        code, output = run_cli(
            "gate", "--baseline", "main", "--json",
            "--store-dir", str(tmp_path / "store"),
            "--metric", "duration",
        )
        assert code == 1
        payload = json.loads(output)
        assert payload["passed"] is False
        assert payload["comparison"]["metrics"]["duration"]["verdict"] == (
            "regressed"
        )

    def test_baseline_list_and_remove(self, tmp_path):
        self._record(tmp_path)
        run_cli(
            "baseline", "promote", "latest", "main",
            "--store-dir", str(tmp_path / "store"),
        )
        code, output = run_cli(
            "baseline", "list", "--store-dir", str(tmp_path / "store")
        )
        assert code == 0
        assert "main" in output and "r0001" in output
        code, _ = run_cli(
            "baseline", "remove", "main",
            "--store-dir", str(tmp_path / "store"),
        )
        assert code == 0

    def test_history_style_renders_sparkline_and_delta(self, tmp_path):
        self._record(tmp_path)
        run_cli(
            "baseline", "promote", "latest", "main",
            "--store-dir", str(tmp_path / "store"),
        )
        code, output = run_cli(
            "run", "micro-wordcount", "--volume", "30", "--repeats", "2",
            "--history", "--baseline", "main",
            "--store-dir", str(tmp_path / "store"),
        )
        assert code == 0
        assert "history" in output
        assert "vs baseline" in output

    def test_unknown_record_and_baseline_fail_cleanly(self, tmp_path):
        self._record(tmp_path)
        code, _ = run_cli(
            "runs", "show", "zzzz",
            "--store-dir", str(tmp_path / "store"),
        )
        assert code == 2
        code, _ = run_cli(
            "gate", "--baseline", "nope",
            "--store-dir", str(tmp_path / "store"),
        )
        assert code == 2


class TestMiniature:
    def test_runs_a_miniature(self):
        code, output = run_cli("miniature", "GridMix", "--scale", "0.3")
        assert code == 0
        assert "GridMix" in output
        assert "sort" in output

    def test_unknown_suite(self):
        code, _ = run_cli("miniature", "SparkBench")
        assert code == 2


class TestFlagAliases:
    """The historical flag spellings stay as hidden aliases of the
    shared parent-parser flags."""

    def test_backend_aliases_executor(self):
        code, output = run_cli(
            "run", "micro-wordcount", "--volume", "30",
            "--backend", "thread", "--max-workers", "2",
        )
        assert code == 0
        assert "micro-wordcount@mapreduce" in output

    def test_store_aliases_store_dir(self, tmp_path):
        code, _ = run_cli(
            "run", "micro-wordcount", "--volume", "30", "--record",
            "--store", str(tmp_path / "store"),
        )
        assert code == 0
        code, output = run_cli(
            "runs", "list", "--store", str(tmp_path / "store")
        )
        assert code == 0
        assert "r0001" in output

    def test_aliases_are_hidden_from_help(self, capsys):
        import contextlib

        with contextlib.suppress(SystemExit):
            main(["run", "--help"])
        help_text = capsys.readouterr().out
        assert "--store-dir" in help_text
        assert "--executor" in help_text
        assert "--workers" in help_text
        assert "--store " not in help_text
        assert "--backend" not in help_text
        assert "--max-workers" not in help_text


class TestServiceVerbs:
    """submit / serve / jobs against a tmp store."""

    def test_submit_runs_and_logs_a_job(self, tmp_path):
        store = str(tmp_path / "store")
        code, output = run_cli(
            "submit", "micro-wordcount", "--volume", "30",
            "--engine", "mapreduce", "--record", "--store-dir", store,
        )
        assert code == 0
        assert "submitted j0001" in output
        assert "micro-wordcount@mapreduce" in output
        assert "r0001" in output

        code, output = run_cli("jobs", "list", "--store-dir", store)
        assert code == 0
        assert "j0001" in output
        assert "done" in output

        code, output = run_cli("jobs", "show", "j0001",
                               "--store-dir", store)
        assert code == 0
        assert "state:       done" in output
        assert "queued" in output and "running" in output

    def test_jobs_cancel_rejects_terminal_jobs(self, tmp_path):
        store = str(tmp_path / "store")
        run_cli("submit", "micro-wordcount", "--volume", "30",
                "--store-dir", store)
        code, _ = run_cli("jobs", "cancel", "j0001",
                          "--store-dir", store)
        assert code == 2

    def test_serve_spec_file_batch(self, tmp_path):
        store = str(tmp_path / "store")
        spec_file = tmp_path / "batch.json"
        spec_file.write_text(json.dumps([
            {"prescription": "micro-wordcount",
             "engines": ["mapreduce"], "volume": 30, "record": True},
            # A version-1 payload: no spec_version, legacy "engine" key.
            {"prescription": "micro-sort", "engine": "mapreduce",
             "volume": 30, "record": True},
        ]))
        code, output = run_cli(
            "serve", "--spec-file", str(spec_file),
            "--schedulers", "2", "--store-dir", store,
        )
        assert code == 0
        assert "2/2 job(s) done" in output
        code, output = run_cli("runs", "list", "--store-dir", store)
        assert code == 0
        assert "r0001" in output and "r0002" in output

    def test_serve_single_object_spec_file(self, tmp_path):
        spec_file = tmp_path / "one.json"
        spec_file.write_text(json.dumps(
            {"prescription": "micro-wordcount", "volume": 30,
             "engines": ["mapreduce"]}
        ))
        code, output = run_cli(
            "serve", "--spec-file", str(spec_file), "--quiet",
            "--store-dir", str(tmp_path / "store"),
        )
        assert code == 0
        assert "1/1 job(s) done" in output

    def test_serve_reports_failed_jobs_nonzero(self, tmp_path):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(json.dumps(
            {"prescription": "micro-wordcount", "volume": 30,
             "engines": ["mapreduce"], "task_timeout": 0.01,
             "inject_latency": 0.3}
        ))
        code, output = run_cli(
            "serve", "--spec-file", str(spec_file), "--quiet",
            "--store-dir", str(tmp_path / "store"),
        )
        assert code == 1
        assert "0/1 job(s) done" in output

    def test_jobs_list_empty_store(self, tmp_path):
        code, output = run_cli(
            "jobs", "list", "--store-dir", str(tmp_path / "store")
        )
        assert code == 0
        assert "no jobs logged" in output

    def test_jobs_cancel_marks_orphaned_job(self, tmp_path):
        # Craft a log whose job never went terminal (the owning service
        # process died); the offline cancel tombstones it.
        from repro.core.spec import BenchmarkSpec
        from repro.service.jobs import Job, JobLog

        store = tmp_path / "store"
        log = JobLog(store)
        log.append(Job(spec=BenchmarkSpec("micro-wordcount"),
                       job_id="j0001"), "queued")
        code, output = run_cli("jobs", "cancel", "j0001",
                               "--store-dir", str(store))
        assert code == 0
        assert "cancelled j0001" in output
        code, output = run_cli("jobs", "list", "--state", "cancelled",
                               "--store-dir", str(store))
        assert code == 0
        assert "j0001" in output


class TestLoad:
    def test_synthetic_run_passes_default_slo(self):
        code, output = run_cli(
            "load", "--rate", "100", "--duration", "2", "--seed", "3",
        )
        assert code == 0
        assert "SLO: PASS" in output
        assert "latency p50" in output
        assert "achieved_rate" in output

    def test_json_report_has_the_acceptance_fields(self):
        code, output = run_cli(
            "load", "--arrival", "poisson", "--rate", "150",
            "--duration", "2", "--slo-p99", "0.1", "--json",
        )
        assert code == 0
        payload = json.loads(output)
        for field in ("offered_rate", "achieved_rate", "shed_fraction",
                      "error_fraction", "latency", "slo"):
            assert field in payload
        for quantile in ("p50", "p95", "p99"):
            assert quantile in payload["latency"]
        assert payload["slo"]["passed"] is True
        assert any(
            check["name"] == "latency_p99"
            for check in payload["slo"]["checks"]
        )

    def test_same_seed_same_verdict(self):
        """Acceptance: same seed → byte-identical report and verdict."""
        outputs = [
            run_cli(
                "load", "--arrival", "bursty", "--rate", "200",
                "--duration", "3", "--seed", "11", "--json",
            )
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]

    def test_violated_slo_exits_nonzero(self):
        code, output = run_cli(
            "load", "--rate", "100", "--duration", "2",
            "--slo-p99", "1e-9",
        )
        assert code == 1
        assert "SLO: FAIL" in output
        assert "VIOLATED" in output

    def test_overload_sheds_and_fails(self):
        code, output = run_cli(
            "load", "--arrival", "constant", "--rate", "200",
            "--duration", "1", "--concurrency", "1",
            "--queue-capacity", "2", "--mean-service", "0.1",
            "--service-distribution", "constant",
        )
        assert code == 1
        assert "shed_fraction" in output

    def test_record_lands_in_run_store(self, tmp_path):
        store = str(tmp_path / "store")
        code, output = run_cli(
            "load", "--rate", "50", "--duration", "1",
            "--record", "--store-dir", store,
        )
        assert code == 0
        assert "recorded r0001" in output
        code, output = run_cli("runs", "list", "--store-dir", store)
        assert code == 0
        assert "load:open-poisson" in output
        assert "loadgen-virtual" in output

    def test_closed_loop_flags(self):
        code, output = run_cli(
            "load", "--sessions", "3", "--think-time", "0.01",
            "--duration", "1", "--seed", "5",
        )
        assert code == 0
        assert "3 sessions (closed loop)" in output

    def test_service_mode_smoke(self, tmp_path):
        code, output = run_cli(
            "load", "--service", "--arrival", "poisson",
            "--rate", "4", "--duration", "1",
            "--slo-min-rate", "0.1", "--slo-p99", "30",
            "--store-dir", str(tmp_path / "store"),
        )
        assert code == 0
        assert "service:micro-wordcount" in output

    def test_unknown_arrival_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            run_cli("load", "--arrival", "sawtooth")


class TestAblate:
    """The tuning-ablation verb: matrix, verdicts, attribution."""

    def test_ascii_report_with_record_ids(self, tmp_path):
        code, output = run_cli(
            "ablate", "--workloads", "relational", "--engines", "dbms",
            "--repeats", "2", "--volume", "60", "--no-one-offs",
            "--store-dir", str(tmp_path),
        )
        assert code == 0
        assert "matrix" in output
        assert "verdicts (vs normal)" in output
        assert "optimized" in output
        assert "r0001" in output  # every cell carries a run-store id

    def test_json_style_parses_and_counts_cells(self, tmp_path):
        code, output = run_cli(
            "ablate", "--workloads", "relational", "--engines", "dbms",
            "--repeats", "2", "--volume", "60", "--no-one-offs",
            "--style", "json", "--store-dir", str(tmp_path),
        )
        assert code == 0
        payload = json.loads(output)
        assert len(payload["cells"]) == 2  # normal + optimized
        assert payload["verdicts"]

    def test_unknown_workload_fails_cleanly(self, tmp_path, capsys):
        code, _ = run_cli(
            "ablate", "--workloads", "tpc-h",
            "--store-dir", str(tmp_path),
        )
        assert code != 0
        assert "unknown workload" in capsys.readouterr().err
