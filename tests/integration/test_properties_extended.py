"""Property-based tests for the DFS substrate and the SQL front-end."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engines.dbms import DbmsEngine, col, lit
from repro.engines.dfs import DistributedFileSystem

# ---------------------------------------------------------------------------
# DFS: the filesystem must behave exactly like a dict[str, bytes].
# ---------------------------------------------------------------------------

file_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "append", "delete"]),
        st.sampled_from(["/a", "/b", "/c", "/dir/d"]),
        st.binary(max_size=300),
    ),
    max_size=25,
)


class TestDfsProperties:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(file_ops, st.integers(min_value=1, max_value=3))
    def test_dfs_matches_dict_model(self, operations, replication):
        dfs = DistributedFileSystem(
            num_nodes=3, block_size=64, replication=replication
        )
        model: dict[str, bytes] = {}
        for action, path, payload in operations:
            if action == "write":
                dfs.write_file(path, payload)
                model[path] = payload
            elif action == "append":
                dfs.append(path, payload)
                model[path] = model.get(path, b"") + payload
            else:
                dfs.delete_file(path)
                model.pop(path, None)
        assert dfs.list_files() == sorted(model)
        for path, payload in model.items():
            result = dfs.read_file(path)
            assert result.ok
            assert result.data == payload
            assert dfs.file_size(path) == len(payload)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=1, max_size=2000),
           st.integers(min_value=8, max_value=256))
    def test_any_payload_roundtrips_any_block_size(self, payload, block_size):
        dfs = DistributedFileSystem(num_nodes=3, block_size=block_size,
                                    replication=2)
        dfs.write_file("/f", payload)
        assert dfs.read_file("/f").data == payload

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=1000),
           st.integers(min_value=0, max_value=2))
    def test_single_node_failure_never_loses_replicated_data(
        self, payload, failed_node
    ):
        dfs = DistributedFileSystem(num_nodes=3, block_size=64, replication=2)
        dfs.write_file("/f", payload)
        dfs.fail_node(failed_node)
        assert dfs.read_file("/f").data == payload
        dfs.re_replicate()
        assert dfs.under_replicated_blocks() == []


# ---------------------------------------------------------------------------
# SQL: text queries must agree with the fluent builder on random data.
# ---------------------------------------------------------------------------

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),        # k
        st.integers(min_value=-100, max_value=100),    # v
        st.sampled_from(["red", "green", "blue"]),     # tag
    ),
    min_size=1,
    max_size=60,
)


def _load(rows) -> DbmsEngine:
    engine = DbmsEngine()
    engine.create_table("t", ("k", "v", "tag"))
    engine.insert("t", rows)
    return engine


class TestSqlEquivalenceProperties:
    @settings(max_examples=40, deadline=None)
    @given(rows_strategy, st.integers(min_value=-100, max_value=100))
    def test_filter_equivalence(self, rows, threshold):
        engine = _load(rows)
        via_sql = engine.sql(f"SELECT * FROM t WHERE v >= {threshold}")
        via_builder = engine.execute(
            engine.query("t").where(col("v") >= lit(threshold))
        )
        assert sorted(via_sql.rows) == sorted(via_builder.rows)

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_group_by_equivalence(self, rows):
        engine = _load(rows)
        via_sql = engine.sql(
            "SELECT tag, COUNT(*) AS n, SUM(v) AS total "
            "FROM t GROUP BY tag ORDER BY tag"
        )
        via_builder = engine.execute(
            engine.query("t")
            .group_by("tag")
            .aggregate("count", None, "n")
            .aggregate("sum", "v", "total")
            .order_by("tag")
        )
        assert via_sql.rows == via_builder.rows

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy, st.integers(min_value=1, max_value=10))
    def test_order_limit_equivalence(self, rows, limit):
        engine = _load(rows)
        via_sql = engine.sql(
            f"SELECT k, v FROM t ORDER BY v DESC, k ASC LIMIT {limit}"
        )
        via_builder = engine.execute(
            engine.query("t")
            .select("k", "v")
            .order_by("v", descending=True)
            .order_by("k")
            .limit(limit)
        )
        assert via_sql.rows == via_builder.rows

    @settings(max_examples=30, deadline=None)
    @given(rows_strategy)
    def test_aggregates_match_python_reference(self, rows):
        engine = _load(rows)
        result = engine.sql(
            "SELECT COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi "
            "FROM t"
        )
        n, s, lo, hi = result.rows[0]
        values = [row[1] for row in rows]
        assert n == len(values)
        assert s == sum(values)
        assert lo == min(values)
        assert hi == max(values)
