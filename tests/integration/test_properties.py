"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import math
from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._util import chunked, percentile
from repro.datagen.sampling import reservoir_sample, stratified_sample
from repro.datagen.veracity import (
    jensen_shannon_divergence,
    kl_divergence,
    total_variation,
)
from repro.engines.base import schedule_lpt
from repro.engines.mapreduce import JobConf, MapReduceEngine, MapReduceJob
from repro.engines.nosql import NoSqlStore

# Shared strategies -----------------------------------------------------------

distributions = st.dictionaries(
    st.text(alphabet="abcdef", min_size=1, max_size=3),
    st.floats(min_value=0.01, max_value=10.0),
    min_size=1,
    max_size=8,
)

documents = st.lists(
    st.text(alphabet="abc ", min_size=0, max_size=20), min_size=0, max_size=30
)


class TestDivergenceProperties:
    @given(distributions, distributions)
    def test_kl_is_nonnegative(self, p, q):
        assert kl_divergence(p, q) >= -1e-9

    @given(distributions)
    def test_kl_self_is_zero(self, p):
        assert kl_divergence(p, p) < 1e-9

    @given(distributions, distributions)
    def test_js_is_symmetric_and_bounded(self, p, q):
        forward = jensen_shannon_divergence(p, q)
        backward = jensen_shannon_divergence(q, p)
        assert math.isclose(forward, backward, abs_tol=1e-9)
        assert -1e-9 <= forward <= math.log(2) + 1e-9

    @given(distributions, distributions)
    def test_total_variation_in_unit_interval(self, p, q):
        assert -1e-9 <= total_variation(p, q) <= 1.0 + 1e-9

    @given(
        st.tuples(
            *[
                st.fixed_dictionaries(
                    {k: st.floats(min_value=0.01, max_value=10.0)
                     for k in "abcd"}
                )
                for _ in range(3)
            ]
        )
    )
    def test_total_variation_triangle_inequality(self, pqr):
        # Triangle inequality holds for distributions over a shared
        # support (pairwise alignment over differing supports would not
        # form a metric space).
        p, q, r = pqr
        assert total_variation(p, r) <= (
            total_variation(p, q) + total_variation(q, r) + 1e-9
        )


class TestSamplingProperties:
    @given(st.lists(st.integers(), max_size=200),
           st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_reservoir_size_and_membership(self, items, size, seed):
        sample = reservoir_sample(items, size, seed=seed)
        assert len(sample) == min(size, len(items))
        counts = Counter(items)
        sample_counts = Counter(sample)
        assert all(sample_counts[k] <= counts[k] for k in sample_counts)

    @given(st.lists(st.tuples(st.sampled_from("xyz"), st.integers()),
                    min_size=1, max_size=100),
           st.floats(min_value=0.05, max_value=1.0))
    def test_stratified_keeps_every_stratum(self, items, fraction):
        sample = stratified_sample(items, key=lambda t: t[0], fraction=fraction)
        assert {t[0] for t in sample} == {t[0] for t in items}


class TestSchedulingProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=40),
           st.integers(min_value=1, max_value=16))
    def test_lpt_bounds(self, costs, slots):
        makespan = schedule_lpt(costs, slots)
        total = sum(costs)
        longest = max(costs) if costs else 0.0
        # Lower bounds: perfect split and the longest single task.
        assert makespan >= max(total / slots, longest) - 1e-9
        # Upper bound: never worse than serial.
        assert makespan <= total + 1e-9

    @given(st.lists(st.integers(), max_size=100),
           st.integers(min_value=1, max_value=10))
    def test_chunked_partition_properties(self, items, chunks):
        parts = chunked(items, chunks)
        assert len(parts) == chunks
        flattened = [item for part in parts for item in part]
        assert flattened == items


class TestPercentileProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=100),
           st.floats(min_value=0.0, max_value=1.0))
    def test_percentile_within_range(self, samples, fraction):
        ordered = sorted(samples)
        value = percentile(ordered, fraction)
        assert ordered[0] - 1e-9 <= value <= ordered[-1] + 1e-9

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=2, max_size=50))
    def test_percentile_monotone_in_fraction(self, samples):
        ordered = sorted(samples)
        values = [percentile(ordered, f / 10) for f in range(11)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


class TestMapReduceProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(documents,
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=6))
    def test_wordcount_equals_sequential_reference(self, docs, maps, reduces):
        def wc_map(key, value):
            for word in value.split():
                yield word, 1

        def wc_reduce(key, values):
            yield key, sum(values)

        job = MapReduceJob(
            "wc", wc_map, wc_reduce, combiner=wc_reduce,
            conf=JobConf(num_map_tasks=maps, num_reduce_tasks=reduces),
        )
        result = MapReduceEngine().run(job, list(enumerate(docs)))
        reference = Counter()
        for doc in docs:
            reference.update(doc.split())
        assert dict(result.output) == dict(reference)

    @settings(max_examples=25, deadline=None)
    @given(documents)
    def test_sort_is_permutation_and_ordered(self, docs):
        def sort_map(key, value):
            yield value, 1

        def sort_reduce(key, values):
            for _ in values:
                yield key, None

        job = MapReduceJob(
            "sort", sort_map, sort_reduce,
            conf=JobConf(num_reduce_tasks=1, sort_keys=True),
        )
        result = MapReduceEngine().run(job, list(enumerate(docs)))
        keys = [key for key, _ in result.output]
        assert keys == sorted(keys)
        assert Counter(keys) == Counter(docs)


class TestKvStoreProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.text(alphabet="abcd", min_size=1, max_size=2),
            st.integers(),
        ),
        max_size=40,
    ))
    def test_store_matches_dict_model(self, operations):
        """The KV store must behave exactly like a dict (linearised)."""
        store = NoSqlStore(num_partitions=4, replication=2, seed=0)
        model: dict[str, int] = {}
        for action, key, value in operations:
            if action == "put":
                store.insert(key, {"v": value})
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
        for key, value in model.items():
            result = store.read(key)
            assert result.ok
            assert result.fields == {"v": value}
        assert len(store) == len(model)

    @settings(max_examples=20, deadline=None)
    @given(st.sets(st.text(alphabet="abcdef", min_size=1, max_size=4),
                   max_size=20),
           st.integers(min_value=1, max_value=10))
    def test_scan_is_sorted_prefix_of_keys(self, keys, count):
        store = NoSqlStore(num_partitions=4, seed=0)
        for key in keys:
            store.insert(key, {})
        result = store.scan("", count)
        scanned = [key for key, _ in result.rows]
        assert scanned == sorted(keys)[:count]
