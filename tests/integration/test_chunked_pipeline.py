"""End-to-end tests of the chunked, bounded-memory data pipeline.

Two claims, tested at the seams where they could break:

1. **Equivalence** — a chunked run produces results identical to a
   materialized run at the same seed, on every executor backend and in
   every engine's ingest path (determinism makes chunking re-slicing,
   not re-sampling).
2. **Boundedness** — chunked generation completes under an address-space
   cap that the materialized path cannot fit in (the whole point of
   streaming), demonstrated in a capped subprocess.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

import repro  # noqa: F401 — fills the registries
from repro.core import registry
from repro.core.process import BenchmarkingProcess
from repro.core.spec import BenchmarkSpec
from repro.core.test_generator import TestGenerator
from repro.datagen.source import GeneratorSource

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _execute(executor: str, chunk_size: int | None):
    spec = BenchmarkSpec(
        "micro-wordcount",
        engines=["mapreduce"],
        volume=80,
        executor=executor,
        chunk_size=chunk_size,
    )
    report = BenchmarkingProcess().execute(spec)
    assert report.results, report.failures
    assert report.results[0].ok
    return report


class TestExecutorParity:
    """Chunked == materialized on serial, thread, and process backends."""

    def test_workload_output_parity(self):
        generator = TestGenerator()
        materialized = generator.generate("micro-wordcount", "mapreduce", 80)
        chunked = generator.generate(
            "micro-wordcount", "mapreduce", 80, chunk_size=7
        )
        assert chunked.run().output == materialized.run().output

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_cost_metric_parity_across_backends(self, executor):
        # Wall-clock metrics vary between backends; the cost metric is a
        # pure function of the records and the split structure, so the
        # same chunked run must cost the same on every backend.
        baseline = _execute("serial", 7).results[0].mean("cost")
        assert _execute(executor, 7).results[0].mean("cost") == baseline

    def test_streamed_generation_detail(self):
        detail = _execute("serial", 7).step("data-generation").detail
        assert detail["streamed"] is True
        assert detail["chunk_size"] == 7
        assert detail["records"] == 80


class TestEngineStreamingIngestion:
    """Every engine ingest path accepts a streaming source."""

    def _source(self, name: str, volume: int, **kwargs) -> GeneratorSource:
        return GeneratorSource(
            registry.generators.create(name), volume, **kwargs
        )

    def test_dbms_loads_from_stream(self):
        from repro.engines.dbms import DbmsEngine

        streamed_engine = DbmsEngine()
        table = streamed_engine.load_dataset(
            self._source("mixture-table", 40, chunk_size=7)
        )
        materialized_engine = DbmsEngine()
        reference_table = materialized_engine.load_dataset(
            registry.generators.create("mixture-table").generate(40)
        )
        streamed = streamed_engine.execute(streamed_engine.query(table))
        reference = materialized_engine.execute(
            materialized_engine.query(reference_table)
        )
        assert streamed.rows == reference.rows

    def test_nosql_bulk_load_from_stream(self):
        from repro.engines.nosql import NoSqlStore

        store = NoSqlStore()
        count = store.bulk_load(self._source("kv-records", 30, chunk_size=7))
        assert count == 30
        assert len(store) == 30

    def test_cfs_workload_over_stream(self):
        from repro.engines.dfs import DistributedFileSystem
        from repro.workloads.cfs import CfsWorkload

        workload = CfsWorkload()
        streamed = workload.run(
            DistributedFileSystem(),
            self._source("random-text", 40, chunk_size=7),
        )
        reference = workload.run(
            DistributedFileSystem(),
            registry.generators.create("random-text").generate(40),
        )
        assert streamed.output["files"] == reference.output["files"]
        assert streamed.output["bytes"] == reference.output["bytes"]


class TestCliChunkSize:
    def test_run_accepts_chunk_size_flag(self, capsys):
        from repro.cli import main

        code = main([
            "run", "micro-grep", "--engine", "mapreduce",
            "--volume", "40", "--chunk-size", "5",
        ])
        assert code == 0

    def test_env_default_feeds_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "13")
        assert BenchmarkSpec("micro-wordcount").chunk_size == 13

    def test_bad_env_value_rejected(self, monkeypatch):
        from repro.core.errors import SpecError

        monkeypatch.setenv("REPRO_CHUNK_SIZE", "lots")
        with pytest.raises(SpecError):
            BenchmarkSpec("micro-wordcount")

    def test_spec_validates_chunk_size(self):
        from repro.core.errors import SpecError
        from repro.core.prescription import builtin_repository

        with pytest.raises(SpecError):
            BenchmarkSpec(
                "micro-wordcount", chunk_size=0
            ).validate(builtin_repository())


# ---------------------------------------------------------------------------
# Bounded memory, demonstrated under a real address-space cap
# ---------------------------------------------------------------------------

_CAPPED_CHILD = """
import resource
import sys

mode = sys.argv[1]
volume = int(sys.argv[2])
headroom = int(sys.argv[3])

import repro
from repro.core import registry


def vm_size() -> int:
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("no VmSize in /proc/self/status")


generator = registry.generators.create("random-text")
cap = vm_size() + headroom
resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

if mode == "chunked":
    total = 0
    for batch in generator.iter_batches(volume, 1024):
        total += len(batch)
    assert total == volume, total
else:
    dataset = generator.generate(volume)
    assert dataset.num_records == volume
print("ok")
"""

#: ~200k documents materialize to roughly 70 MB of record payload; the
#: cap allows 32 MB beyond the post-import baseline, so one 1024-record
#: chunk (~350 KB) fits with two orders of magnitude to spare while the
#: full list cannot fit at half its size.
MEM_VOLUME = 200_000
MEM_HEADROOM = 32 * 1024 * 1024

needs_rlimit = pytest.mark.skipif(
    sys.platform != "linux", reason="RLIMIT_AS semantics are Linux-specific"
)


def _run_capped(tmp_path: Path, mode: str) -> subprocess.CompletedProcess:
    script = tmp_path / "capped_generation.py"
    script.write_text(_CAPPED_CHILD)
    return subprocess.run(
        [sys.executable, str(script), mode, str(MEM_VOLUME),
         str(MEM_HEADROOM)],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"},
    )


@needs_rlimit
class TestBoundedMemory:
    def test_chunked_generation_fits_under_cap(self, tmp_path):
        result = _run_capped(tmp_path, "chunked")
        assert result.returncode == 0, result.stderr

    @pytest.mark.xfail(
        strict=True,
        reason="materializing the full record list cannot fit under the "
        "address-space cap — the bound the chunked path exists to respect",
    )
    def test_materialized_generation_exceeds_cap(self, tmp_path):
        result = _run_capped(tmp_path, "materialized")
        assert result.returncode == 0, result.stderr
