"""Integration tests: the whole framework driven through its facade."""

from __future__ import annotations

import pytest

from repro import BenchmarkSpec, BigDataBenchmark


@pytest.fixture(scope="module")
def framework():
    return BigDataBenchmark()


class TestEveryBuiltinPrescriptionRuns:
    """Every prescription in the repository must run end to end on every
    engine its workload supports — the framework's completeness check."""

    @pytest.mark.parametrize(
        "prescription",
        [
            "micro-sort", "micro-wordcount", "micro-grep", "micro-cfs",
            "search-index", "search-pagerank",
            "social-kmeans", "social-connected-components",
            "ecommerce-recommend", "ecommerce-classify",
            "database-aggregate-join", "oltp-read-write",
            "realtime-windowed-aggregation",
            "multimedia-image-classification", "learning-mlp",
        ],
    )
    def test_prescription_runs(self, framework, prescription):
        volume = 40 if prescription != "search-pagerank" else 64
        report = framework.run(prescription, volume=volume)
        assert report.results
        for result in report.results:
            assert result.mean("duration") >= 0

    def test_repository_is_fully_covered(self, framework):
        listed = set(framework.user_interface.available_prescriptions())
        tested = {
            "micro-sort", "micro-wordcount", "micro-grep", "micro-cfs",
            "search-index", "search-pagerank",
            "social-kmeans", "social-connected-components",
            "ecommerce-recommend", "ecommerce-classify",
            "database-aggregate-join", "oltp-read-write",
            "realtime-windowed-aggregation",
            "multimedia-image-classification", "learning-mlp",
        }
        assert listed == tested


class TestCrossSystemComparison:
    """The functional-view experiment (E10): one abstract test, two
    different system types, comparable results."""

    def test_relational_query_all_engines_same_answer(self, framework):
        report = framework.run("database-aggregate-join", volume=80)
        assert {result.engine for result in report.results} == {
            "dbms", "mapreduce", "nosql",
        }

    def test_oltp_both_stores_report_latency(self, framework):
        report = framework.run(
            BenchmarkSpec(
                "oltp-read-write",
                volume=60,
                params={"operation_count": 200},
            )
        )
        for result in report.results:
            assert result.mean("mean_latency") > 0
            assert result.mean("latency_p99") >= result.mean("mean_latency")

    def test_ranking_is_reported(self, framework):
        report = framework.run("database-aggregate-join", volume=60)
        ranking = report.step("analysis-evaluation").detail["ranking"]
        assert len(ranking) == 3
        # Ranked ascending by duration (lead metric, lower is better).
        assert ranking[0][1] <= ranking[1][1] <= ranking[2][1]


class TestVelocityThroughTheSpec:
    def test_parallel_data_generation(self, framework):
        report = framework.run(
            "micro-wordcount", volume=48, data_partitions=6
        )
        assert report.step("data-generation").detail["partitions"] == 6
        assert report.results[0].mean("throughput") > 0


class TestVeracityPipelineEndToEnd:
    def test_fitted_generator_flows_through_prescription(self, framework):
        """micro-grep uses lda-text fitted on the embedded corpus: the
        whole Figure 3 pipeline inside the Figure 1 process."""
        report = framework.run("micro-grep", volume=30)
        generation = report.step("data-generation")
        assert generation.detail["generator"] == "lda-text"
        assert generation.detail["records"] == 30


class TestMetricsFlow:
    def test_architecture_and_user_metrics_both_present(self, framework):
        report = framework.run("micro-wordcount", volume=30)
        result = report.results[0]
        assert "throughput" in result.metrics  # user-perceivable
        assert "ops_per_second" in result.metrics  # architecture
        assert "energy" in result.metrics
        assert "cost" in result.metrics

    def test_energy_scales_with_work(self, framework):
        small = framework.run("micro-wordcount", volume=20).results[0]
        large = framework.run("micro-wordcount", volume=200).results[0]
        assert large.mean("energy") > small.mean("energy")
