"""Tests for the ``repro.api`` facade and the deprecation shims."""

from __future__ import annotations

import json

import pytest

import repro
from repro import api
from repro.core.errors import SpecError
from repro.core.results import RunResult


class TestFacadeSurface:
    def test_blessed_names_are_importable_from_the_top(self):
        # The facade re-exports from repro/__init__.py: one import
        # serves both `from repro.api import run` and `repro.run`.
        for name in ("BenchmarkSpec", "run", "sweep", "ServiceClient",
                     "compare", "gate", "serve", "api"):
            assert hasattr(repro, name), name
            assert name in repro.__all__
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_run_accepts_a_name(self):
        report = api.run("micro-wordcount", volume=80,
                         engines=["mapreduce"])
        assert len(report.results) == 1
        assert report.results[0].engine == "mapreduce"

    def test_run_accepts_a_spec(self):
        report = api.run(
            api.BenchmarkSpec("micro-wordcount", volume=80,
                              engines=["mapreduce"], repeats=2)
        )
        result = report.results[0]
        assert len(result.metrics["duration"].samples) == 2

    def test_sweep_volume_axis(self):
        report = api.sweep("micro-wordcount", "mapreduce",
                           volumes=[40, 80])
        assert report.parameter == "volume"
        assert [point.value for point in report.points] == [40, 80]

    def test_sweep_requires_exactly_one_axis(self):
        with pytest.raises(SpecError, match="exactly one axis"):
            api.sweep("micro-wordcount", "mapreduce")
        with pytest.raises(SpecError, match="exactly one axis"):
            api.sweep("micro-wordcount", "mapreduce",
                      volumes=[40], parameter="seed", values=[1])

    def test_compare_and_gate_round_trip(self, tmp_path):
        store_dir = str(tmp_path)
        for _ in range(2):
            api.run("micro-wordcount", volume=80, engines=["mapreduce"],
                    repeats=2, record=True, store_dir=store_dir)
        comparison = api.compare("r0001", "r0002", store_dir=store_dir)
        assert comparison.baseline == "r0001"
        assert comparison.candidate == "r0002"

        from repro.analysis.baselines import BaselineManager
        from repro.analysis.store import RunStore

        BaselineManager(RunStore(tmp_path)).promote("r0001", "main")
        report = api.gate("main", "r0002", store_dir=store_dir)
        assert report.exit_code in (0, 1)

    def test_serve_returns_a_service_client(self, tmp_path):
        with api.serve(store_dir=str(tmp_path)) as client:
            assert isinstance(client, api.ServiceClient)
            outcomes = client.submit(
                api.BenchmarkSpec("micro-wordcount", volume=60,
                                  engines=["mapreduce"])
            ).result(timeout=60)
        assert all(isinstance(o, RunResult) for o in outcomes)


class TestDeprecationShims:
    def _results(self):
        report = api.run("micro-wordcount", volume=60,
                         engines=["mapreduce"])
        return report.results

    def test_results_table_warns_and_still_works(self):
        from repro.execution.report import render_results, results_table

        results = self._results()
        with pytest.warns(DeprecationWarning, match="results_table"):
            legacy = results_table(results, ["duration"])
        assert legacy == render_results(results, metrics=["duration"])

    def test_results_json_warns_and_still_works(self):
        from repro.execution.report import render_results, results_json

        results = self._results()
        with pytest.warns(DeprecationWarning, match="results_json"):
            legacy = results_json(results)
        assert json.loads(legacy) == json.loads(
            render_results(results, style="json")
        )


class TestLoadFacade:
    def test_load_is_a_blessed_name(self):
        assert "load" in api.__all__
        assert hasattr(repro, "load")

    def test_synthetic_load_returns_a_judged_report(self):
        report = api.load(
            rate=100.0, duration=2.0, seed=4,
            slo=api.SLOPolicy(p99_budget=0.5),
        )
        assert report.verdict is not None
        assert report.verdict.passed
        assert report.completed > 0
        assert report.latency_stats().p50 > 0

    def test_load_records_when_asked(self, tmp_path):
        report = api.load(
            rate=50.0, duration=1.0, record=True,
            store_dir=str(tmp_path / "store"),
        )
        assert report.record_id is not None
        store = api.RunStore(str(tmp_path / "store"))
        assert store.get(report.record_id).test_name == "load:open-poisson"

    def test_load_against_a_prescribed_workload(self):
        report = api.load(
            "micro-wordcount", rate=10.0, duration=0.5, volume=30,
        )
        assert report.completed > 0
        assert report.target_name.startswith("workload:micro-wordcount@")

    def test_arrival_options_pass_through(self):
        report = api.load(
            arrival="diurnal", rate=100.0, duration=2.0, period=2.0,
            amplitude=0.5,
        )
        assert report.plan.arrival_options == {
            "period": 2.0, "amplitude": 0.5,
        }
        assert report.completed > 0


class TestAblateFacade:
    def test_ablate_is_a_blessed_name(self):
        assert "ablate" in api.__all__
        assert hasattr(repro, "ablate")

    def test_ablate_returns_a_judged_report(self, tmp_path):
        report = api.ablate(
            "relational", "dbms", repeats=2, volume=60,
            include_one_offs=False, store_dir=str(tmp_path),
        )
        executed = [cell for cell in report.cells if cell.supported]
        assert {cell.profile.name for cell in executed} == {
            "normal", "optimized",
        }
        assert all(cell.record_id for cell in executed)
        verdict = report.verdict_for(
            "database-aggregate-join", "dbms", "optimized"
        )
        assert verdict.verdict in (
            "improved", "regressed", "unchanged", "inconclusive",
        )
