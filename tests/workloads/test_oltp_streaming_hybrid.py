"""Tests for OLTP (YCSB), streaming, and hybrid workloads."""

from __future__ import annotations

import pytest

from repro.core.errors import ExecutionError
from repro.datagen.kv import KeyValueGenerator
from repro.datagen.stream import PoissonArrivals, StreamGenerator
from repro.datagen.weblog import WebLogGenerator
from repro.engines.dbms import DbmsEngine
from repro.engines.nosql import NoSqlStore
from repro.engines.streaming import StreamingEngine
from repro.workloads import (
    ArrivalPattern,
    HybridWorkload,
    RollingUpdateRateWorkload,
    WindowedAggregationWorkload,
    YcsbWorkload,
    profile_arrival_pattern,
)


@pytest.fixture()
def kv_data():
    return KeyValueGenerator(field_count=3, field_length=10, seed=1).generate(80)


class TestYcsbWorkload:
    def test_runs_on_nosql(self, kv_data):
        result = YcsbWorkload().run(
            NoSqlStore(seed=2), kv_data, workload_mix="A", operation_count=200
        )
        assert result.records_out == 200
        assert len(result.latencies) == 200
        assert result.simulated_seconds > 0

    def test_runs_on_dbms(self, kv_data):
        result = YcsbWorkload().run(
            DbmsEngine(), kv_data, workload_mix="A", operation_count=100
        )
        assert result.records_out == 100
        assert len(result.latencies) == 100

    def test_all_standard_mixes_run(self, kv_data):
        for mix in ("A", "B", "C", "D", "E", "F"):
            result = YcsbWorkload().run(
                NoSqlStore(seed=3), kv_data,
                workload_mix=mix, operation_count=60,
            )
            assert result.extra["mix"] == mix

    def test_unknown_mix_rejected(self, kv_data):
        with pytest.raises(ExecutionError):
            YcsbWorkload().run(
                NoSqlStore(seed=4), kv_data, workload_mix="Z"
            )

    def test_deterministic_per_seed(self, kv_data):
        results = [
            YcsbWorkload().run(
                NoSqlStore(seed=5), kv_data,
                workload_mix="B", operation_count=100, seed=6,
            ).latencies
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_supports_both_engines(self):
        assert YcsbWorkload().supported_engines() == ("dbms", "nosql")


class TestWindowedAggregation:
    def test_window_counts_cover_all_events(self):
        stream = StreamGenerator(
            arrivals=PoissonArrivals(1000.0), key_space=4, seed=7
        ).generate(500)
        result = WindowedAggregationWorkload().run(
            StreamingEngine(), stream, window_seconds=0.1
        )
        assert sum(window.value for window in result.output) == 500

    def test_keeps_up_flag_tracks_rates(self):
        stream = StreamGenerator(
            arrivals=PoissonArrivals(100_000.0), seed=8
        ).generate(400)
        slow_engine = StreamingEngine(service_seconds_per_event=1e-3)
        result = WindowedAggregationWorkload().run(slow_engine, stream)
        assert not result.extra["keeps_up"]
        fast_engine = StreamingEngine(service_seconds_per_event=1e-6)
        result2 = WindowedAggregationWorkload().run(fast_engine, stream)
        assert result2.extra["keeps_up"]

    def test_latencies_recorded_per_event(self):
        stream = StreamGenerator(seed=9).generate(100)
        result = WindowedAggregationWorkload().run(StreamingEngine(), stream)
        assert len(result.latencies) == 100


class TestRollingUpdateRate:
    def test_counts_only_updates(self):
        stream = StreamGenerator(
            arrivals=PoissonArrivals(1000.0), update_fraction=0.5, seed=10
        ).generate(600)
        result = RollingUpdateRateWorkload().run(
            StreamingEngine(), stream,
            window_seconds=0.2, slide_seconds=0.1,
        )
        from repro.datagen.stream import EventKind

        updates = sum(
            1 for event in stream.records if event.kind is EventKind.UPDATE
        )
        # Size = 2x slide → each update lands in ≤2 windows.
        total = sum(window.value for window in result.output)
        assert updates <= total <= 2 * updates


class TestArrivalProfiling:
    def test_profile_from_weblog(self, retail_tables):
        weblog = WebLogGenerator(
            retail_tables["customers"], retail_tables["products"], seed=11
        ).generate(300)
        pattern = profile_arrival_pattern(weblog)
        assert pattern.total_rate > 0
        assert "read" in pattern.rates  # GETs dominate the embedded mix
        assert len(pattern.sequence) == 300

    def test_mix_probabilities_sum_to_one(self, retail_tables):
        weblog = WebLogGenerator(
            retail_tables["customers"], retail_tables["products"], seed=12
        ).generate(100)
        pattern = profile_arrival_pattern(weblog)
        assert sum(pattern.mix_probabilities().values()) == pytest.approx(1.0)

    def test_requires_weblog_type(self, text_corpus):
        with pytest.raises(ExecutionError):
            profile_arrival_pattern(text_corpus)

    def test_zero_rate_pattern_rejected(self):
        with pytest.raises(ExecutionError):
            ArrivalPattern(rates={}).mix_probabilities()


class TestHybridWorkload:
    def test_runs_with_default_pattern(self, kv_data):
        result = HybridWorkload().run(
            NoSqlStore(seed=13), kv_data, operation_count=200
        )
        counts = result.extra["per_class_counts"]
        assert counts["read"] > counts["insert"]
        assert counts["scan"] > 0  # analytics interleaved

    def test_profiled_pattern_drives_mix(self, kv_data, retail_tables):
        weblog = WebLogGenerator(
            retail_tables["customers"], retail_tables["products"], seed=14
        ).generate(300)
        pattern = profile_arrival_pattern(weblog)
        result = HybridWorkload().run(
            NoSqlStore(seed=15), kv_data,
            arrival_pattern=pattern, operation_count=300,
        )
        counts = result.extra["per_class_counts"]
        # GET-dominated logs → read-dominated store traffic.
        assert counts["read"] == max(
            v for k, v in counts.items() if k != "scan"
        )

    def test_scans_interfere_with_serving_latency(self, kv_data):
        """The E12 rationale: hybrid scans make serving ops slower than
        an isolated serving-only run."""
        serving_only = HybridWorkload().run(
            NoSqlStore(seed=16), kv_data,
            operation_count=300, analytics_every=0,
        )
        hybrid = HybridWorkload().run(
            NoSqlStore(seed=16), kv_data,
            operation_count=300, analytics_every=20,
            analytics_scan_length=500,
        )
        assert hybrid.simulated_seconds > serving_only.simulated_seconds

    def test_empty_dataset_rejected(self):
        from repro.datagen.base import DataType, as_dataset

        empty = as_dataset([], DataType.KEY_VALUE)
        with pytest.raises(ExecutionError):
            HybridWorkload().run(NoSqlStore(seed=17), empty)

    def test_sequence_replay_follows_profiled_order(self, kv_data, retail_tables):
        """§5.2: arrival patterns include the operation *sequence*."""
        weblog = WebLogGenerator(
            retail_tables["customers"], retail_tables["products"], seed=18
        ).generate(200)
        pattern = profile_arrival_pattern(weblog)
        result = HybridWorkload().run(
            NoSqlStore(seed=19), kv_data,
            arrival_pattern=pattern, operation_count=150,
            analytics_every=0, replay_sequence=True,
        )
        counts = result.extra["per_class_counts"]
        # The executed counts must match the profiled sequence's first
        # 150 operations exactly (deterministic replay, no sampling).
        from collections import Counter

        expected = Counter(pattern.sequence[:150])
        for name, count in expected.items():
            assert counts[name] == count

    def test_sequence_replay_requires_a_sequence(self, kv_data):
        pattern = ArrivalPattern(rates={"read": 1.0})
        with pytest.raises(ExecutionError):
            HybridWorkload().run(
                NoSqlStore(seed=20), kv_data,
                arrival_pattern=pattern, replay_sequence=True,
            )
