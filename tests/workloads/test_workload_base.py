"""Tests for the workload base class and dispatcher."""

from __future__ import annotations

import pytest

from repro.core.errors import ExecutionError
from repro.datagen.base import DataType, as_dataset
from repro.engines.mapreduce import MapReduceEngine
from repro.engines.nosql import NoSqlStore
from repro.workloads import ALL_WORKLOADS, SortWorkload
from repro.workloads.base import WorkloadResult


class TestDispatcher:
    def test_unsupported_engine_raises(self, text_corpus):
        with pytest.raises(ExecutionError) as excinfo:
            SortWorkload().run(NoSqlStore(), text_corpus)
        assert "mapreduce" in str(excinfo.value)

    def test_wrong_data_type_raises(self, social_graph):
        with pytest.raises(ExecutionError):
            SortWorkload().run(MapReduceEngine(), social_graph)

    def test_supports_reflects_run_methods(self):
        workload = SortWorkload()
        assert workload.supports("mapreduce")
        assert not workload.supports("dbms")


class TestWorkloadCatalogue:
    def test_names_are_unique(self):
        names = [workload.name for workload in ALL_WORKLOADS]
        assert len(names) == len(set(names))

    def test_every_workload_supports_an_engine(self):
        for workload_class in ALL_WORKLOADS:
            assert workload_class().supported_engines()

    def test_every_workload_declares_operations_and_pattern(self):
        for workload_class in ALL_WORKLOADS:
            workload = workload_class()
            assert workload.abstract_operations
            assert workload.pattern is not None

    def test_describe_is_complete(self):
        for workload_class in ALL_WORKLOADS:
            description = workload_class().describe()
            for key in ("name", "domain", "category", "data_type",
                        "operations", "pattern", "engines"):
                assert description[key], f"{workload_class.name}: {key}"

    def test_all_three_table2_categories_covered(self):
        from repro.workloads.base import WorkloadCategory

        categories = {workload_class().category for workload_class in ALL_WORKLOADS}
        assert categories == set(WorkloadCategory)

    def test_all_paper_domains_covered(self):
        from repro.workloads.base import ApplicationDomain

        domains = {workload_class().domain for workload_class in ALL_WORKLOADS}
        assert domains == set(ApplicationDomain)


class TestWorkloadResult:
    def test_evidence_carries_everything(self):
        from repro.engines.base import CostCounters

        result = WorkloadResult(
            workload="w", engine="e", output=None,
            records_in=10, records_out=5,
            duration_seconds=1.0,
            cost=CostCounters(compute_ops=7),
            latencies=[0.1],
            simulated_seconds=0.5,
        )
        evidence = result.evidence()
        assert evidence.records_in == 10
        assert evidence.cost.compute_ops == 7
        assert evidence.simulated_seconds == 0.5
        assert evidence.effective_seconds == 0.5

    def test_duration_filled_by_dispatcher(self, text_corpus):
        small = as_dataset(text_corpus.records[:10], DataType.TEXT)
        result = SortWorkload().run(MapReduceEngine(), small)
        assert result.duration_seconds > 0
