"""Tests for search-engine and social-network workloads."""

from __future__ import annotations

import pytest

from repro.datagen.base import DataType, as_dataset
from repro.datagen.graph import RmatGraphGenerator
from repro.datagen.mixture import GaussianMixtureGenerator
from repro.datagen.text import tokenize
from repro.engines.mapreduce import MapReduceEngine
from repro.workloads import (
    ConnectedComponentsWorkload,
    InvertedIndexWorkload,
    KMeansWorkload,
    PageRankWorkload,
)


class TestInvertedIndex:
    @pytest.fixture()
    def documents(self):
        return as_dataset(
            ["apple banana", "banana cherry", "apple apple"], DataType.TEXT
        )

    def test_postings_are_correct(self, documents):
        result = InvertedIndexWorkload().run(MapReduceEngine(), documents)
        index = result.output
        assert index["apple"] == [(0, 1), (2, 2)]
        assert index["banana"] == [(0, 1), (1, 1)]
        assert index["cherry"] == [(1, 1)]

    def test_every_token_is_indexed(self, text_corpus):
        small = as_dataset(text_corpus.records[:20], DataType.TEXT)
        result = InvertedIndexWorkload().run(MapReduceEngine(), small)
        tokens = set()
        for document in small.records:
            tokens.update(tokenize(document))
        assert set(result.output) == tokens

    def test_postings_lists_are_sorted(self, text_corpus):
        small = as_dataset(text_corpus.records[:15], DataType.TEXT)
        result = InvertedIndexWorkload().run(MapReduceEngine(), small)
        for postings in result.output.values():
            assert postings == sorted(postings)


class TestPageRank:
    @pytest.fixture()
    def chain_graph(self):
        # 0 -> 1 -> 2 -> 3: rank accumulates towards the sink.
        return as_dataset([(0, 1), (1, 2), (2, 3)], DataType.GRAPH)

    def test_ranks_sum_to_one(self, chain_graph):
        result = PageRankWorkload().run(MapReduceEngine(), chain_graph)
        assert sum(result.output.values()) == pytest.approx(1.0, abs=0.05)

    def test_sink_outranks_source(self, chain_graph):
        result = PageRankWorkload().run(MapReduceEngine(), chain_graph)
        assert result.output[3] > result.output[0]

    def test_hub_attracts_rank(self):
        star = as_dataset(
            [(1, 0), (2, 0), (3, 0), (4, 0)], DataType.GRAPH
        )
        result = PageRankWorkload().run(MapReduceEngine(), star)
        ranks = result.output
        assert ranks[0] == max(ranks.values())

    def test_convergence_stops_before_cap(self, chain_graph):
        result = PageRankWorkload().run(
            MapReduceEngine(), chain_graph, tolerance=1e-3, max_iterations=50
        )
        assert result.extra["iterations"] < 50
        assert result.extra["final_delta"] <= 1e-3

    def test_iteration_cap_respected(self, chain_graph):
        result = PageRankWorkload().run(
            MapReduceEngine(), chain_graph, tolerance=0.0, max_iterations=3
        )
        assert result.extra["iterations"] == 3

    def test_empty_graph(self):
        empty = as_dataset([], DataType.GRAPH)
        result = PageRankWorkload().run(MapReduceEngine(), empty)
        assert result.output == {}

    def test_rmat_graph_runs(self):
        graph = RmatGraphGenerator(seed=1).generate(64)
        result = PageRankWorkload().run(
            MapReduceEngine(), graph, max_iterations=5
        )
        assert len(result.output) > 0


class TestKMeans:
    def test_recovers_planted_clusters(self):
        data = GaussianMixtureGenerator(
            num_components=3, spread=30.0, cluster_std=0.5, seed=2
        ).generate(150)
        result = KMeansWorkload().run(
            MapReduceEngine(), data, num_clusters=3, max_iterations=15
        )
        assignments = result.output["assignments"]
        truth = [row[-1] for row in data.records]
        # Clusters are a permutation of the truth: each found cluster must
        # be dominated by a single true component.
        from collections import Counter, defaultdict

        by_cluster = defaultdict(Counter)
        for found, true in zip(assignments, truth):
            by_cluster[found][true] += 1
        purity = sum(c.most_common(1)[0][1] for c in by_cluster.values())
        assert purity / len(truth) > 0.9

    def test_centroid_count(self):
        data = GaussianMixtureGenerator(seed=3).generate(80)
        result = KMeansWorkload().run(
            MapReduceEngine(), data, num_clusters=4, max_iterations=5
        )
        assert len(result.output["centroids"]) == 4

    def test_convergence_recorded(self):
        data = GaussianMixtureGenerator(seed=4).generate(80)
        result = KMeansWorkload().run(
            MapReduceEngine(), data, num_clusters=4, max_iterations=30
        )
        assert result.extra["iterations"] <= 30
        assert result.extra["movement"] >= 0.0

    def test_too_few_points_rejected(self):
        from repro.core.errors import ExecutionError

        data = GaussianMixtureGenerator(seed=5).generate(2)
        with pytest.raises(ExecutionError):
            KMeansWorkload().run(MapReduceEngine(), data, num_clusters=5)


class TestConnectedComponents:
    def test_two_components_found(self):
        graph = as_dataset(
            [(0, 1), (1, 2), (5, 6), (6, 7)], DataType.GRAPH
        )
        result = ConnectedComponentsWorkload().run(MapReduceEngine(), graph)
        assert result.extra["num_components"] == 2
        labels = result.output
        assert labels[0] == labels[1] == labels[2]
        assert labels[5] == labels[6] == labels[7]
        assert labels[0] != labels[5]

    def test_labels_are_component_minimum(self):
        graph = as_dataset([(3, 7), (7, 9)], DataType.GRAPH)
        result = ConnectedComponentsWorkload().run(MapReduceEngine(), graph)
        assert set(result.output.values()) == {3}

    def test_matches_reference_union_find(self, social_graph):
        result = ConnectedComponentsWorkload().run(
            MapReduceEngine(), social_graph
        )
        # Reference: classic union-find.
        parent: dict[int, int] = {}

        def find(x: int) -> int:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for src, dst in social_graph.records:
            parent[find(src)] = find(dst)
        reference_components = len({find(v) for v in parent})
        assert result.extra["num_components"] == reference_components

    def test_single_vertex_graph(self):
        graph = as_dataset([(4, 4)], DataType.GRAPH)
        result = ConnectedComponentsWorkload().run(MapReduceEngine(), graph)
        assert result.extra["num_components"] == 1
