"""Tests for the §5.2 extension workloads: multimedia + large-scale
learning, and the synthetic image generator behind them."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ExecutionError, GenerationError
from repro.datagen.base import DataType, StructureClass
from repro.datagen.media import (
    TEXTURE_CLASSES,
    SyntheticImageGenerator,
    image_features,
)
from repro.datagen.mixture import GaussianMixtureGenerator
from repro.engines.mapreduce import MapReduceEngine
from repro.workloads import ImageClassificationWorkload, MlpClassificationWorkload


class TestSyntheticImageGenerator:
    def test_image_shape_and_range(self):
        dataset = SyntheticImageGenerator(size=16, seed=1).generate(20)
        for image, label in dataset.records:
            assert image.shape == (16, 16)
            assert image.dtype == np.float32
            assert 0.0 <= float(image.min()) <= float(image.max()) <= 1.0
            assert 0 <= label < len(TEXTURE_CLASSES)

    def test_image_data_type_is_unstructured(self):
        dataset = SyntheticImageGenerator(seed=2).generate(3)
        assert dataset.data_type is DataType.IMAGE
        assert dataset.structure is StructureClass.UNSTRUCTURED

    def test_metadata_carries_classes(self):
        dataset = SyntheticImageGenerator(size=8, seed=3).generate(3)
        assert dataset.metadata["classes"] == TEXTURE_CLASSES
        assert dataset.metadata["image_size"] == 8

    def test_estimated_bytes_counts_pixels(self):
        dataset = SyntheticImageGenerator(size=8, seed=4).generate(2)
        # 2 images × 8×8 float32 + 2 int labels.
        assert dataset.estimated_bytes() == 2 * 8 * 8 * 4 + 2 * 8

    def test_deterministic(self):
        a = SyntheticImageGenerator(seed=5).generate(5)
        b = SyntheticImageGenerator(seed=5).generate(5)
        for (image_a, label_a), (image_b, label_b) in zip(a.records, b.records):
            assert label_a == label_b
            assert np.array_equal(image_a, image_b)

    def test_validation(self):
        with pytest.raises(GenerationError):
            SyntheticImageGenerator(size=2)
        with pytest.raises(GenerationError):
            SyntheticImageGenerator(noise=-0.1)

    def test_all_classes_appear(self):
        dataset = SyntheticImageGenerator(seed=6).generate(100)
        labels = {label for _, label in dataset.records}
        assert labels == set(range(len(TEXTURE_CLASSES)))


class TestImageFeatures:
    def test_feature_length(self):
        image = np.zeros((16, 16), dtype=np.float32)
        assert len(image_features(image, histogram_bins=8)) == 11

    def test_histogram_normalised(self):
        image = np.random.default_rng(1).random((16, 16)).astype(np.float32)
        features = image_features(image)
        assert features[:8].sum() == pytest.approx(1.0)

    def test_features_separate_classes(self):
        generator = SyntheticImageGenerator(seed=7)
        dataset = generator.generate(60)
        # Checkerboards have far higher edge energy than blobs.
        checker = [image_features(img) for img, lab in dataset.records
                   if lab == TEXTURE_CLASSES.index("checkerboard")]
        blobs = [image_features(img) for img, lab in dataset.records
                 if lab == TEXTURE_CLASSES.index("blob")]
        if checker and blobs:
            checker_edges = np.mean([f[8] + f[9] for f in checker])
            blob_edges = np.mean([f[8] + f[9] for f in blobs])
            assert checker_edges > blob_edges


class TestImageClassificationWorkload:
    def test_high_accuracy_on_distinct_textures(self):
        images = SyntheticImageGenerator(seed=8).generate(120)
        result = ImageClassificationWorkload().run(MapReduceEngine(), images)
        assert result.extra["accuracy"] > 0.85

    def test_train_fraction_validation(self):
        images = SyntheticImageGenerator(seed=9).generate(20)
        with pytest.raises(ExecutionError):
            ImageClassificationWorkload().run(
                MapReduceEngine(), images, train_fraction=1.0
            )

    def test_reports_classes(self):
        images = SyntheticImageGenerator(seed=10).generate(80)
        result = ImageClassificationWorkload().run(MapReduceEngine(), images)
        assert set(result.output["classes"]) <= set(
            range(len(TEXTURE_CLASSES))
        )

    def test_prescribed_run(self):
        from repro.core.test_generator import TestGenerator

        test = TestGenerator().generate(
            "multimedia-image-classification", "mapreduce", 60
        )
        result = test.run()
        assert result.records_in == 60


class TestMlpClassificationWorkload:
    @pytest.fixture()
    def separable_data(self):
        return GaussianMixtureGenerator(
            num_components=3, dimensions=2, spread=12.0, cluster_std=0.8,
            seed=11,
        ).generate(300)

    def test_learns_separable_classes(self, separable_data):
        result = MlpClassificationWorkload().run(
            MapReduceEngine(), separable_data, max_epochs=30, seed=1
        )
        assert result.extra["accuracy"] > 0.9

    def test_loss_decreases(self, separable_data):
        result = MlpClassificationWorkload().run(
            MapReduceEngine(), separable_data, max_epochs=20, seed=2
        )
        losses = result.output["loss_curve"]
        assert losses[-1] < losses[0]

    def test_epoch_count_is_runtime_determined(self, separable_data):
        """The iterative-operation pattern: epochs depend on convergence."""
        eager = MlpClassificationWorkload().run(
            MapReduceEngine(), separable_data,
            max_epochs=50, min_loss_improvement=0.5, seed=3,
        )
        patient = MlpClassificationWorkload().run(
            MapReduceEngine(), separable_data,
            max_epochs=50, min_loss_improvement=0.0, seed=3,
        )
        assert eager.extra["epochs"] < patient.extra["epochs"]

    def test_requires_labelled_table(self, retail_tables):
        with pytest.raises(ExecutionError):
            MlpClassificationWorkload().run(
                MapReduceEngine(), retail_tables["orders"]
            )

    def test_too_few_rows_rejected(self):
        tiny = GaussianMixtureGenerator(seed=12).generate(5)
        with pytest.raises(ExecutionError):
            MlpClassificationWorkload().run(MapReduceEngine(), tiny)

    def test_deterministic_per_seed(self, separable_data):
        runs = [
            MlpClassificationWorkload().run(
                MapReduceEngine(), separable_data, max_epochs=10, seed=4
            ).output["loss_curve"]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
