"""Tests for e-commerce and relational workloads."""

from __future__ import annotations

import pytest

from repro.core.errors import ExecutionError
from repro.datagen.base import DataType, as_dataset
from repro.datagen.weblog import WebLogGenerator
from repro.engines.dbms import DbmsEngine
from repro.engines.mapreduce import MapReduceEngine
from repro.workloads import (
    CollaborativeFilteringWorkload,
    CountUrlLinksWorkload,
    NaiveBayesWorkload,
    RelationalQueryWorkload,
    derive_products,
    label_document,
)


class TestCollaborativeFiltering:
    @pytest.fixture()
    def baskets(self):
        # Customers 1/2 both buy products 10 & 11; customer 3 buys 12 alone.
        rows = [
            (0, 1, 10, 1, 0), (1, 1, 11, 1, 0),
            (2, 2, 10, 1, 0), (3, 2, 11, 1, 0),
            (4, 3, 12, 1, 0),
        ]
        return as_dataset(
            rows, DataType.TABLE,
            schema=("order_id", "customer_id", "product_id", "quantity", "day"),
        )

    def test_cooccurring_items_recommended(self, baskets):
        result = CollaborativeFilteringWorkload().run(MapReduceEngine(), baskets)
        recommendations = result.output
        assert recommendations[10] == [11]
        assert recommendations[11] == [10]

    def test_isolated_item_gets_no_recommendations(self, baskets):
        result = CollaborativeFilteringWorkload().run(MapReduceEngine(), baskets)
        assert 12 not in result.output

    def test_top_n_limits_list(self, retail_tables):
        result = CollaborativeFilteringWorkload().run(
            MapReduceEngine(), retail_tables["orders"], top_n=3
        )
        assert all(len(items) <= 3 for items in result.output.values())

    def test_requires_schema(self):
        bare = as_dataset([(1, 2)], DataType.TABLE)
        with pytest.raises(ExecutionError):
            CollaborativeFilteringWorkload().run(MapReduceEngine(), bare)


class TestNaiveBayes:
    def test_labels_derive_from_topic_vocabulary(self):
        assert label_document("the stock market price investor") == "finance"
        assert label_document("research study experiment theory") == "science"

    def test_accuracy_on_topical_corpus(self, text_corpus):
        result = NaiveBayesWorkload().run(MapReduceEngine(), text_corpus)
        assert result.extra["accuracy"] > 0.7

    def test_train_fraction_validation(self, text_corpus):
        with pytest.raises(ExecutionError):
            NaiveBayesWorkload().run(
                MapReduceEngine(), text_corpus, train_fraction=1.0
            )

    def test_output_reports_labels(self, text_corpus):
        result = NaiveBayesWorkload().run(MapReduceEngine(), text_corpus)
        assert set(result.output["labels"]) <= {
            "sports", "technology", "finance", "science",
        }


class TestRelationalQuery:
    def test_dbms_and_mapreduce_agree(self, retail_tables):
        """The paper's functional-view claim: same abstract test, same
        answer, on two different system types."""
        orders = retail_tables["orders"]
        workload = RelationalQueryWorkload()
        dbms_rows = sorted(workload.run(DbmsEngine(), orders).output)
        mr_rows = sorted(workload.run(MapReduceEngine(), orders).output)
        assert [(c, pytest.approx(q)) for c, q in dbms_rows] == mr_rows

    def test_selection_filters_rows(self, retail_tables):
        orders = retail_tables["orders"]
        strict = RelationalQueryWorkload().run(
            DbmsEngine(), orders, min_quantity=5
        )
        loose = RelationalQueryWorkload().run(
            DbmsEngine(), orders, min_quantity=1
        )
        strict_total = sum(row[1] for row in strict.output)
        loose_total = sum(row[1] for row in loose.output)
        assert strict_total < loose_total

    def test_derived_products_are_deterministic(self, retail_tables):
        orders = retail_tables["orders"]
        assert derive_products(orders) == derive_products(orders)

    def test_plan_recorded_for_dbms(self, retail_tables):
        result = RelationalQueryWorkload().run(
            DbmsEngine(), retail_tables["orders"]
        )
        assert "plan" in result.extra

    def test_requires_order_columns(self):
        bad = as_dataset([(1, 2)], DataType.TABLE, schema=("a", "b"))
        with pytest.raises(ExecutionError):
            RelationalQueryWorkload().run(DbmsEngine(), bad)


class TestCountUrlLinks:
    @pytest.fixture()
    def weblog(self, retail_tables):
        return WebLogGenerator(
            retail_tables["customers"], retail_tables["products"], seed=9
        ).generate(200)

    def test_dbms_and_mapreduce_agree(self, weblog):
        workload = CountUrlLinksWorkload()
        dbms_rows = workload.run(DbmsEngine(), weblog).output
        mr_rows = workload.run(MapReduceEngine(), weblog).output
        assert sorted(dbms_rows) == sorted(mr_rows)

    def test_counts_sum_to_log_size(self, weblog):
        result = CountUrlLinksWorkload().run(MapReduceEngine(), weblog)
        assert sum(count for _, count in result.output) == 200

    def test_counts_match_reference(self, weblog):
        from collections import Counter

        reference = Counter(record["path"] for record in weblog.records)
        result = CountUrlLinksWorkload().run(MapReduceEngine(), weblog)
        assert dict(result.output) == dict(reference)
