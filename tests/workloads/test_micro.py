"""Tests for the micro workloads (Sort, TeraSort, WordCount, Grep)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.errors import ExecutionError
from repro.datagen.text import RandomTextGenerator
from repro.engines.mapreduce import MapReduceEngine
from repro.workloads import (
    GrepWorkload,
    SortWorkload,
    TeraSortWorkload,
    WordCountWorkload,
)
from repro.workloads.base import WorkloadCategory


@pytest.fixture()
def text_data():
    return RandomTextGenerator(document_length=6, seed=1).generate(60)


class TestSortWorkload:
    def test_output_is_globally_sorted(self, text_data):
        result = SortWorkload().run(MapReduceEngine(), text_data)
        keys = [key for key, _ in result.output]
        assert keys == sorted(keys)

    def test_output_is_a_permutation_of_input(self, text_data):
        result = SortWorkload().run(MapReduceEngine(), text_data)
        assert Counter(key for key, _ in result.output) == Counter(
            text_data.records
        )

    def test_rejects_wrong_data_type(self, social_graph):
        with pytest.raises(ExecutionError):
            SortWorkload().run(MapReduceEngine(), social_graph)

    def test_declares_metadata(self):
        workload = SortWorkload()
        assert workload.category is WorkloadCategory.OFFLINE_ANALYTICS
        assert workload.supported_engines() == ("mapreduce",)
        assert workload.pattern.pattern_name == "single-operation"

    def test_duration_recorded(self, text_data):
        result = SortWorkload().run(MapReduceEngine(), text_data)
        assert result.duration_seconds > 0
        assert result.simulated_seconds is not None


class TestTeraSortWorkload:
    def test_globally_sorted_despite_many_reducers(self, text_data):
        result = TeraSortWorkload().run(
            MapReduceEngine(), text_data, num_reducers=4
        )
        keys = [key for key, _ in result.output]
        assert keys == sorted(keys)

    def test_permutation_preserved(self, text_data):
        result = TeraSortWorkload().run(MapReduceEngine(), text_data)
        assert Counter(key for key, _ in result.output) == Counter(
            text_data.records
        )

    def test_multiple_reducers_actually_used(self, text_data):
        result = TeraSortWorkload().run(
            MapReduceEngine(), text_data, num_reducers=4
        )
        groups = result.cost.records_written
        assert groups == text_data.num_records


class TestWordCountWorkload:
    def test_counts_match_reference(self, text_data):
        reference: Counter = Counter()
        for document in text_data.records:
            reference.update(document.split())
        result = WordCountWorkload().run(MapReduceEngine(), text_data)
        assert dict(result.output) == dict(reference)

    def test_combiner_toggle_keeps_output(self, text_data):
        with_combiner = WordCountWorkload().run(
            MapReduceEngine(), text_data, use_combiner=True
        )
        without = WordCountWorkload().run(
            MapReduceEngine(), text_data, use_combiner=False
        )
        assert dict(with_combiner.output) == dict(without.output)
        # The combiner saves shuffle traffic (network bytes).
        assert with_combiner.cost.network_bytes < without.cost.network_bytes

    def test_records_in_out(self, text_data):
        result = WordCountWorkload().run(MapReduceEngine(), text_data)
        assert result.records_in == 60
        assert result.records_out == len(set(
            word for doc in text_data.records for word in doc.split()
        ))


class TestGrepWorkload:
    def test_only_matching_lines_survive(self, text_data):
        result = GrepWorkload().run(
            MapReduceEngine(), text_data, pattern_text="river"
        )
        assert all("river" in line for _, line in result.output)

    def test_matches_reference_count(self, text_data):
        expected = sum(1 for doc in text_data.records if "apple" in doc)
        result = GrepWorkload().run(
            MapReduceEngine(), text_data, pattern_text="apple"
        )
        assert result.records_out == expected

    def test_regex_patterns_supported(self, text_data):
        result = GrepWorkload().run(
            MapReduceEngine(), text_data, pattern_text="^apple"
        )
        assert all(line.startswith("apple") for _, line in result.output)

    def test_no_match(self, text_data):
        result = GrepWorkload().run(
            MapReduceEngine(), text_data, pattern_text="zzzzz"
        )
        assert result.records_out == 0
