"""Tests for suite models, classification rules, and table regeneration."""

from __future__ import annotations

import pytest

from repro.suites import (
    MINIATURES,
    PAPER_TABLE1,
    PAPER_TABLE2,
    SUITES,
    classify_generator,
    classify_suite,
    generate_table1,
    generate_table2,
    run_miniature,
    suite,
    table1_matches_paper,
    table2_matches_paper,
)
from repro.suites.classify import (
    classify_velocity,
    classify_veracity,
    classify_volume,
)
from repro.suites.registry import GeneratorCapability


def capability(**overrides) -> GeneratorCapability:
    defaults = dict(
        data_sources=("Texts",),
        scalable_volume=True,
        fixed_size_inputs=False,
        parallel_generation=False,
        update_frequency_control=False,
        generation_independent_of_apps=True,
        partial_real_data_models=False,
        full_real_data_models=False,
    )
    defaults.update(overrides)
    return GeneratorCapability(**defaults)


class TestClassificationRules:
    def test_volume_scalable(self):
        assert classify_volume(capability()) == "Scalable"

    def test_volume_partially_scalable(self):
        assert classify_volume(capability(fixed_size_inputs=True)) == (
            "Partially scalable"
        )

    def test_volume_fixed(self):
        assert classify_volume(capability(scalable_volume=False)) == "Fixed"

    def test_velocity_uncontrollable(self):
        assert classify_velocity(capability()) == "Un-controllable"

    def test_velocity_semi(self):
        assert classify_velocity(capability(parallel_generation=True)) == (
            "Semi-controllable"
        )

    def test_velocity_fully(self):
        """Section 5.1's goal state: both mechanisms controlled."""
        assert classify_velocity(
            capability(parallel_generation=True, update_frequency_control=True)
        ) == "Fully controllable"

    def test_veracity_unconsidered(self):
        assert classify_veracity(capability()) == "Un-considered"

    def test_veracity_partial(self):
        assert classify_veracity(
            capability(partial_real_data_models=True,
                       generation_independent_of_apps=False)
        ) == "Partially considered"

    def test_veracity_considered(self):
        assert classify_veracity(
            capability(full_real_data_models=True,
                       generation_independent_of_apps=False)
        ) == "Considered"


class TestTable1:
    def test_row_for_row_match(self):
        matches, mismatches = table1_matches_paper()
        assert matches, mismatches

    def test_ten_suites(self):
        assert len(SUITES) == len(PAPER_TABLE1) == 10

    def test_derivation_not_transcription(self):
        """The classification derives from capabilities; flipping a fact
        changes the derived cell (guards against hard-coding)."""
        import dataclasses

        model = suite("GridMix")
        flipped = dataclasses.replace(
            model,
            capability=dataclasses.replace(
                model.capability, parallel_generation=True
            ),
        )
        assert classify_suite(flipped).velocity == "Semi-controllable"
        assert classify_suite(model).velocity == "Un-controllable"

    def test_only_bigdatabench_is_considered(self):
        rows = generate_table1()
        considered = [row.benchmark for row in rows if row.veracity == "Considered"]
        assert considered == ["BigDataBench"]

    def test_no_suite_is_fully_controllable(self):
        """The paper's Section 5.1 gap: none of the surveyed suites
        controls the update frequency."""
        assert all(
            row.velocity != "Fully controllable" for row in generate_table1()
        )


class TestTable2:
    def test_row_for_row_match(self):
        matches, mismatches = table2_matches_paper()
        assert matches, mismatches

    def test_fifteen_category_rows(self):
        assert len(generate_table2()) == len(PAPER_TABLE2) == 15

    def test_bigdatabench_covers_all_three_categories(self):
        rows = [row for row in generate_table2() if row.benchmark == "BigDataBench"]
        assert {row.workload_type for row in rows} == {
            "Online services", "Offline analytics", "Real-time analytics",
        }


class TestOwnGeneratorsClassification:
    def test_repro_generators_are_fully_controllable(self):
        """This framework targets the Section 5.1 goal: every generator is
        scalable and fully controllable."""
        from repro.datagen.text import LdaTextGenerator, RandomTextGenerator

        for generator in (RandomTextGenerator(), LdaTextGenerator()):
            row = classify_generator(generator)
            assert row.volume == "Scalable"
            assert row.velocity == "Fully controllable"

    def test_veracity_follows_awareness(self):
        from repro.datagen.text import LdaTextGenerator, RandomTextGenerator

        assert classify_generator(LdaTextGenerator()).veracity == "Considered"
        assert classify_generator(RandomTextGenerator()).veracity == (
            "Un-considered"
        )


class TestMiniatures:
    def test_every_suite_has_a_miniature(self):
        assert set(MINIATURES) == {model.name for model in SUITES}

    def test_unknown_miniature_rejected(self):
        from repro.core.errors import ExecutionError

        with pytest.raises(ExecutionError):
            run_miniature("SparkBench")

    @pytest.mark.parametrize("name", sorted(MINIATURES))
    def test_miniature_runs_and_reports(self, name):
        report = run_miniature(name, scale=0.3)
        assert report.suite == name
        assert report.runs
        summary = report.summary()
        assert set(summary) == set(report.runs)

    def test_hibench_covers_its_table2_examples(self):
        report = run_miniature("HiBench", scale=0.3)
        for workload in ("sort", "wordcount", "terasort", "pagerank",
                         "kmeans", "bayes", "nutch-indexing"):
            assert workload in report.runs

    def test_pavlo_runs_on_both_system_types(self):
        report = run_miniature("Performance benchmark", scale=0.3)
        assert "select-join-aggregate@dbms" in report.runs
        assert "select-join-aggregate@mapreduce" in report.runs
        dbms = sorted(report.runs["select-join-aggregate@dbms"].output)
        mapreduce = sorted(report.runs["select-join-aggregate@mapreduce"].output)
        assert [category for category, _ in dbms] == [
            category for category, _ in mapreduce
        ]

    def test_ycsb_reports_throughput(self):
        report = run_miniature("YCSB", scale=0.3)
        for run in report.runs.values():
            assert run["throughput_ops_per_second"] > 0
            assert run["failures"] == 0

    def test_bigdatabench_covers_all_domains(self):
        report = run_miniature("BigDataBench", scale=0.3)
        prefixes = {name.split("-")[0] for name in report.runs}
        assert {"micro", "cloud", "relational", "search", "social",
                "ecommerce"} <= prefixes
