"""The persistent run store: records, series, references, resolution."""

from __future__ import annotations

import pytest

from repro.analysis.store import (
    DEFAULT_STORE_DIR,
    RECORD_ID_EXTRA_KEY,
    STORE_DIR_ENV,
    RunStore,
    environment_fingerprint,
    fingerprint_hash,
    resolve_store_dir,
    spec_fingerprint,
)
from repro.core.errors import AnalysisError
from repro.core.results import MetricStats, RunResult, TaskFailure


def make_result(samples=(1.0, 1.1, 0.9), engine="mapreduce", test="t1"):
    return RunResult(
        test_name=test,
        workload="wordcount",
        engine=engine,
        repeats=len(samples),
        metrics={"duration": MetricStats("duration", list(samples))},
    )


class TestFingerprints:
    def test_hash_is_deterministic_and_order_insensitive(self):
        a = fingerprint_hash({"x": 1, "y": "two"})
        b = fingerprint_hash({"y": "two", "x": 1})
        assert a == b
        assert len(a) == 12

    def test_different_content_different_hash(self):
        assert fingerprint_hash({"volume": 100}) != fingerprint_hash(
            {"volume": 200}
        )

    def test_spec_fingerprint_separates_what_runs_from_environment(self):
        fingerprint = spec_fingerprint(
            "micro-wordcount", "mapreduce", volume=100, repeats=3
        )
        assert fingerprint["prescription"] == "micro-wordcount"
        assert fingerprint["volume"] == 100
        # Environment facts live in the *other* fingerprint.
        assert "python" not in fingerprint
        assert "git_sha" not in fingerprint

    def test_spec_fingerprint_seed_falls_back_to_params(self):
        fingerprint = spec_fingerprint(
            "p", "e", params={"seed": 42, "k": 3}
        )
        assert fingerprint["seed"] == 42

    def test_environment_fingerprint_has_identity_fields(self):
        env = environment_fingerprint()
        assert env["python"]
        assert env["platform"]
        assert env["cpus"] >= 1


class TestRunStore:
    def test_record_round_trips_samples_and_status(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        result = make_result()
        record = store.record_outcome(result, {"k": 1})
        assert record.record_id == "r0001"
        assert result.extra[RECORD_ID_EXTRA_KEY] == "r0001"
        loaded = store.records()[0]
        assert loaded.samples("duration") == [1.0, 1.1, 0.9]
        assert loaded.status == "ok"
        assert loaded.ok
        assert loaded.mean("duration") == pytest.approx(1.0)

    def test_identical_fingerprints_share_a_series(self, tmp_path):
        store = RunStore(tmp_path)
        fingerprint = spec_fingerprint("p", "e", volume=10)
        first = store.record_outcome(make_result(), fingerprint)
        second = store.record_outcome(make_result(), fingerprint)
        other = store.record_outcome(
            make_result(), spec_fingerprint("p", "e", volume=20)
        )
        assert first.series == second.series != other.series
        assert [r.record_id for r in store.series(first.series)] == [
            "r0001",
            "r0002",
        ]

    def test_failure_records_carry_no_metrics(self, tmp_path):
        store = RunStore(tmp_path)
        failure = TaskFailure(
            test_name="t1",
            workload="w",
            engine="e",
            error_type="EngineError",
            error_message="boom",
        )
        record = store.record_outcome(failure, {"k": 1})
        assert not record.ok
        assert record.status == "failed"
        assert record.metrics == {}
        with pytest.raises(AnalysisError, match="no samples"):
            record.samples("duration")

    def test_reference_resolution(self, tmp_path):
        store = RunStore(tmp_path)
        fingerprint = spec_fingerprint("p", "e", volume=10)
        store.record_outcome(make_result(), fingerprint)
        store.record_outcome(make_result(), fingerprint)
        assert store.get("latest").record_id == "r0002"
        assert store.get("r0001").record_id == "r0001"
        series = store.records()[0].series
        # A series prefix resolves to that series' newest record.
        assert store.get(series[:6]).record_id == "r0002"
        assert store.latest(series).record_id == "r0002"

    def test_ambiguous_and_missing_references_raise(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(AnalysisError, match="no records"):
            store.get("latest")
        store.record_outcome(make_result(), {"k": 1})
        store.record_outcome(make_result(), {"k": 1})
        with pytest.raises(AnalysisError, match="ambiguous"):
            store.get("r00")  # matches r0001 and r0002
        with pytest.raises(AnalysisError, match="no record matching"):
            store.get("zzzz")

    def test_corrupt_store_raises_with_line_number(self, tmp_path):
        store = RunStore(tmp_path)
        store.record_outcome(make_result(), {"k": 1})
        with store.path.open("a") as handle:
            handle.write("not json\n")
        with pytest.raises(AnalysisError, match="line 2"):
            store.records()

    def test_constructing_a_store_never_touches_the_filesystem(
        self, tmp_path
    ):
        root = tmp_path / "never-created"
        store = RunStore(root)
        assert store.records() == []
        assert not root.exists()


class TestResolveStoreDir:
    def test_explicit_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_store_dir(tmp_path / "arg") == str(tmp_path / "arg")

    def test_environment_then_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_store_dir() == str(tmp_path / "env")
        monkeypatch.delenv(STORE_DIR_ENV)
        assert resolve_store_dir() == DEFAULT_STORE_DIR
