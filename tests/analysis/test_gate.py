"""Baseline management and the regression gate's CI semantics."""

from __future__ import annotations

import pytest

from repro.analysis.baselines import BaselineManager
from repro.analysis.gate import check_regressions
from repro.analysis.store import RunStore, spec_fingerprint
from repro.core.errors import AnalysisError
from repro.core.results import MetricStats, RunResult, TaskFailure

FINGERPRINT = spec_fingerprint("micro-wordcount", "mapreduce", volume=100)
BASELINE = [1.00, 1.02, 0.98, 1.01, 0.99]
SLOWER = [1.50, 1.53, 1.47, 1.52, 1.49]


def record(store, samples, fingerprint=None):
    result = RunResult(
        test_name="micro-wordcount@mapreduce",
        workload="wordcount",
        engine="mapreduce",
        repeats=len(samples),
        metrics={"duration": MetricStats("duration", list(samples))},
    )
    return store.record_outcome(result, fingerprint or FINGERPRINT)


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs")


class TestBaselines:
    def test_promote_resolve_repoint_remove(self, store):
        record(store, BASELINE)
        record(store, BASELINE)
        manager = BaselineManager(store)
        baseline = manager.promote("r0001", "main")
        assert baseline.record_id == "r0001"
        assert manager.resolve("main").record_id == "r0001"
        # Re-promoting repoints; the old record stays in the store.
        manager.promote("latest", "main")
        assert manager.resolve("main").record_id == "r0002"
        assert len(store.records()) == 2
        manager.remove("main")
        with pytest.raises(AnalysisError, match="unknown baseline"):
            manager.get("main")

    def test_failed_runs_cannot_become_baselines(self, store):
        failure = TaskFailure(
            test_name="t", workload="w", engine="e",
            error_type="EngineError", error_message="boom",
        )
        store.record_outcome(failure, FINGERPRINT)
        with pytest.raises(AnalysisError, match="only ok runs"):
            BaselineManager(store).promote("latest", "main")

    def test_reserved_and_empty_names_rejected(self, store):
        record(store, BASELINE)
        manager = BaselineManager(store)
        with pytest.raises(AnalysisError, match="invalid baseline name"):
            manager.promote("latest", "latest")
        with pytest.raises(AnalysisError, match="invalid baseline name"):
            manager.promote("latest", "")


class TestGate:
    def test_identical_rerun_passes_with_exit_zero(self, store):
        record(store, BASELINE)
        BaselineManager(store).promote("latest", "main")
        record(store, list(BASELINE))
        report = check_regressions(store, "main")
        assert report.passed
        assert report.exit_code == 0
        assert report.reasons == []
        assert report.candidate_id == "r0002"

    def test_slowdown_fails_with_exit_one_and_reasons(self, store):
        record(store, BASELINE)
        BaselineManager(store).promote("latest", "main")
        record(store, SLOWER)
        report = check_regressions(store, "main")
        assert not report.passed
        assert report.exit_code == 1
        assert any("duration regressed" in reason for reason in report.reasons)
        assert report.comparison.metrics["duration"].ci_low > 0

    def test_default_candidate_is_newest_in_series(self, store):
        record(store, BASELINE)
        BaselineManager(store).promote("latest", "main")
        record(store, list(BASELINE))
        record(store, SLOWER)
        # A run of a *different* configuration must not be picked up.
        record(store, SLOWER, spec_fingerprint("p", "e", volume=999))
        report = check_regressions(store, "main")
        assert report.candidate_id == "r0003"
        assert not report.passed

    def test_no_candidate_beyond_baseline_raises(self, store):
        record(store, BASELINE)
        BaselineManager(store).promote("latest", "main")
        with pytest.raises(AnalysisError, match="record a new run"):
            check_regressions(store, "main")

    def test_failed_candidate_fails_the_gate(self, store):
        record(store, BASELINE)
        BaselineManager(store).promote("latest", "main")
        failure = TaskFailure(
            test_name="t", workload="w", engine="e",
            error_type="EngineError", error_message="boom",
        )
        store.record_outcome(failure, FINGERPRINT)
        report = check_regressions(store, "main")
        assert report.exit_code == 1
        assert any("status 'failed'" in reason for reason in report.reasons)

    def test_fail_on_inconclusive_tightens_the_gate(self, store):
        record(store, [1.0, 1.2, 0.8, 1.1, 0.9])
        BaselineManager(store).promote("latest", "main")
        record(store, [0.80, 1.30, 0.95, 1.25, 0.90])
        relaxed = check_regressions(store, "main", tolerance=0.01)
        assert relaxed.comparison.metrics["duration"].verdict == (
            "inconclusive"
        )
        assert relaxed.passed
        strict = check_regressions(
            store, "main", tolerance=0.01, fail_on_inconclusive=True
        )
        assert not strict.passed
        assert any("inconclusive" in reason for reason in strict.reasons)

    def test_explicit_candidate_reference_and_as_dict(self, store):
        record(store, BASELINE)
        BaselineManager(store).promote("latest", "main")
        record(store, SLOWER)
        record(store, list(BASELINE))
        report = check_regressions(store, "main", "r0002")
        payload = report.as_dict()
        assert payload["candidate_id"] == "r0002"
        assert payload["passed"] is False
        assert payload["exit_code"] == 1
        assert payload["comparison"]["overall"] == "regressed"
