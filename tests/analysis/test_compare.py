"""The statistical comparison engine: CIs, rank test, verdicts."""

from __future__ import annotations

import pytest

from repro.analysis.compare import (
    SINGLE_SAMPLE_FACTOR,
    Comparison,
    bootstrap_mean_delta_ci,
    compare_records,
    compare_samples,
    compare_series,
    mann_whitney_u,
    metric_direction,
    min_achievable_p,
)
from repro.analysis.store import RunStore, spec_fingerprint
from repro.core.errors import AnalysisError
from repro.core.results import MetricStats, RunResult

BASELINE = [1.00, 1.02, 0.98, 1.01, 0.99]
SLOWER = [1.50, 1.53, 1.47, 1.52, 1.49]  # +50%, clearly separated


class TestPrimitives:
    def test_bootstrap_is_seeded_and_reproducible(self):
        first = bootstrap_mean_delta_ci(BASELINE, SLOWER, seed=7)
        second = bootstrap_mean_delta_ci(BASELINE, SLOWER, seed=7)
        assert first == second
        assert bootstrap_mean_delta_ci(BASELINE, SLOWER, seed=8) != first

    def test_bootstrap_ci_excludes_zero_for_a_real_shift(self):
        low, high = bootstrap_mean_delta_ci(BASELINE, SLOWER)
        assert 0.0 < low < high
        assert low < 0.5 < high  # interval brackets the true +50%

    def test_bootstrap_ci_covers_zero_for_identical_samples(self):
        low, high = bootstrap_mean_delta_ci(BASELINE, list(BASELINE))
        assert low <= 0.0 <= high

    def test_bootstrap_needs_two_samples_per_side(self):
        with pytest.raises(AnalysisError, match="at least 2"):
            bootstrap_mean_delta_ci([1.0], BASELINE)

    def test_mann_whitney_separated_samples_are_significant(self):
        _, p = mann_whitney_u(BASELINE, SLOWER)
        assert p < 0.05

    def test_mann_whitney_all_tied_returns_p_one(self):
        _, p = mann_whitney_u([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        assert p == 1.0

    def test_min_achievable_p_bounds_tiny_samples(self):
        assert min_achievable_p(2, 2) == pytest.approx(1 / 3)
        assert min_achievable_p(5, 5) == pytest.approx(2 / 252)
        # n=m=2 cannot reach 0.05, n=m=5 can.
        assert min_achievable_p(2, 2) > 0.05 > min_achievable_p(5, 5)

    def test_metric_direction_table(self):
        assert metric_direction("duration") == "lower"
        assert metric_direction("energy") == "lower"
        assert metric_direction("throughput") == "higher"


class TestVerdicts:
    def test_identical_samples_are_unchanged(self):
        comparison = compare_samples("duration", BASELINE, list(BASELINE))
        assert comparison.verdict == "unchanged"
        assert comparison.relative_delta == pytest.approx(0.0)

    def test_seeded_slowdown_regresses_with_ci_excluding_zero(self):
        comparison = compare_samples("duration", BASELINE, SLOWER)
        assert comparison.verdict == "regressed"
        assert comparison.ci_low > 0.0
        assert comparison.p_value < 0.05
        assert comparison.significant

    def test_direction_flips_the_verdict(self):
        # The same upward shift is an improvement when higher is better.
        comparison = compare_samples("throughput", BASELINE, SLOWER)
        assert comparison.verdict == "improved"
        comparison = compare_samples(
            "custom", BASELINE, SLOWER, direction="lower"
        )
        assert comparison.verdict == "regressed"

    def test_certain_but_tiny_delta_is_unchanged(self):
        nudged = [value * 1.01 for value in BASELINE]  # +1% < 5% tolerance
        comparison = compare_samples("duration", BASELINE, nudged)
        assert comparison.verdict == "unchanged"

    def test_noisy_overlap_is_inconclusive_not_unchanged(self):
        noisy = [0.80, 1.30, 0.95, 1.25, 0.90]  # +4%…; wide spread
        comparison = compare_samples(
            "duration", [1.0, 1.2, 0.8, 1.1, 0.9], noisy, tolerance=0.01
        )
        assert comparison.verdict == "inconclusive"

    def test_single_sample_gray_zone_is_honest(self):
        # n=1: within tolerance → unchanged; beyond 3× tolerance →
        # directional; between → inconclusive, never a false verdict.
        assert compare_samples("duration", [1.0], [1.02]).verdict == (
            "unchanged"
        )
        gray = 1.0 + 2.0 * 0.05  # 2× tolerance < SINGLE_SAMPLE_FACTOR
        assert compare_samples("duration", [1.0], [gray]).verdict == (
            "inconclusive"
        )
        big = 1.0 + (SINGLE_SAMPLE_FACTOR + 1) * 0.05
        assert compare_samples("duration", [1.0], [big]).verdict == (
            "regressed"
        )

    def test_empty_samples_raise(self):
        with pytest.raises(AnalysisError, match="empty"):
            compare_samples("duration", [], [1.0])

    def test_percentile_snapshots_ride_along(self):
        comparison = compare_samples("duration", BASELINE, SLOWER)
        assert set(comparison.baseline_percentiles) == {"p50", "p95", "p99"}
        assert comparison.candidate_percentiles["p50"] == pytest.approx(
            MetricStats("duration", SLOWER).p50
        )


class TestComparisonRollup:
    def test_overall_is_worst_first(self):
        comparison = compare_records(
            {"duration": BASELINE, "throughput": BASELINE},
            {"duration": SLOWER, "throughput": list(BASELINE)},
        )
        assert comparison.metrics["duration"].verdict == "regressed"
        assert comparison.metrics["throughput"].verdict == "unchanged"
        assert comparison.overall == "regressed"
        assert [c.metric for c in comparison.with_verdict("regressed")] == [
            "duration"
        ]

    def test_all_unchanged_rolls_up_unchanged(self):
        comparison = compare_records(
            {"duration": BASELINE}, {"duration": list(BASELINE)}
        )
        assert comparison.overall == "unchanged"

    def test_empty_comparison_rolls_up_unchanged(self):
        assert Comparison("a", "b").overall == "unchanged"

    def test_accepts_run_results_and_restricts_metrics(self):
        baseline = RunResult(
            "t", "w", "e", 5,
            metrics={
                "duration": MetricStats("duration", BASELINE),
                "cost": MetricStats("cost", BASELINE),
            },
        )
        candidate = RunResult(
            "t", "w", "e", 5,
            metrics={"duration": MetricStats("duration", SLOWER)},
        )
        comparison = compare_records(
            baseline, candidate, metrics=["duration"]
        )
        assert list(comparison.metrics) == ["duration"]
        with pytest.raises(AnalysisError, match="not present on both"):
            compare_records(baseline, candidate, metrics=["cost"])

    def test_no_shared_metrics_raises(self):
        with pytest.raises(AnalysisError, match="no comparable metrics"):
            compare_records({"a": BASELINE}, {"b": BASELINE})

    def test_as_dict_is_machine_readable(self):
        payload = compare_records(
            {"duration": BASELINE}, {"duration": SLOWER}
        ).as_dict()
        assert payload["overall"] == "regressed"
        metric = payload["metrics"]["duration"]
        assert metric["verdict"] == "regressed"
        assert metric["ci_low"] > 0


class TestCompareSeries:
    def test_pooling_raises_power(self, tmp_path):
        store = RunStore(tmp_path)
        fingerprint = spec_fingerprint("p", "e", volume=10)

        def record(samples):
            result = RunResult(
                "t", "w", "e", len(samples),
                metrics={"duration": MetricStats("duration", samples)},
            )
            return store.record_outcome(result, fingerprint)

        old = [record([1.0, 1.02]), record([0.98, 1.01])]
        new = [record([1.5, 1.52]), record([1.49, 1.51])]
        comparison = compare_series(old, new)
        assert comparison.metrics["duration"].baseline_n == 4
        assert comparison.metrics["duration"].verdict == "regressed"
        assert comparison.baseline == "r0001..r0002"
        assert comparison.candidate == "r0003..r0004"

    def test_empty_series_raise(self):
        with pytest.raises(AnalysisError, match="empty record series"):
            compare_series([], [])


class TestAblationEdgeCases:
    """The paired-cell shapes the tuning-ablation driver feeds through
    compare_records: single-repeat cells, identical-sample ties, and
    all-regressed matrices must come out deterministic."""

    def _cell(self, samples):
        return RunResult(
            "t", "w", "e", len(samples),
            metrics={"duration": MetricStats("duration", samples)},
        )

    def test_single_repeat_cells_within_guard_are_inconclusive(self):
        comparison = compare_records(
            self._cell([1.0]), self._cell([1.1]), metrics=["duration"]
        )
        lead = comparison.metrics["duration"]
        # +10% is beyond tolerance but under the 3x single-sample
        # guard: one sample per side cannot earn a directional verdict.
        assert lead.baseline_n == lead.candidate_n == 1
        assert lead.verdict == "inconclusive"
        assert lead.ci_low is None and lead.p_value is None

    def test_single_repeat_cells_beyond_guard_are_directional(self):
        factor = 1 + SINGLE_SAMPLE_FACTOR * 0.05 + 0.01
        slower = compare_records(
            self._cell([1.0]), self._cell([factor]), metrics=["duration"]
        )
        assert slower.metrics["duration"].verdict == "regressed"
        faster = compare_records(
            self._cell([1.0]), self._cell([2 - factor]), metrics=["duration"]
        )
        assert faster.metrics["duration"].verdict == "improved"

    def test_identical_sample_ties_are_unchanged(self):
        tied = [1.0, 1.0, 1.0, 1.0, 1.0]
        comparison = compare_records(
            self._cell(tied), self._cell(list(tied)), metrics=["duration"]
        )
        lead = comparison.metrics["duration"]
        assert lead.verdict == "unchanged"
        assert lead.relative_delta == 0.0

    def test_all_regressed_matrix_is_deterministic(self):
        pairs = [
            (BASELINE, SLOWER),
            ([2.0, 2.02, 1.98, 2.01, 1.99], [3.1, 3.08, 3.12, 3.09, 3.11]),
            ([0.5, 0.51, 0.49, 0.50, 0.52], [0.9, 0.91, 0.89, 0.90, 0.92]),
        ]
        first = [
            compare_records(
                self._cell(base), self._cell(cand),
                metrics=["duration"], seed=0,
            ).as_dict()
            for base, cand in pairs
        ]
        second = [
            compare_records(
                self._cell(base), self._cell(cand),
                metrics=["duration"], seed=0,
            ).as_dict()
            for base, cand in pairs
        ]
        assert first == second
        assert all(
            payload["metrics"]["duration"]["verdict"] == "regressed"
            for payload in first
        )
