"""Edge cases of ResultAnalyzer, split_outcomes, and result round-trips.

The result-analysis subsystem leans on these behaviors: the analyzer
must degrade gracefully on empty and all-failed batches, percentiles
must be honest at tiny sample counts, and the serialized forms must
round-trip ``status`` so a stored failure never comes back as ok.
"""

from __future__ import annotations

import pytest

from repro.core.errors import MetricError
from repro.core.results import (
    MetricStats,
    ResultAnalyzer,
    RunResult,
    TaskFailure,
    outcome_from_dict,
    split_outcomes,
)


def make_result(engine="mapreduce", samples=(1.0, 1.1, 0.9)):
    return RunResult(
        test_name=f"t@{engine}",
        workload="w",
        engine=engine,
        repeats=len(samples),
        metrics={"duration": MetricStats("duration", list(samples))},
    )


def make_failure(engine="dbms"):
    return TaskFailure(
        test_name=f"t@{engine}",
        workload="w",
        engine=engine,
        error_type="EngineError",
        error_message="boom",
        attempts=3,
    )


class TestSplitOutcomes:
    def test_empty_list(self):
        assert split_outcomes([]) == ([], [])

    def test_all_failed_batch(self):
        failures = [make_failure(), make_failure("nosql")]
        results, split_failures = split_outcomes(failures)
        assert results == []
        assert split_failures == failures

    def test_mixed_batch_preserves_both_sides(self):
        outcomes = [make_result(), make_failure(), make_result("nosql")]
        results, failures = split_outcomes(outcomes)
        assert [r.engine for r in results] == ["mapreduce", "nosql"]
        assert [f.engine for f in failures] == ["dbms"]


class TestResultAnalyzerEdges:
    def test_empty_analyzer_degrades_gracefully(self):
        analyzer = ResultAnalyzer([])
        assert analyzer.results == []
        assert analyzer.by_engine() == {}
        assert analyzer.ranking("duration") == []
        assert analyzer.summary_rows(["duration"]) == []
        with pytest.raises(MetricError, match="no results for baseline"):
            analyzer.speedup("duration", "mapreduce")

    def test_all_failed_batch_analyzes_as_empty(self):
        analyzer = ResultAnalyzer([make_failure(), make_failure("nosql")])
        assert analyzer.results == []
        assert analyzer.ranking("duration") == []

    def test_mixed_batch_considers_successes_only(self):
        analyzer = ResultAnalyzer(
            [make_result(), make_failure(), make_result("nosql", (2.0,))]
        )
        assert sorted(analyzer.by_engine()) == ["mapreduce", "nosql"]
        ranking = analyzer.ranking("duration", higher_is_better=False)
        assert [r.engine for r in ranking] == ["mapreduce", "nosql"]

    def test_single_repeat_runs_rank_and_summarize(self):
        analyzer = ResultAnalyzer(
            [make_result(samples=(1.0,)), make_result("nosql", (2.0,))]
        )
        factors = analyzer.speedup(
            "duration", "mapreduce", higher_is_better=False
        )
        assert factors["nosql"] == pytest.approx(0.5)
        rows = analyzer.summary_rows(["duration"])
        assert [row["repeats"] for row in rows] == [1, 1]


class TestPercentileEdges:
    def test_single_sample_is_every_percentile(self):
        stats = MetricStats("duration", [4.2])
        assert stats.p50 == stats.p95 == stats.p99 == 4.2
        assert stats.stdev == 0.0

    def test_small_sample_interpolates_instead_of_fabricating_a_tail(self):
        stats = MetricStats("duration", [1.0, 2.0, 3.0])
        assert stats.p50 == 2.0
        # p99 of 3 repeats lands near the max, not beyond it.
        assert 2.9 < stats.p99 <= 3.0
        assert stats.percentile(0) == 1.0
        assert stats.percentile(100) == 3.0

    def test_out_of_range_and_empty_raise(self):
        stats = MetricStats("duration", [1.0])
        with pytest.raises(MetricError, match="percentile"):
            stats.percentile(101)
        with pytest.raises(MetricError, match="no samples"):
            MetricStats("duration", []).percentile(50)


class TestStatusRoundTrip:
    def test_run_result_round_trips_status_and_samples(self):
        result = make_result()
        clone = RunResult.from_dict(result.as_dict())
        assert clone.status == "ok"
        assert clone.ok
        assert clone.metrics["duration"].samples == [1.0, 1.1, 0.9]
        assert clone.repeats == 3

    def test_non_ok_status_survives_the_round_trip(self):
        result = make_result()
        result.status = "degraded"
        clone = RunResult.from_dict(result.as_dict())
        assert clone.status == "degraded"
        assert not clone.ok

    def test_outcome_from_dict_dispatches_on_status(self):
        failure = make_failure()
        clone = outcome_from_dict(failure.as_dict())
        assert isinstance(clone, TaskFailure)
        assert not clone.ok
        assert clone.status == "failed"
        assert clone.error == "EngineError: boom"
        assert clone.attempts == 3
        result = outcome_from_dict(make_result().as_dict())
        assert isinstance(result, RunResult)
        assert result.ok

    def test_summary_only_payload_reconstructs_from_mean(self):
        stats = MetricStats.from_dict("duration", {"mean": 2.5})
        assert stats.samples == [2.5]
