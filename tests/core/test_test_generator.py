"""Tests for the five-step test generator (Figure 4)."""

from __future__ import annotations

import pytest

import repro  # noqa: F401 - triggers default registration
from repro.core.errors import TestGenerationError
from repro.core.operations import operations
from repro.core.patterns import SingleOperationPattern
from repro.core.prescription import DataRequirement
from repro.core.test_generator import TestGenerator
from repro.datagen.base import DataType


@pytest.fixture()
def generator():
    return TestGenerator()


class TestSelectData:
    def test_purely_synthetic(self, generator):
        requirement = DataRequirement("random-text", DataType.TEXT, volume=25)
        dataset = generator.select_data(requirement)
        assert dataset.num_records == 25

    def test_veracity_aware_fits_on_seed(self, generator):
        requirement = DataRequirement(
            "unigram-text", DataType.TEXT, volume=10, fit_on="text-corpus"
        )
        dataset = generator.select_data(requirement)
        assert dataset.num_records == 10

    def test_volume_override(self, generator):
        requirement = DataRequirement("random-text", DataType.TEXT, volume=25)
        assert generator.select_data(requirement, 7).num_records == 7

    def test_partitioned_generation(self, generator):
        requirement = DataRequirement(
            "kv-records", DataType.KEY_VALUE, volume=20, num_partitions=4
        )
        assert generator.select_data(requirement).num_records == 20

    def test_type_mismatch_rejected(self, generator):
        requirement = DataRequirement("random-text", DataType.GRAPH, volume=5)
        with pytest.raises(TestGenerationError):
            generator.select_data(requirement)


class TestGenerate:
    def test_binds_prescription_to_engine(self, generator):
        test = generator.generate("micro-wordcount", "mapreduce")
        assert test.name == "micro-wordcount@mapreduce"
        assert test.dataset.num_records == 200

    def test_run_executes_workload(self, generator):
        test = generator.generate("micro-wordcount", "mapreduce", 20)
        result = test.run()
        assert result.workload == "wordcount"
        assert result.records_in == 20

    def test_prescription_params_flow_to_workload(self, generator):
        test = generator.generate("micro-grep", "mapreduce", 30)
        result = test.run()
        # grep's prescription carries pattern_text="data".
        assert result.records_out <= 30

    def test_overrides_beat_prescription_params(self, generator):
        test = generator.generate("micro-grep", "mapreduce", 30)
        everything = test.run(pattern_text="")
        assert everything.records_out == 30

    def test_unsupported_engine_rejected(self, generator):
        with pytest.raises(TestGenerationError):
            generator.generate("micro-wordcount", "dbms")

    def test_unknown_prescription_rejected(self, generator):
        with pytest.raises(TestGenerationError):
            generator.generate("nonexistent", "mapreduce")


class TestGenerateForAllEngines:
    def test_relational_query_binds_to_all_system_types(self, generator):
        tests = generator.generate_for_all_engines("database-aggregate-join", 50)
        engines = sorted(test.engine.name for test in tests)
        assert engines == ["dbms", "mapreduce", "nosql"]

    def test_oltp_binds_to_both_stores(self, generator):
        tests = generator.generate_for_all_engines("oltp-read-write", 30)
        engines = sorted(test.engine.name for test in tests)
        assert engines == ["dbms", "nosql"]

    def test_all_tests_share_one_dataset_volume(self, generator):
        tests = generator.generate_for_all_engines("database-aggregate-join", 40)
        assert all(test.dataset.num_records == 40 for test in tests)


class TestMakePrescription:
    def test_custom_prescription_registered_and_runnable(self, generator):
        prescription = generator.make_prescription(
            name="custom-sort",
            domain="micro benchmarks",
            data=DataRequirement("random-text", DataType.TEXT, volume=15),
            operations=operations("sort"),
            pattern=SingleOperationPattern(operations("sort")[0]),
            workload="sort",
        )
        assert "custom-sort" in generator.repository
        test = generator.generate(prescription, "mapreduce")
        result = test.run()
        keys = [key for key, _ in result.output]
        assert keys == sorted(keys)

    def test_unknown_workload_rejected(self, generator):
        with pytest.raises(TestGenerationError):
            generator.make_prescription(
                name="bad",
                domain="micro benchmarks",
                data=DataRequirement("random-text", DataType.TEXT, volume=5),
                operations=operations("sort"),
                pattern=SingleOperationPattern(operations("sort")[0]),
                workload="quantum-sort",
            )
