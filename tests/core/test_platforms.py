"""Tests for the heterogeneous platform evaluation (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.core.errors import MetricError
from repro.core.platforms import (
    ACCELERABLE_FRACTIONS,
    STANDARD_PLATFORMS,
    PlatformEvaluation,
    PlatformSpec,
    accelerable_fraction,
    project,
)
from repro.engines.base import CostCounters
from repro.workloads.base import WorkloadResult


def make_result(workload: str, seconds: float) -> WorkloadResult:
    return WorkloadResult(
        workload=workload, engine="mapreduce", output=None,
        records_in=100, records_out=100,
        duration_seconds=seconds, cost=CostCounters(),
        simulated_seconds=seconds,
    )


CPU, GPU, MIC = STANDARD_PLATFORMS


class TestProjection:
    def test_cpu_projection_is_identity(self):
        result = make_result("sort", 10.0)
        projection = project(result, CPU)
        assert projection.seconds == pytest.approx(10.0)

    def test_amdahl_limit(self):
        """Speedup can never exceed 1/(1-f)."""
        result = make_result("kmeans", 10.0)
        projection = project(result, GPU)
        fraction = accelerable_fraction("kmeans")
        assert projection.seconds >= 10.0 * (1 - fraction)
        assert projection.seconds < 10.0

    def test_fully_serial_workload_gains_nothing(self):
        result = make_result("anything", 5.0)
        projection = project(result, GPU, fraction=0.0)
        assert projection.seconds == pytest.approx(5.0)

    def test_fully_parallel_workload_gets_full_speedup(self):
        result = make_result("anything", 12.0)
        projection = project(result, GPU, fraction=1.0)
        assert projection.seconds == pytest.approx(1.0)

    def test_energy_is_power_times_time(self):
        result = make_result("sort", 2.0)
        projection = project(result, CPU)
        assert projection.energy_joules == pytest.approx(2.0 * 130.0)

    def test_invalid_fraction_rejected(self):
        result = make_result("sort", 1.0)
        with pytest.raises(MetricError):
            project(result, GPU, fraction=1.5)

    def test_zero_time_rejected(self):
        with pytest.raises(MetricError):
            project(make_result("sort", 0.0), CPU)

    def test_declared_fractions_are_valid(self):
        for name, fraction in ACCELERABLE_FRACTIONS.items():
            assert 0.0 <= fraction <= 1.0, name

    def test_unknown_workload_gets_default(self):
        assert accelerable_fraction("brand-new-workload") == 0.2


class TestEvaluation:
    def _evaluation(self) -> PlatformEvaluation:
        evaluation = PlatformEvaluation()
        evaluation.add(make_result("kmeans", 10.0))
        evaluation.add(make_result("grep", 10.0))
        return evaluation

    def test_paper_question_one_answer_is_none(self):
        assert self._evaluation().consistent_winner() is None

    def test_dense_numeric_prefers_accelerator(self):
        evaluation = self._evaluation()
        assert evaluation.best_performance("kmeans").platform == "Xeon+GPGPU"

    def test_irregular_prefers_cpu_on_energy(self):
        evaluation = self._evaluation()
        assert evaluation.best_energy("grep").platform == "Xeon (CPU only)"

    def test_recommendations_cover_all_workloads(self):
        recommendations = self._evaluation().per_class_recommendation()
        assert set(recommendations) == {"kmeans", "grep"}
        for picks in recommendations.values():
            assert {"performance", "energy"} == set(picks)

    def test_unknown_workload_rejected(self):
        with pytest.raises(MetricError):
            self._evaluation().best_performance("nope")

    def test_consistent_winner_when_one_platform_dominates(self):
        """With a free accelerator (no extra watts), the GPU platform
        would win both metrics everywhere — the evaluation must detect
        that hypothetical too."""
        free_gpu = (
            CPU,
            PlatformSpec("FreeGPU", accelerator_speedup=10.0,
                         host_watts=130.0, accelerator_watts=0.0),
        )
        evaluation = PlatformEvaluation()
        evaluation.add(make_result("kmeans", 10.0), platforms=free_gpu)
        evaluation.add(make_result("grep", 10.0), platforms=free_gpu)
        assert evaluation.consistent_winner() == "FreeGPU"

    def test_rows_shape(self):
        rows = self._evaluation().rows()
        assert len(rows) == 2 * len(STANDARD_PLATFORMS)
        assert {"workload", "platform", "seconds", "energy (J)"} == set(rows[0])
