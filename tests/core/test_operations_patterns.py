"""Tests for abstract operations and workload patterns (Section 3.3)."""

from __future__ import annotations

import pytest

from repro.core.errors import TestGenerationError, UnknownOperationError
from repro.core.operations import (
    STANDARD_OPERATIONS,
    AbstractOperation,
    OperationCategory,
    by_category,
    operation,
    operations,
)
from repro.core.patterns import (
    ConvergenceCondition,
    FixedIterations,
    IterativeOperationPattern,
    MultiOperationPattern,
    SingleOperationPattern,
)


class TestOperations:
    def test_paper_examples_present(self):
        """Every operation named in the paper exists in the catalogue."""
        for name in ("select", "put", "get", "delete", "read", "write",
                     "update", "scan", "sort", "join", "aggregate"):
            assert name in STANDARD_OPERATIONS

    def test_three_categories_populated(self):
        for category in OperationCategory:
            assert by_category(category)

    def test_element_operations(self):
        assert operation("get").category is OperationCategory.ELEMENT
        assert operation("put").category is OperationCategory.ELEMENT

    def test_single_set_operations(self):
        assert operation("sort").category is OperationCategory.SINGLE_SET
        assert operation("select").category is OperationCategory.SINGLE_SET

    def test_double_set_operations(self):
        assert operation("join").category is OperationCategory.DOUBLE_SET
        assert operation("union").category is OperationCategory.DOUBLE_SET

    def test_unknown_operation_raises(self):
        with pytest.raises(UnknownOperationError):
            operation("teleport")

    def test_operations_bulk_lookup(self):
        ops = operations("sort", "join")
        assert [op.name for op in ops] == ["sort", "join"]

    def test_operations_are_frozen(self):
        op = operation("sort")
        with pytest.raises(AttributeError):
            op.name = "changed"  # type: ignore[misc]


class TestSingleOperationPattern:
    def test_unrolls_once(self):
        pattern = SingleOperationPattern(operation("sort"))
        batches = list(pattern.unroll())
        assert len(batches) == 1
        assert batches[0][0].name == "sort"

    def test_static_count(self):
        assert SingleOperationPattern(operation("sort")).static_operation_count() == 1

    def test_pattern_name(self):
        assert SingleOperationPattern(operation("sort")).pattern_name == (
            "single-operation"
        )


class TestMultiOperationPattern:
    def test_preserves_order(self):
        """The paper: 'the select operation executes first'."""
        pattern = MultiOperationPattern(operations("select", "put"))
        (batch,) = pattern.unroll()
        assert [op.name for op in batch] == ["select", "put"]

    def test_static_count_known_in_advance(self):
        pattern = MultiOperationPattern(operations("select", "join", "aggregate"))
        assert pattern.static_operation_count() == 3

    def test_empty_sequence_rejected(self):
        with pytest.raises(TestGenerationError):
            MultiOperationPattern([])


class TestIterativeOperationPattern:
    def test_fixed_iterations(self):
        pattern = IterativeOperationPattern(
            operations("rank"), FixedIterations(4)
        )
        batches = list(pattern.unroll())
        assert len(batches) == 4

    def test_count_unknown_statically(self):
        """The paper: 'the exact number of operations can be known at
        run time' only."""
        pattern = IterativeOperationPattern(
            operations("rank"), FixedIterations(4)
        )
        assert pattern.static_operation_count() is None

    def test_convergence_stops_early(self):
        # State halves each step: 1.0, 0.5, 0.25 ... converges under 0.1
        # when successive states differ by less than the tolerance.
        states = [1.0 / (2**i) for i in range(20)]
        pattern = IterativeOperationPattern(
            operations("rank"),
            ConvergenceCondition(tolerance=0.1, max_iterations=20),
        )
        batches = list(pattern.unroll(lambda i: states[i - 1]))
        assert 2 <= len(batches) < 20

    def test_convergence_respects_cap(self):
        pattern = IterativeOperationPattern(
            operations("rank"),
            ConvergenceCondition(tolerance=0.0, max_iterations=5),
        )
        # State never converges (keeps growing), so the cap must stop it.
        batches = list(pattern.unroll(lambda i: float(i)))
        assert len(batches) == 5

    def test_empty_body_rejected(self):
        with pytest.raises(TestGenerationError):
            IterativeOperationPattern([], FixedIterations(1))

    def test_validation(self):
        with pytest.raises(TestGenerationError):
            FixedIterations(0)
        with pytest.raises(TestGenerationError):
            ConvergenceCondition(tolerance=-1.0)
        with pytest.raises(TestGenerationError):
            ConvergenceCondition(tolerance=0.1, max_iterations=0)

    def test_describe_mentions_condition(self):
        pattern = IterativeOperationPattern(
            operations("rank"), FixedIterations(3)
        )
        assert "3 iterations" in repr(pattern)
