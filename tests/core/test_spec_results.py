"""Tests for benchmark specs and result aggregation/analysis."""

from __future__ import annotations

import pytest

import repro  # noqa: F401 - triggers default registration
from repro.core.errors import MetricError, SpecError
from repro.core.prescription import builtin_repository
from repro.core.results import MetricStats, ResultAnalyzer, RunResult
from repro.core.spec import (
    SPEC_VERSION,
    BenchmarkSpec,
    register_spec_migration,
)
from repro.engines.base import CostCounters
from repro.workloads.base import WorkloadResult


@pytest.fixture(scope="module")
def repository():
    return builtin_repository()


class TestBenchmarkSpec:
    def test_valid_spec_passes(self, repository):
        BenchmarkSpec("micro-wordcount", repeats=2).validate(repository)

    def test_unknown_prescription(self, repository):
        with pytest.raises(SpecError):
            BenchmarkSpec("nope").validate(repository)

    def test_negative_volume(self, repository):
        with pytest.raises(SpecError):
            BenchmarkSpec("micro-sort", volume=-5).validate(repository)

    def test_zero_repeats(self, repository):
        with pytest.raises(SpecError):
            BenchmarkSpec("micro-sort", repeats=0).validate(repository)

    def test_zero_partitions(self, repository):
        with pytest.raises(SpecError):
            BenchmarkSpec("micro-sort", data_partitions=0).validate(repository)

    def test_unknown_engine(self, repository):
        with pytest.raises(SpecError):
            BenchmarkSpec("micro-sort", engines=["spark"]).validate(repository)

    def test_unsupported_engine(self, repository):
        with pytest.raises(SpecError):
            BenchmarkSpec("micro-sort", engines=["dbms"]).validate(repository)

    def test_resolved_engines_default_to_supported(self, repository):
        spec = BenchmarkSpec("database-aggregate-join")
        assert sorted(spec.resolved_engines(repository)) == [
            "dbms", "mapreduce", "nosql",
        ]

    def test_resolved_engines_honours_explicit_list(self, repository):
        spec = BenchmarkSpec("database-aggregate-join", engines=["dbms"])
        assert spec.resolved_engines(repository) == ["dbms"]


class TestSpecVersioning:
    def test_as_dict_stamps_current_version(self):
        payload = BenchmarkSpec("micro-wordcount").as_dict()
        assert payload["spec_version"] == SPEC_VERSION

    def test_round_trip_is_identity(self):
        spec = BenchmarkSpec(
            "micro-sort", engines=["mapreduce"], volume=500,
            repeats=3, params={"seed": 7}, executor="thread",
            max_workers=2, on_error="continue", retries=1,
            task_timeout=5.0, record=True, store_dir="/tmp/x",
        )
        assert BenchmarkSpec.from_dict(spec.as_dict()) == spec

    def test_payload_copies_do_not_alias(self):
        spec = BenchmarkSpec("micro-sort", engines=["mapreduce"])
        payload = spec.as_dict()
        payload["engines"].append("nosql")
        payload["params"]["seed"] = 1
        assert spec.engines == ["mapreduce"]
        assert spec.params == {}

    def test_unversioned_payload_is_v1_and_migrates_engine_field(self):
        spec = BenchmarkSpec.from_dict(
            {"prescription": "micro-wordcount", "engine": "mapreduce",
             "volume": 120}
        )
        assert spec.engines == ["mapreduce"]
        assert spec.volume == 120

    def test_v1_bare_string_engines_migrates(self):
        spec = BenchmarkSpec.from_dict(
            {"prescription": "micro-wordcount", "engines": "mapreduce"}
        )
        assert spec.engines == ["mapreduce"]

    def test_future_version_rejected(self):
        with pytest.raises(SpecError, match="newer than this release"):
            BenchmarkSpec.from_dict(
                {"spec_version": SPEC_VERSION + 1,
                 "prescription": "micro-wordcount"}
            )

    def test_non_integer_version_rejected(self):
        with pytest.raises(SpecError, match="must be an integer"):
            BenchmarkSpec.from_dict(
                {"spec_version": "two", "prescription": "micro-wordcount"}
            )

    def test_unknown_field_rejected_after_migration(self):
        with pytest.raises(SpecError, match="unknown field"):
            BenchmarkSpec.from_dict(
                {"spec_version": SPEC_VERSION,
                 "prescription": "micro-wordcount", "vollume": 5}
            )

    def test_missing_prescription_rejected(self):
        with pytest.raises(SpecError, match="missing 'prescription'"):
            BenchmarkSpec.from_dict({"spec_version": SPEC_VERSION})

    def test_duplicate_migration_registration_rejected(self):
        with pytest.raises(SpecError, match="already registered"):
            register_spec_migration(1, lambda payload: payload)


class TestTuningField:
    """v3 added ``tuning``; v2 payloads (and v1 before them) load as
    the ``normal`` profile — the bare engines they actually ran."""

    def test_default_is_normal(self):
        assert BenchmarkSpec("micro-wordcount").tuning == "normal"

    def test_v2_payload_migrates_to_normal(self):
        spec = BenchmarkSpec.from_dict(
            {"spec_version": 2, "prescription": "micro-wordcount",
             "engines": ["mapreduce"], "volume": 50}
        )
        assert spec.tuning == "normal"
        assert spec.volume == 50

    def test_v1_payload_migrates_through_the_chain(self):
        spec = BenchmarkSpec.from_dict(
            {"prescription": "micro-wordcount", "engine": "mapreduce"}
        )
        assert spec.engines == ["mapreduce"]
        assert spec.tuning == "normal"

    def test_v2_explicit_tuning_survives_migration(self):
        # A v2 payload cannot legally carry tuning (the field is v3),
        # but setdefault-based migration must not clobber one written
        # by a forward-porting tool.
        spec = BenchmarkSpec.from_dict(
            {"spec_version": 2, "prescription": "micro-wordcount",
             "tuning": "optimized"}
        )
        assert spec.tuning == "optimized"

    def test_round_trip_keeps_tuning(self):
        spec = BenchmarkSpec(
            "database-aggregate-join", engines=["dbms"], tuning="optimized"
        )
        payload = spec.as_dict()
        assert payload["spec_version"] == SPEC_VERSION
        assert payload["tuning"] == "optimized"
        assert BenchmarkSpec.from_dict(payload) == spec

    def test_validate_accepts_builtin_profiles(self, repository):
        BenchmarkSpec(
            "database-aggregate-join", engines=["dbms"], tuning="optimized"
        ).validate(repository)
        BenchmarkSpec(
            "micro-wordcount", tuning="normal+combine_batch_records"
        ).validate(repository)

    def test_validate_rejects_unknown_profile(self, repository):
        with pytest.raises(SpecError, match="unknown tuning profile"):
            BenchmarkSpec(
                "micro-wordcount", tuning="hyperspeed"
            ).validate(repository)

    def test_validate_rejects_one_off_for_wrong_engine(self, repository):
        with pytest.raises(SpecError, match="no optimized knob"):
            BenchmarkSpec(
                "database-aggregate-join", engines=["dbms"],
                tuning="normal+combine_batch_records",
            ).validate(repository)


def make_workload_result(duration: float, engine: str = "mapreduce") -> WorkloadResult:
    return WorkloadResult(
        workload="wl", engine=engine, output=None,
        records_in=100, records_out=100,
        duration_seconds=duration,
        cost=CostCounters(compute_ops=1000),
    )


class TestRunResult:
    def test_from_workload_results_aggregates(self):
        result = RunResult.from_workload_results(
            "t", [make_workload_result(1.0), make_workload_result(3.0)]
        )
        assert result.repeats == 2
        assert result.mean("duration") == pytest.approx(2.0)
        assert result.metric("duration").minimum == 1.0
        assert result.metric("duration").maximum == 3.0

    def test_empty_runs_rejected(self):
        with pytest.raises(MetricError):
            RunResult.from_workload_results("t", [])

    def test_unknown_metric_rejected(self):
        result = RunResult.from_workload_results("t", [make_workload_result(1.0)])
        with pytest.raises(MetricError):
            result.metric("tps")

    def test_stats_stdev(self):
        stats = MetricStats("m", [1.0, 3.0])
        assert stats.stdev == pytest.approx(1.4142, rel=1e-3)
        assert MetricStats("m", [1.0]).stdev == 0.0


class TestResultAnalyzer:
    def _results(self):
        fast = RunResult.from_workload_results(
            "t@dbms", [make_workload_result(1.0, "dbms")]
        )
        slow = RunResult.from_workload_results(
            "t@mapreduce", [make_workload_result(4.0, "mapreduce")]
        )
        return [fast, slow]

    def test_ranking_lower_is_better(self):
        analyzer = ResultAnalyzer(self._results())
        ranked = analyzer.ranking("duration", higher_is_better=False)
        assert [result.engine for result in ranked] == ["dbms", "mapreduce"]

    def test_speedup_relative_to_baseline(self):
        analyzer = ResultAnalyzer(self._results())
        factors = analyzer.speedup(
            "duration", baseline_engine="mapreduce", higher_is_better=False
        )
        assert factors["dbms"] == pytest.approx(4.0)
        assert factors["mapreduce"] == pytest.approx(1.0)

    def test_speedup_unknown_baseline(self):
        analyzer = ResultAnalyzer(self._results())
        with pytest.raises(MetricError):
            analyzer.speedup("duration", baseline_engine="spark")

    def test_by_engine_groups(self):
        analyzer = ResultAnalyzer(self._results())
        assert set(analyzer.by_engine()) == {"dbms", "mapreduce"}

    def test_summary_rows(self):
        analyzer = ResultAnalyzer(self._results())
        rows = analyzer.summary_rows(["duration", "missing"])
        assert len(rows) == 2
        assert "duration" in rows[0]
        assert "missing" not in rows[0]
