"""Tests for the five-step process (Figure 1) and layers (Figure 2)."""

from __future__ import annotations

import pytest

from repro import BenchmarkSpec, BigDataBenchmark
from repro.core.errors import SpecError
from repro.core.process import BenchmarkingProcess


@pytest.fixture(scope="module")
def framework():
    return BigDataBenchmark()


class TestBenchmarkingProcess:
    def test_all_five_steps_run_in_order(self, framework):
        report = framework.run("micro-wordcount", volume=30)
        assert [step.step for step in report.steps] == list(
            BenchmarkingProcess.STEP_NAMES
        )

    def test_planning_detail(self, framework):
        report = framework.run("micro-wordcount", volume=30)
        planning = report.step("planning")
        assert planning.detail["engines"] == ["mapreduce"]
        assert "duration" in planning.detail["metrics"]

    def test_data_generation_detail(self, framework):
        report = framework.run("micro-wordcount", volume=30)
        generation = report.step("data-generation")
        assert generation.detail["records"] == 30
        assert generation.detail["bytes"] > 0

    def test_execution_produces_results_per_engine(self, framework):
        report = framework.run("database-aggregate-join", volume=60)
        assert sorted(result.engine for result in report.results) == [
            "dbms", "mapreduce", "nosql",
        ]

    def test_repeats_respected(self, framework):
        report = framework.run("micro-wordcount", volume=20, repeats=3)
        assert report.results[0].repeats == 3
        assert report.step("execution").detail["runs"] == 3

    def test_analysis_ranks_engines(self, framework):
        report = framework.run("database-aggregate-join", volume=60)
        analysis = report.step("analysis-evaluation")
        assert analysis.detail["lead_metric"] == "duration"
        assert len(analysis.detail["ranking"]) == 3

    def test_invalid_spec_fails_at_planning(self, framework):
        with pytest.raises(SpecError):
            framework.run(BenchmarkSpec("micro-wordcount", repeats=0))

    def test_unknown_step_lookup(self, framework):
        report = framework.run("micro-wordcount", volume=10)
        with pytest.raises(KeyError):
            report.step("imaginary")

    def test_data_partitions_flow_to_generation(self, framework):
        report = framework.run("micro-wordcount", volume=24, data_partitions=4)
        assert report.step("data-generation").detail["partitions"] == 4
        assert report.step("data-generation").detail["records"] == 24


class TestLayers:
    def test_user_interface_enumerations(self, framework):
        ui = framework.user_interface
        assert "micro-sort" in ui.available_prescriptions()
        assert "search engine" in ui.available_domains()
        assert "mapreduce" in ui.available_engines()
        assert "lda-text" in ui.available_generators()
        assert "wordcount" in ui.available_workloads()

    def test_build_spec_validates(self, framework):
        with pytest.raises(SpecError):
            framework.user_interface.build_spec("micro-sort", repeats=0)

    def test_function_layer_generates_data(self, framework):
        dataset = framework.function_layer.generate_data("random-text", 12)
        assert dataset.num_records == 12

    def test_function_layer_veracity_path(self, framework):
        dataset = framework.function_layer.generate_data(
            "unigram-text", 8, fit_on="text-corpus"
        )
        assert dataset.num_records == 8

    def test_function_layer_describes_metrics(self, framework):
        descriptions = framework.function_layer.describe_metrics()
        assert any("user-perceivable" in line for line in descriptions)
        assert any("architecture" in line for line in descriptions)

    def test_execution_layer_formats(self, framework):
        assert "csv" in framework.execution_layer.available_formats()

    def test_execution_layer_converts(self, framework, retail_tables):
        converted = framework.execution_layer.convert_format(
            retail_tables["orders"], "csv"
        )
        assert converted.format_name == "csv"

    def test_execution_layer_reports(self, framework):
        report = framework.run("micro-wordcount", volume=15)
        table = framework.execution_layer.report(
            report.results, ["duration", "throughput"]
        )
        assert "duration" in table
        json_text = framework.execution_layer.report_json(report.results)
        assert '"metrics"' in json_text

    def test_prescription_accessor(self, framework):
        assert framework.prescription("micro-sort").workload == "sort"
