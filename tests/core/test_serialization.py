"""Tests for prescription serialization (the shareable repository)."""

from __future__ import annotations

import json

import pytest

import repro  # noqa: F401 - triggers default registration
from repro.core.errors import TestGenerationError
from repro.core.patterns import (
    ConvergenceCondition,
    FixedIterations,
    IterativeOperationPattern,
    MultiOperationPattern,
    SingleOperationPattern,
)
from repro.core.prescription import builtin_repository
from repro.core.serialization import (
    pattern_from_dict,
    pattern_to_dict,
    prescription_from_dict,
    prescription_to_dict,
    repository_from_json,
    repository_to_json,
)
from repro.core.test_generator import TestGenerator


class TestPatternRoundtrip:
    def test_single_operation(self):
        from repro.core.operations import operation

        pattern = SingleOperationPattern(operation("sort"))
        restored = pattern_from_dict(pattern_to_dict(pattern))
        assert isinstance(restored, SingleOperationPattern)
        assert restored.operation.name == "sort"

    def test_multi_operation_preserves_order(self):
        from repro.core.operations import operations

        pattern = MultiOperationPattern(operations("select", "join", "sort"))
        restored = pattern_from_dict(pattern_to_dict(pattern))
        assert [op.name for op in restored.operations] == [
            "select", "join", "sort",
        ]

    def test_iterative_fixed(self):
        from repro.core.operations import operations

        pattern = IterativeOperationPattern(
            operations("rank"), FixedIterations(7)
        )
        restored = pattern_from_dict(pattern_to_dict(pattern))
        assert isinstance(restored.stopping_condition, FixedIterations)
        assert restored.stopping_condition.count == 7

    def test_iterative_convergence(self):
        from repro.core.operations import operations

        pattern = IterativeOperationPattern(
            operations("cluster"),
            ConvergenceCondition(tolerance=0.01, max_iterations=12),
        )
        restored = pattern_from_dict(pattern_to_dict(pattern))
        condition = restored.stopping_condition
        assert isinstance(condition, ConvergenceCondition)
        assert condition.tolerance == 0.01
        assert condition.max_iterations == 12

    def test_unknown_kind_rejected(self):
        with pytest.raises(TestGenerationError):
            pattern_from_dict({"kind": "spiral"})


class TestPrescriptionRoundtrip:
    def test_every_builtin_roundtrips(self):
        repository = builtin_repository()
        for name in repository.names():
            original = repository.get(name)
            restored = prescription_from_dict(prescription_to_dict(original))
            assert restored.name == original.name
            assert restored.domain == original.domain
            assert restored.workload == original.workload
            assert restored.data == original.data
            assert [op.name for op in restored.operations] == [
                op.name for op in original.operations
            ]
            assert restored.pattern.pattern_name == original.pattern.pattern_name
            assert restored.metric_names == original.metric_names
            assert restored.params == original.params

    def test_payload_is_plain_json(self):
        repository = builtin_repository()
        payload = prescription_to_dict(repository.get("search-pagerank"))
        json.dumps(payload)  # must not raise

    def test_missing_field_rejected(self):
        with pytest.raises(TestGenerationError):
            prescription_from_dict({"name": "incomplete"})


class TestRepositoryRoundtrip:
    def test_full_repository_roundtrip(self):
        original = builtin_repository()
        restored = repository_from_json(repository_to_json(original))
        assert restored.names() == original.names()

    def test_restored_prescription_is_runnable(self):
        """The §5.2 point: a shared prescription file produces a working
        prescribed test."""
        text = repository_to_json(builtin_repository())
        restored = repository_from_json(text)
        generator = TestGenerator(repository=restored)
        result = generator.generate("micro-wordcount", "mapreduce", 20).run()
        assert result.records_in == 20

    def test_invalid_json_rejected(self):
        with pytest.raises(TestGenerationError):
            repository_from_json("{not json")

    def test_non_list_rejected(self):
        with pytest.raises(TestGenerationError):
            repository_from_json('{"a": 1}')

    def test_unknown_data_type_rejected(self):
        repository = builtin_repository()
        payload = prescription_to_dict(repository.get("micro-sort"))
        payload["data"]["data_type"] = "hologram"
        with pytest.raises(TestGenerationError):
            prescription_from_dict(payload)
