"""Tests for the metric taxonomy (Section 3.1)."""

from __future__ import annotations

import pytest

from repro.core.errors import MetricError
from repro.core.metrics import (
    CostMetric,
    CostModel,
    DataRateMetric,
    DurationMetric,
    EnergyMetric,
    EnergyModel,
    LatencyPercentileMetric,
    MeanLatencyMetric,
    MetricKind,
    MetricSuite,
    NetworkRateMetric,
    OpsPerSecondMetric,
    RunEvidence,
    ThroughputMetric,
)
from repro.engines.base import CostCounters


def make_evidence(**overrides) -> RunEvidence:
    defaults = dict(
        duration_seconds=2.0,
        records_in=1000,
        records_out=500,
        cost=CostCounters(
            records_read=1000, records_written=500,
            bytes_read=10_000, bytes_written=5_000,
            compute_ops=4_000, network_bytes=2_000,
        ),
        latencies=[0.001, 0.002, 0.003, 0.010],
    )
    defaults.update(overrides)
    return RunEvidence(**defaults)


class TestUserPerceivableMetrics:
    def test_duration(self):
        assert DurationMetric().compute(make_evidence()) == 2.0
        assert DurationMetric().kind is MetricKind.USER_PERCEIVABLE

    def test_throughput(self):
        assert ThroughputMetric().compute(make_evidence()) == 500.0

    def test_throughput_prefers_simulated_time(self):
        evidence = make_evidence(simulated_seconds=0.5)
        assert ThroughputMetric().compute(evidence) == 2000.0

    def test_throughput_zero_duration_rejected(self):
        with pytest.raises(MetricError):
            ThroughputMetric().compute(make_evidence(duration_seconds=0.0))

    def test_mean_latency(self):
        assert MeanLatencyMetric().compute(make_evidence()) == pytest.approx(0.004)

    def test_latency_percentile(self):
        metric = LatencyPercentileMetric(0.99)
        assert metric.name == "latency_p99"
        value = metric.compute(make_evidence())
        assert 0.003 < value <= 0.010

    def test_percentile_validation(self):
        with pytest.raises(MetricError):
            LatencyPercentileMetric(0.0)
        with pytest.raises(MetricError):
            LatencyPercentileMetric(1.5)

    def test_latency_metrics_require_samples(self):
        evidence = make_evidence(latencies=[])
        with pytest.raises(MetricError):
            MeanLatencyMetric().compute(evidence)
        with pytest.raises(MetricError):
            LatencyPercentileMetric(0.5).compute(evidence)


class TestArchitectureMetrics:
    def test_ops_per_second(self):
        assert OpsPerSecondMetric().compute(make_evidence()) == 2000.0
        assert OpsPerSecondMetric().kind is MetricKind.ARCHITECTURE

    def test_data_rate(self):
        assert DataRateMetric().compute(make_evidence()) == 7500.0

    def test_network_rate(self):
        assert NetworkRateMetric().compute(make_evidence()) == 1000.0


class TestEnergyAndCost:
    def test_energy_scales_with_duration(self):
        model = EnergyModel(num_nodes=2, idle_watts_per_node=100.0,
                            joules_per_million_ops=0.0)
        metric = EnergyMetric(model)
        assert metric.compute(make_evidence()) == pytest.approx(400.0)

    def test_energy_scales_with_ops(self):
        model = EnergyModel(num_nodes=0, joules_per_million_ops=1000.0)
        metric = EnergyMetric(model)
        assert metric.compute(make_evidence()) == pytest.approx(4.0)

    def test_cost(self):
        model = CostModel(num_nodes=4, dollars_per_node_hour=0.9)
        metric = CostMetric(model)
        assert metric.compute(make_evidence()) == pytest.approx(
            4 * (2.0 / 3600) * 0.9
        )

    def test_as_metric_helpers(self):
        assert isinstance(EnergyModel().as_metric(), EnergyMetric)
        assert isinstance(CostModel().as_metric(), CostMetric)


class TestMetricSuite:
    def test_standard_suite_covers_both_kinds(self):
        suite = MetricSuite.standard()
        kinds = {metric.kind for metric in suite.metrics}
        assert kinds == {MetricKind.USER_PERCEIVABLE, MetricKind.ARCHITECTURE}

    def test_compute_all_skips_unavailable(self):
        suite = MetricSuite.standard()
        values = suite.compute_all(make_evidence(latencies=[]))
        assert "duration" in values
        assert "mean_latency" not in values  # skipped, not raised

    def test_compute_all_full_evidence(self):
        values = MetricSuite.standard().compute_all(make_evidence())
        for name in ("duration", "throughput", "mean_latency", "latency_p99",
                     "ops_per_second", "data_rate", "energy", "cost"):
            assert name in values

    def test_evidence_effective_seconds(self):
        assert make_evidence().effective_seconds == 2.0
        assert make_evidence(simulated_seconds=0.25).effective_seconds == 0.25
