"""Tests for registries, prescriptions, and the repository."""

from __future__ import annotations

import pytest

import repro  # noqa: F401 - triggers default registration
from repro.core import registry
from repro.core.errors import RegistryError, TestGenerationError
from repro.core.operations import operations
from repro.core.patterns import SingleOperationPattern
from repro.core.prescription import (
    DataRequirement,
    Prescription,
    PrescriptionRepository,
    builtin_repository,
    load_seed,
)
from repro.core.registry import Registry
from repro.datagen.base import DataType


class TestRegistry:
    def test_register_and_create(self):
        reg: Registry[list] = Registry("thing")
        reg.register("empty", list)
        assert reg.create("empty") == []

    def test_duplicate_rejected(self):
        reg: Registry[list] = Registry("thing")
        reg.register("x", list)
        with pytest.raises(RegistryError):
            reg.register("x", list)

    def test_unknown_name_rejected(self):
        reg: Registry[list] = Registry("thing")
        with pytest.raises(RegistryError):
            reg.create("missing")

    def test_register_instance_returns_same_object(self):
        reg: Registry[list] = Registry("thing")
        instance = [1]
        reg.register_instance("shared", instance)
        assert reg.create("shared") is instance

    def test_contains_and_names(self):
        reg: Registry[list] = Registry("thing")
        reg.register("b", list)
        reg.register("a", list)
        assert "a" in reg
        assert reg.names() == ["a", "b"]
        assert len(reg) == 2


class TestDefaultRegistration:
    def test_generators_registered(self):
        for name in ("random-text", "lda-text", "rmat-graph", "fitted-table",
                     "poisson-stream", "kv-records", "mixture-table"):
            assert name in registry.generators

    def test_workloads_registered(self):
        for name in ("sort", "wordcount", "grep", "pagerank", "kmeans",
                     "connected-components", "collaborative-filtering",
                     "naive-bayes", "relational-query", "ycsb",
                     "windowed-aggregation", "hybrid"):
            assert name in registry.workloads

    def test_engines_registered(self):
        assert registry.engines.names() == ["dbms", "dfs", "mapreduce",
                                            "nosql", "streaming"]

    def test_registration_is_idempotent(self):
        from repro.bootstrap import register_default_components

        before = len(registry.workloads)
        register_default_components()
        assert len(registry.workloads) == before


class TestDataRequirement:
    def test_validation(self):
        with pytest.raises(TestGenerationError):
            DataRequirement("g", DataType.TEXT, volume=-1)
        with pytest.raises(TestGenerationError):
            DataRequirement("g", DataType.TEXT, volume=1, num_partitions=0)


class TestSeedSources:
    def test_all_seeds_load(self):
        for name in ("text-corpus", "social-graph", "retail-orders"):
            dataset = load_seed(name)
            assert dataset.num_records > 0

    def test_unknown_seed_rejected(self):
        with pytest.raises(TestGenerationError):
            load_seed("facebook-graph")


class TestPrescriptionRepository:
    def test_builtin_covers_paper_domains(self):
        repository = builtin_repository()
        domains = set(repository.domains())
        # The three internet-service domains plus micro/database/OLTP/stream.
        assert {"search engine", "social network", "e-commerce",
                "micro benchmarks", "basic database operations",
                "cloud OLTP", "streaming"} <= domains

    def test_every_builtin_references_registered_workload(self):
        repository = builtin_repository()
        for name in repository.names():
            prescription = repository.get(name)
            assert prescription.workload in registry.workloads

    def test_every_builtin_references_registered_generator(self):
        repository = builtin_repository()
        for name in repository.names():
            prescription = repository.get(name)
            assert prescription.data.generator in registry.generators

    def test_duplicate_name_rejected(self):
        repository = PrescriptionRepository()
        prescription = Prescription(
            name="p", domain="d",
            data=DataRequirement("random-text", DataType.TEXT, 10),
            operations=operations("sort"),
            pattern=SingleOperationPattern(operations("sort")[0]),
            workload="sort",
        )
        repository.add(prescription)
        with pytest.raises(TestGenerationError):
            repository.add(prescription)

    def test_unknown_prescription_rejected(self):
        with pytest.raises(TestGenerationError):
            PrescriptionRepository().get("nope")

    def test_by_domain(self):
        repository = builtin_repository()
        micro = repository.by_domain("micro benchmarks")
        assert {p.workload for p in micro} == {"sort", "wordcount", "grep",
                                               "cfs"}

    def test_describe(self):
        repository = builtin_repository()
        description = repository.get("micro-sort").describe()
        assert description["pattern"] == "single-operation"
        assert description["workload"] == "sort"
