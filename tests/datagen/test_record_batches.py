"""Tests for the chunked data path: RecordBatch streaming and sources.

The core guarantee under test: generation is deterministic, so streaming
a generator through ``iter_batches`` at *any* chunk size yields records
bit-identical to one materializing ``generate`` call at the same seed —
chunking is re-slicing, never re-sampling.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro  # noqa: F401 — fills the registries
from repro.core import registry
from repro.core.errors import GenerationError
from repro.core.prescription import load_seed
from repro.datagen.base import (
    DEFAULT_CHUNK_SIZE,
    DataSet,
    DataType,
    RecordBatch,
    as_dataset,
)
from repro.datagen.source import (
    DatasetSource,
    GeneratorSource,
    as_source,
    ensure_dataset,
)
from repro.observability import Tracer

#: Seed data for the veracity-aware generators (everything else is
#: ready to generate straight from the registry).
FIT_SOURCES = {
    "lda-text": "text-corpus",
    "unigram-text": "text-corpus",
    "fitted-table": "retail-orders",
}

VOLUME = 30


def _fitted(name: str):
    generator = registry.generators.create(name)
    fit_on = FIT_SOURCES.get(name)
    if fit_on is not None:
        generator.fit(load_seed(fit_on))
    return generator


def all_generator_names() -> list[str]:
    return sorted(registry.generators.names())


def _same(a, b) -> bool:
    """Structural equality that tolerates numpy arrays inside records."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(a, b)
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(_same(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_same(a[k], b[k]) for k in a)
    return a == b


class TestStreamedMaterializedParity:
    """Every registered generator, every chunking, identical records."""

    @pytest.mark.parametrize("name", all_generator_names())
    @pytest.mark.parametrize("chunk_size", [1, 7, VOLUME])
    def test_concatenated_batches_equal_generate(self, name, chunk_size):
        materialized = _fitted(name).generate(VOLUME)
        streamed = [
            record
            for batch in _fitted(name).iter_batches(VOLUME, chunk_size)
            for record in batch
        ]
        assert _same(streamed, materialized.records)

    @pytest.mark.parametrize("name", all_generator_names())
    def test_batch_invariants(self, name):
        # Volume is generator-native units (a graph's volume counts
        # vertices, its records are edges), so the expected record count
        # comes from the materialized equivalent.
        expected = len(_fitted(name).generate(VOLUME).records)
        batches = list(_fitted(name).iter_batches(VOLUME, 7))
        assert sum(len(batch) for batch in batches) == expected
        offset = 0
        for index, batch in enumerate(batches):
            assert isinstance(batch, RecordBatch)
            assert batch.index == index
            assert batch.offset == offset
            assert len(batch) <= 7
            offset += len(batch)
        # Every batch except the last is full.
        assert all(len(batch) == 7 for batch in batches[:-1])

    @pytest.mark.parametrize("name", all_generator_names())
    def test_multi_partition_stream_matches_generate_parallel(self, name):
        materialized = _fitted(name).generate_parallel(VOLUME, 3)
        streamed = [
            record
            for batch in _fitted(name).iter_batches(VOLUME, 7, num_partitions=3)
            for record in batch
        ]
        assert _same(streamed, materialized.records)


class TestIterBatchesValidation:
    def test_rejects_non_positive_chunk_size(self):
        generator = _fitted("random-text")
        with pytest.raises(GenerationError):
            list(generator.iter_batches(10, 0))

    def test_rejects_negative_volume(self):
        generator = _fitted("random-text")
        with pytest.raises(GenerationError):
            list(generator.iter_batches(-1, 5))

    def test_unfitted_generator_rejected(self):
        generator = registry.generators.create("lda-text")
        with pytest.raises(GenerationError):
            list(generator.iter_batches(10, 5))

    def test_zero_volume_yields_no_batches(self):
        assert list(_fitted("random-text").iter_batches(0, 5)) == []


class TestDataSetBatches:
    def test_reslices_records(self):
        dataset = as_dataset([f"r{i}" for i in range(10)], DataType.TEXT)
        batches = list(dataset.batches(4))
        assert [batch.records for batch in batches] == [
            ["r0", "r1", "r2", "r3"],
            ["r4", "r5", "r6", "r7"],
            ["r8", "r9"],
        ]
        assert [batch.offset for batch in batches] == [0, 4, 8]

    def test_default_chunk_size(self):
        dataset = as_dataset(["x"] * (DEFAULT_CHUNK_SIZE + 1), DataType.TEXT)
        assert [len(b) for b in dataset.batches()] == [DEFAULT_CHUNK_SIZE, 1]

    def test_dataset_satisfies_source_protocol(self):
        dataset = as_dataset(["x"], DataType.TEXT)
        assert isinstance(dataset, DatasetSource)
        assert dataset.materialize() is dataset
        assert as_source(dataset) is dataset


class TestGeneratorSource:
    def test_materialize_equals_generate(self):
        source = GeneratorSource(_fitted("random-text"), VOLUME, chunk_size=7)
        assert source.materialize().records == (
            _fitted("random-text").generate(VOLUME).records
        )

    def test_batches_are_reiterable(self):
        source = GeneratorSource(_fitted("kv-records"), VOLUME, chunk_size=7)
        first = [r for b in source.batches() for r in b]
        second = [r for b in source.batches() for r in b]
        assert first == second == list(source)

    def test_metadata_carries_schema_without_generating(self):
        source = GeneratorSource(_fitted("mixture-table"), VOLUME)
        assert "schema" in source.metadata
        assert source.metadata["streamed"] is True
        assert source._materialized is None

    def test_num_records_known_up_front(self):
        source = GeneratorSource(_fitted("random-text"), VOLUME)
        assert source.num_records == VOLUME
        assert len(source) == VOLUME

    def test_ensure_dataset_materializes(self):
        source = GeneratorSource(_fitted("random-text"), VOLUME)
        dataset = ensure_dataset(source)
        assert isinstance(dataset, DataSet)
        assert dataset.num_records == VOLUME
        # Identity for an already-materialized data set.
        assert ensure_dataset(dataset) is dataset

    def test_rejects_bad_arguments(self):
        generator = _fitted("random-text")
        with pytest.raises(GenerationError):
            GeneratorSource(generator, -1)
        with pytest.raises(GenerationError):
            GeneratorSource(generator, 10, chunk_size=0)
        with pytest.raises(GenerationError):
            GeneratorSource(generator, 10, num_partitions=0)

    def test_unfitted_generator_rejected_at_construction(self):
        with pytest.raises(GenerationError):
            GeneratorSource(registry.generators.create("lda-text"), 10)


class TestStreamingTraceCounters:
    def test_batches_and_peak_bytes_recorded(self):
        tracer = Tracer()
        generator = _fitted("random-text")
        with tracer.activate():
            with tracer.span("generation") as span:
                batches = list(generator.iter_batches(VOLUME, 7))
        expected_peak = max(batch.estimated_bytes() for batch in batches)
        assert span.counters["batches"] == len(batches)
        assert span.counters["peak_batch_bytes"] == expected_peak
