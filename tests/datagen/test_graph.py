"""Tests for graph generators and degree-distribution helpers."""

from __future__ import annotations

import pytest

from repro.core.errors import GenerationError
from repro.datagen.base import DataType, as_dataset
from repro.datagen.graph import (
    ErdosRenyiGenerator,
    PreferentialAttachmentGenerator,
    RmatGraphGenerator,
    average_degree,
    degree_counts,
    degree_distribution,
    log_binned_degree_distribution,
)


class TestDegreeHelpers:
    EDGES = [(0, 1), (0, 2), (0, 3), (1, 2)]

    def test_degree_counts(self):
        degrees = degree_counts(self.EDGES)
        assert degrees[0] == 3
        assert degrees[3] == 1

    def test_degree_distribution_sums_to_one(self):
        distribution = degree_distribution(self.EDGES)
        assert abs(sum(distribution.values()) - 1.0) < 1e-9

    def test_degree_distribution_empty(self):
        assert degree_distribution([]) == {}

    def test_average_degree(self):
        # 4 edges, 4 vertices → average degree 2.
        assert average_degree(self.EDGES) == pytest.approx(2.0)

    def test_average_degree_empty(self):
        assert average_degree([]) == 0.0

    def test_log_binned_distribution_normalised(self, social_graph):
        binned = log_binned_degree_distribution(social_graph.records)
        assert abs(binned.sum() - 1.0) < 1e-9


class TestRmatGenerator:
    def test_parameter_validation(self):
        with pytest.raises(GenerationError):
            RmatGraphGenerator(a=0.9, b=0.3, c=0.3)  # d < 0
        with pytest.raises(GenerationError):
            RmatGraphGenerator(edges_per_vertex=0)

    def test_edge_count_scales_with_volume(self):
        generator = RmatGraphGenerator(edges_per_vertex=3.0, seed=1)
        small = generator.generate(64)
        large = generator.generate(256)
        assert len(large.records) == pytest.approx(4 * len(small.records), rel=0.05)

    def test_vertices_within_bounds(self):
        generator = RmatGraphGenerator(seed=2)
        for src, dst in generator.generate(128).records:
            assert 0 <= src < 128
            assert 0 <= dst < 128

    def test_skew_parameter_concentrates_edges(self):
        skewed = RmatGraphGenerator(a=0.85, b=0.05, c=0.05, seed=3).generate(256)
        flat = RmatGraphGenerator(a=0.25, b=0.25, c=0.25, seed=3).generate(256)
        skewed_max = max(degree_counts(skewed.records).values())
        flat_max = max(degree_counts(flat.records).values())
        assert skewed_max > flat_max

    def test_fit_learns_average_degree(self, social_graph):
        generator = RmatGraphGenerator(seed=4).fit(social_graph)
        expected = average_degree(social_graph.records) / 2.0
        assert generator.edges_per_vertex == pytest.approx(expected)

    def test_fit_on_empty_graph_rejected(self):
        empty = as_dataset([], DataType.GRAPH)
        with pytest.raises(GenerationError):
            RmatGraphGenerator().fit(empty)

    def test_fitted_rmat_beats_erdos_renyi_on_veracity(self, social_graph):
        """The E9 ablation shape: veracity-aware beats veracity-unaware."""
        from repro.datagen.veracity import graph_veracity

        rmat = RmatGraphGenerator(seed=5).fit(social_graph)
        erdos = ErdosRenyiGenerator(
            edges_per_vertex=rmat.edges_per_vertex, seed=5
        )
        rmat_score = graph_veracity(
            social_graph.records, rmat.generate(256).records
        ).score
        erdos_score = graph_veracity(
            social_graph.records, erdos.generate(256).records
        ).score
        assert rmat_score < erdos_score

    def test_deterministic(self):
        a = RmatGraphGenerator(seed=6).generate(64).records
        b = RmatGraphGenerator(seed=6).generate(64).records
        assert a == b


class TestPreferentialAttachment:
    def test_heavy_tail(self):
        generator = PreferentialAttachmentGenerator(edges_per_vertex=2, seed=1)
        degrees = degree_counts(generator.generate(300).records)
        maximum = max(degrees.values())
        mean = sum(degrees.values()) / len(degrees)
        assert maximum > 4 * mean  # hubs exist

    def test_fit_learns_attachment_count(self, social_graph):
        generator = PreferentialAttachmentGenerator(seed=2).fit(social_graph)
        assert generator.edges_per_vertex >= 1

    def test_partitions_cover_full_graph(self):
        generator = PreferentialAttachmentGenerator(edges_per_vertex=2, seed=3)
        whole = generator.generate(100)
        parts = generator.generate_parallel(100, 4)
        assert sorted(parts.records) == sorted(whole.records)

    def test_tiny_volume(self):
        generator = PreferentialAttachmentGenerator(edges_per_vertex=3, seed=4)
        assert generator.generate(1).records == []

    def test_invalid_parameters(self):
        with pytest.raises(GenerationError):
            PreferentialAttachmentGenerator(edges_per_vertex=0)


class TestErdosRenyi:
    def test_edge_count(self):
        dataset = ErdosRenyiGenerator(edges_per_vertex=2.0, seed=1).generate(100)
        assert len(dataset.records) == 200

    def test_no_hubs(self):
        degrees = degree_counts(
            ErdosRenyiGenerator(edges_per_vertex=3.0, seed=2).generate(500).records
        )
        maximum = max(degrees.values())
        mean = sum(degrees.values()) / len(degrees)
        assert maximum < 4 * mean  # no heavy tail

    def test_invalid_parameters(self):
        with pytest.raises(GenerationError):
            ErdosRenyiGenerator(edges_per_vertex=-1.0)
