"""Tests for the scale-down sampling tools."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.errors import GenerationError
from repro.datagen.base import DataType, as_dataset
from repro.datagen.graph import average_degree
from repro.datagen.sampling import (
    forest_fire_sample,
    random_edge_sample,
    random_node_sample,
    reservoir_sample,
    scale_down,
    stratified_sample,
)


class TestReservoirSample:
    def test_sample_size_respected(self):
        sample = reservoir_sample(range(1000), 50, seed=1)
        assert len(sample) == 50

    def test_small_input_returned_whole(self):
        assert sorted(reservoir_sample([1, 2, 3], 10, seed=1)) == [1, 2, 3]

    def test_items_come_from_input(self):
        sample = reservoir_sample(range(100), 20, seed=2)
        assert all(0 <= item < 100 for item in sample)

    def test_deterministic(self):
        assert reservoir_sample(range(100), 10, seed=3) == reservoir_sample(
            range(100), 10, seed=3
        )

    def test_roughly_uniform(self):
        hits = Counter()
        for seed in range(300):
            for item in reservoir_sample(range(10), 3, seed=seed):
                hits[item] += 1
        # Every item selected at least once over many trials.
        assert len(hits) == 10

    def test_negative_size_rejected(self):
        with pytest.raises(GenerationError):
            reservoir_sample([1], -1)

    def test_works_on_iterators(self):
        sample = reservoir_sample(iter(range(100)), 5, seed=4)
        assert len(sample) == 5


class TestStratifiedSample:
    ITEMS = [("a", i) for i in range(90)] + [("b", i) for i in range(10)]

    def test_preserves_group_proportions(self):
        sample = stratified_sample(self.ITEMS, key=lambda t: t[0], fraction=0.2, seed=1)
        counts = Counter(item[0] for item in sample)
        assert counts["a"] == 18
        assert counts["b"] == 2

    def test_rare_stratum_survives(self):
        items = self.ITEMS + [("rare", 0)]
        sample = stratified_sample(items, key=lambda t: t[0], fraction=0.01, seed=2)
        assert any(item[0] == "rare" for item in sample)

    def test_fraction_validation(self):
        with pytest.raises(GenerationError):
            stratified_sample([1], key=lambda x: x, fraction=0.0)
        with pytest.raises(GenerationError):
            stratified_sample([1], key=lambda x: x, fraction=1.5)


class TestGraphSampling:
    def test_random_node_keeps_induced_edges(self, social_graph):
        sample = random_node_sample(social_graph.records, 0.5, seed=1)
        kept_vertices = {v for edge in sample for v in edge}
        # Every sampled edge has both ends in the kept set, by construction.
        assert all(
            src in kept_vertices and dst in kept_vertices for src, dst in sample
        )
        assert len(sample) < len(social_graph.records)

    def test_random_edge_fraction(self, social_graph):
        sample = random_edge_sample(social_graph.records, 0.25, seed=2)
        assert len(sample) == pytest.approx(
            0.25 * len(social_graph.records), abs=1
        )

    def test_random_edge_subset(self, social_graph):
        sample = random_edge_sample(social_graph.records, 0.3, seed=3)
        assert set(sample) <= set(social_graph.records)

    def test_forest_fire_preserves_degree_better_than_edge_sampling(
        self, social_graph
    ):
        """The veracity rationale for forest fire: degrees survive."""
        real = average_degree(social_graph.records)
        fire = average_degree(
            forest_fire_sample(social_graph.records, 0.5, seed=4)
        )
        edge = average_degree(
            random_edge_sample(social_graph.records, 0.5, seed=4)
        )
        assert abs(fire - real) < abs(edge - real)

    def test_forest_fire_validation(self):
        with pytest.raises(GenerationError):
            forest_fire_sample([(0, 1)], 0.5, forward_probability=1.0)
        with pytest.raises(GenerationError):
            forest_fire_sample([(0, 1)], 0.0)

    def test_empty_graph(self):
        assert random_node_sample([], 0.5) == []
        assert random_edge_sample([], 0.5) == []
        assert forest_fire_sample([], 0.5) == []


class TestScaleDown:
    def test_text_dataset_scales(self, text_corpus):
        scaled = scale_down(text_corpus, 0.25, seed=1)
        assert scaled.num_records == pytest.approx(
            0.25 * text_corpus.num_records, abs=1
        )
        assert scaled.metadata["scaled_from"] == text_corpus.num_records

    def test_graph_dataset_uses_forest_fire(self, social_graph):
        scaled = scale_down(social_graph, 0.4, seed=2)
        assert scaled.data_type is DataType.GRAPH
        assert 0 < len(scaled.records) < len(social_graph.records)

    def test_name_records_fraction(self):
        dataset = as_dataset(list(range(50)), DataType.TABLE, name="tbl")
        scaled = scale_down(dataset, 0.1, seed=3)
        assert "scaled" in scaled.name
