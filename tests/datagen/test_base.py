"""Tests for the data set abstraction and generator base class."""

from __future__ import annotations

import pytest

from repro.core.errors import GenerationError, ModelNotFittedError
from repro.datagen.base import (
    DataSet,
    DataType,
    StructureClass,
    as_dataset,
    mix_seed,
)
from repro.datagen.text import RandomTextGenerator, UnigramTextGenerator


class TestDataType:
    def test_every_type_has_a_structure_class(self):
        for data_type in DataType:
            assert isinstance(data_type.structure, StructureClass)

    def test_table_is_structured(self):
        assert DataType.TABLE.structure is StructureClass.STRUCTURED

    def test_text_is_unstructured(self):
        assert DataType.TEXT.structure is StructureClass.UNSTRUCTURED

    def test_weblog_is_semi_structured(self):
        assert DataType.WEB_LOG.structure is StructureClass.SEMI_STRUCTURED

    def test_labels_are_unique(self):
        labels = [data_type.label for data_type in DataType]
        assert len(labels) == len(set(labels))


class TestDataSet:
    def test_len_and_num_records_agree(self):
        dataset = as_dataset(["a", "b", "c"], DataType.TEXT)
        assert len(dataset) == dataset.num_records == 3

    def test_iteration_yields_records(self):
        dataset = as_dataset(["x", "y"], DataType.TEXT)
        assert list(dataset) == ["x", "y"]

    def test_head_limits_output(self):
        dataset = as_dataset(list(range(100)), DataType.TABLE)
        assert dataset.head(3) == [0, 1, 2]

    def test_estimated_bytes_counts_strings(self):
        dataset = as_dataset(["abcd", "ef"], DataType.TEXT)
        assert dataset.estimated_bytes() == 6

    def test_estimated_bytes_counts_numbers_as_eight(self):
        dataset = as_dataset([(1, 2.5)], DataType.TABLE)
        assert dataset.estimated_bytes() == 16

    def test_estimated_bytes_handles_dicts(self):
        dataset = as_dataset([{"k": "vv"}], DataType.WEB_LOG)
        assert dataset.estimated_bytes() == 3

    def test_structure_follows_data_type(self):
        dataset = as_dataset([(1,)], DataType.TABLE)
        assert dataset.structure is StructureClass.STRUCTURED

    def test_as_dataset_copies_metadata(self):
        dataset = as_dataset([1], DataType.TABLE, name="t", schema=("a",))
        assert dataset.metadata["schema"] == ("a",)
        assert dataset.name == "t"


class TestMixSeed:
    def test_deterministic(self):
        assert mix_seed(42, 1, 2) == mix_seed(42, 1, 2)

    def test_streams_are_independent(self):
        assert mix_seed(42, 1) != mix_seed(42, 2)

    def test_base_seed_matters(self):
        assert mix_seed(1, 0) != mix_seed(2, 0)


class TestGeneratorBase:
    def test_negative_volume_rejected(self):
        with pytest.raises(GenerationError):
            RandomTextGenerator(seed=1).generate(-1)

    def test_zero_volume_gives_empty_dataset(self):
        assert RandomTextGenerator(seed=1).generate(0).num_records == 0

    def test_generate_is_deterministic_per_seed(self):
        a = RandomTextGenerator(seed=5).generate(10)
        b = RandomTextGenerator(seed=5).generate(10)
        assert a.records == b.records

    def test_different_seeds_differ(self):
        a = RandomTextGenerator(seed=5).generate(10)
        b = RandomTextGenerator(seed=6).generate(10)
        assert a.records != b.records

    def test_parallel_generation_totals_volume(self):
        dataset = RandomTextGenerator(seed=1).generate_parallel(103, 4)
        assert dataset.num_records == 103

    def test_parallel_partitions_are_order_independent(self):
        generator = RandomTextGenerator(seed=9)
        part2_first = generator.generate_partition(100, 2, 4)
        # Generating another partition in between must not change it.
        generator.generate_partition(100, 0, 4)
        part2_again = generator.generate_partition(100, 2, 4)
        assert part2_first == part2_again

    def test_partition_volume_is_balanced(self):
        generator = RandomTextGenerator(seed=1)
        sizes = [generator.partition_volume(10, p, 3) for p in range(3)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_partition_count_rejected(self):
        with pytest.raises(GenerationError):
            RandomTextGenerator(seed=1).generate_parallel(10, 0)

    def test_unfitted_veracity_generator_refuses(self):
        with pytest.raises(ModelNotFittedError):
            UnigramTextGenerator(seed=1).generate(5)

    def test_metadata_records_generator_and_seed(self):
        dataset = RandomTextGenerator(seed=3).generate(2)
        assert dataset.metadata["generator"] == "RandomTextGenerator"
        assert dataset.metadata["seed"] == 3
