"""Tests for the veracity metrics (Section 5.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import MetricError
from repro.datagen.stream import PoissonArrivals, StreamGenerator
from repro.datagen.text import RandomTextGenerator
from repro.datagen.veracity import (
    VeracityReport,
    align_distributions,
    chi_square_statistic,
    graph_veracity,
    jensen_shannon_divergence,
    kl_divergence,
    model_veracity,
    stream_veracity,
    table_veracity,
    text_veracity,
    total_variation,
)


class TestDivergencePrimitives:
    def test_kl_identical_is_zero(self):
        p = {"a": 0.5, "b": 0.5}
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-6)

    def test_kl_is_nonnegative(self):
        p = {"a": 0.9, "b": 0.1}
        q = {"a": 0.1, "b": 0.9}
        assert kl_divergence(p, q) > 0

    def test_kl_is_asymmetric(self):
        p = {"a": 0.9, "b": 0.1}
        q = {"a": 0.5, "b": 0.5}
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_js_is_symmetric(self):
        p = {"a": 0.9, "b": 0.1}
        q = {"a": 0.2, "b": 0.8}
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p)
        )

    def test_js_bounded_by_ln2(self):
        p = {"a": 1.0}
        q = {"b": 1.0}
        js = jensen_shannon_divergence(p, q)
        assert 0 <= js <= math.log(2) + 1e-9

    def test_total_variation_bounds(self):
        p = {"a": 1.0}
        q = {"b": 1.0}
        assert total_variation(p, q) == pytest.approx(1.0, abs=1e-6)
        assert total_variation(p, p) == pytest.approx(0.0, abs=1e-6)

    def test_chi_square_zero_for_identical(self):
        p = {"a": 0.4, "b": 0.6}
        assert chi_square_statistic(p, p) == pytest.approx(0.0, abs=1e-6)

    def test_vectors_accepted(self):
        assert kl_divergence([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0, abs=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MetricError):
            kl_divergence([0.5, 0.5], [1.0])

    def test_mixed_mapping_and_vector_rejected(self):
        with pytest.raises(MetricError):
            kl_divergence({"a": 1.0}, [1.0])

    def test_align_empty_rejected(self):
        with pytest.raises(MetricError):
            align_distributions({}, {})

    def test_align_covers_union_support(self):
        p_vector, q_vector = align_distributions({"a": 1.0}, {"b": 1.0})
        assert len(p_vector) == len(q_vector) == 2


class TestTextVeracity:
    def test_same_corpus_is_faithful(self, text_corpus):
        report = text_veracity(text_corpus.records, text_corpus.records)
        assert report.score == pytest.approx(0.0, abs=1e-6)
        assert report.is_faithful

    def test_lda_beats_random(self, text_corpus, fitted_lda):
        lda_report = text_veracity(
            text_corpus.records, fitted_lda.generate(60).records
        )
        random_report = text_veracity(
            text_corpus.records,
            RandomTextGenerator(seed=1).generate(60).records,
        )
        assert lda_report.score < random_report.score
        assert lda_report.is_faithful
        assert not random_report.is_faithful

    def test_empty_corpus_rejected(self):
        with pytest.raises(MetricError):
            text_veracity([""], ["words here"])

    def test_report_carries_metrics(self, text_corpus, fitted_lda):
        report = text_veracity(
            text_corpus.records, fitted_lda.generate(20).records
        )
        for key in ("kl_real_vs_synthetic", "js_divergence",
                    "total_variation", "vocabulary_jaccard"):
            assert key in report.metrics


class TestTopicStructureVeracity:
    def test_lda_beats_unigram_on_topic_structure(self, text_corpus, fitted_lda):
        """The paper's full worked example: word AND topic distributions."""
        from repro.datagen.text import UnigramTextGenerator
        from repro.datagen.veracity import topic_structure_veracity

        unigram = UnigramTextGenerator(seed=3).fit(text_corpus)
        lda_report = topic_structure_veracity(
            text_corpus.records, fitted_lda.generate(60).records,
            fitted_lda.model,
        )
        unigram_report = topic_structure_veracity(
            text_corpus.records, unigram.generate(60).records,
            fitted_lda.model,
        )
        assert lda_report.score < unigram_report.score
        assert (
            lda_report.metrics["mean_share_synthetic"]
            > unigram_report.metrics["mean_share_synthetic"]
        )

    def test_real_corpus_is_topically_concentrated(self, text_corpus, fitted_lda):
        from repro.datagen.veracity import topic_structure_veracity

        report = topic_structure_veracity(
            text_corpus.records, text_corpus.records, fitted_lda.model
        )
        assert report.score == pytest.approx(0.0, abs=1e-6)
        assert report.metrics["mean_share_real"] > 0.6

    def test_empty_corpus_rejected(self, fitted_lda):
        from repro.datagen.veracity import topic_structure_veracity

        with pytest.raises(MetricError):
            topic_structure_veracity([], ["words"], fitted_lda.model)

    def test_mixture_inference_sums_to_one(self, fitted_lda):
        mixture = fitted_lda.model.infer_document_mixture(
            ["market", "stock", "price"]
        )
        assert mixture.sum() == pytest.approx(1.0)
        assert len(mixture) == fitted_lda.model.num_topics

    def test_unknown_words_give_uniform_mixture(self, fitted_lda):
        mixture = fitted_lda.model.infer_document_mixture(["qqqqq"])
        assert mixture.max() == pytest.approx(1.0 / fitted_lda.model.num_topics)


class TestGraphVeracity:
    def test_same_graph_scores_zero(self, social_graph):
        report = graph_veracity(social_graph.records, social_graph.records)
        assert report.score == pytest.approx(0.0, abs=1e-6)

    def test_empty_graph_rejected(self, social_graph):
        with pytest.raises(MetricError):
            graph_veracity([], social_graph.records)

    def test_reports_average_degrees(self, social_graph):
        report = graph_veracity(social_graph.records, social_graph.records)
        assert report.metrics["avg_degree_real"] == pytest.approx(
            report.metrics["avg_degree_synthetic"]
        )


class TestTableVeracity:
    def test_same_table_scores_zero(self, retail_tables):
        rows = retail_tables["orders"].records
        report = table_veracity(rows, rows)
        assert report.score == pytest.approx(0.0, abs=1e-4)

    def test_shuffled_column_raises_score(self, retail_tables):
        rows = retail_tables["orders"].records
        # Replace the skewed customer column with a uniform one.
        rng = np.random.default_rng(1)
        broken = [
            (row[0], int(rng.integers(0, 80)), row[2], row[3], row[4])
            for row in rows
        ]
        assert table_veracity(rows, broken).score > table_veracity(rows, rows).score

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            table_veracity([], [(1,)])


class TestStreamVeracity:
    def test_same_process_is_faithful(self):
        a = StreamGenerator(arrivals=PoissonArrivals(100.0), seed=1).generate(1500)
        b = StreamGenerator(arrivals=PoissonArrivals(100.0), seed=2).generate(1500)
        report = stream_veracity(
            [event.timestamp for event in a.records],
            [event.timestamp for event in b.records],
        )
        assert report.is_faithful

    def test_different_rates_diverge(self):
        fast = StreamGenerator(arrivals=PoissonArrivals(1000.0), seed=1).generate(800)
        slow = StreamGenerator(arrivals=PoissonArrivals(10.0), seed=2).generate(800)
        report = stream_veracity(
            [event.timestamp for event in fast.records],
            [event.timestamp for event in slow.records],
        )
        assert not report.is_faithful

    def test_requires_two_events(self):
        with pytest.raises(MetricError):
            stream_veracity([1.0], [1.0, 2.0])


class TestModelVeracity:
    def test_model_metric_type_one(self):
        """Section 5.1 metric (1): raw data vs constructed model."""
        real = {"a": 0.6, "b": 0.4}
        model = {"a": 0.58, "b": 0.42}
        report = model_veracity(real, model)
        assert report.is_faithful
        assert report.metrics["kl_divergence"] >= 0

    def test_threshold_constant_is_half_ln2(self):
        assert VeracityReport.FAITHFUL_THRESHOLD == pytest.approx(
            0.5 * math.log(2)
        )
