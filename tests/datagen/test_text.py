"""Tests for LDA-based and baseline text generation."""

from __future__ import annotations

import pytest

from repro.core.errors import GenerationError
from repro.datagen.base import DataType, as_dataset
from repro.datagen.text import (
    LdaModel,
    LdaTextGenerator,
    RandomTextGenerator,
    UnigramTextGenerator,
    Vocabulary,
    tokenize,
    word_distribution,
)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert tokenize("a, b. c!") == ["a", "b", "c"]

    def test_keeps_digits_and_apostrophes(self):
        assert tokenize("it's 42") == ["it's", "42"]

    def test_empty_string(self):
        assert tokenize("") == []


class TestVocabulary:
    def test_roundtrip(self):
        vocabulary = Vocabulary(["a", "b"])
        assert vocabulary.word_of(vocabulary.id_of("b")) == "b"

    def test_add_is_idempotent(self):
        vocabulary = Vocabulary()
        first = vocabulary.add("x")
        second = vocabulary.add("x")
        assert first == second
        assert len(vocabulary) == 1

    def test_contains(self):
        vocabulary = Vocabulary(["w"])
        assert "w" in vocabulary
        assert "z" not in vocabulary


class TestLdaModel:
    def test_fit_on_empty_corpus_rejected(self):
        with pytest.raises(GenerationError):
            LdaModel().fit([])

    def test_fit_learns_topic_word_matrix(self, text_corpus):
        documents = [tokenize(doc) for doc in text_corpus.records[:40]]
        model = LdaModel(num_topics=4, iterations=5, seed=1).fit(documents)
        assert model.phi is not None
        assert model.phi.shape[0] == 4
        # Each topic's word distribution sums to one.
        for row in model.phi:
            assert abs(row.sum() - 1.0) < 1e-9

    def test_sample_document_uses_learned_vocabulary(self, fitted_lda):
        import numpy as np

        model = fitted_lda.model
        words = model.sample_document(np.random.default_rng(0), length=20)
        assert len(words) == 20
        assert all(word in model.vocabulary for word in words)

    def test_topics_separate_topical_words(self, fitted_lda):
        """Each embedded topic's vocabulary should dominate some topic."""
        from repro.datagen.corpus import TOPIC_VOCABULARIES

        model = fitted_lda.model
        dominated = set()
        for topic in range(model.num_topics):
            top = set(model.top_words(topic, 8))
            for name, vocabulary in TOPIC_VOCABULARIES.items():
                if len(top & set(vocabulary)) >= 4:
                    dominated.add(name)
        assert len(dominated) >= 2  # at least half the topics recovered

    def test_invalid_topic_count_rejected(self):
        with pytest.raises(ValueError):
            LdaModel(num_topics=0)


class TestLdaTextGenerator:
    def test_generates_requested_volume(self, fitted_lda):
        assert fitted_lda.generate(12).num_records == 12

    def test_output_is_text_dataset(self, fitted_lda):
        assert fitted_lda.generate(3).data_type is DataType.TEXT

    def test_synthetic_words_come_from_real_vocabulary(self, fitted_lda, text_corpus):
        real_vocabulary = set()
        for document in text_corpus.records:
            real_vocabulary.update(tokenize(document))
        synthetic = fitted_lda.generate(10)
        for document in synthetic.records:
            assert set(tokenize(document)) <= real_vocabulary

    def test_deterministic(self, text_corpus):
        runs = []
        for _ in range(2):
            generator = LdaTextGenerator(iterations=3, seed=4).fit(text_corpus)
            runs.append(generator.generate(5).records)
        assert runs[0] == runs[1]


class TestUnigramTextGenerator:
    def test_learns_word_frequencies(self, text_corpus):
        generator = UnigramTextGenerator(seed=2).fit(text_corpus)
        synthetic = generator.generate(30)
        real = word_distribution(text_corpus.records)
        fake = word_distribution(synthetic.records)
        # The most common real words should appear in synthetic output.
        top_real = sorted(real, key=real.get, reverse=True)[:5]
        assert sum(1 for word in top_real if word in fake) >= 4

    def test_empty_corpus_rejected(self):
        empty = as_dataset([""], DataType.TEXT)
        with pytest.raises(GenerationError):
            UnigramTextGenerator().fit(empty)

    def test_fixed_document_length(self, text_corpus):
        generator = UnigramTextGenerator(seed=1, document_length=7)
        generator.fit(text_corpus)
        for document in generator.generate(5).records:
            assert len(document.split()) == 7


class TestRandomTextGenerator:
    def test_uses_only_supplied_words(self):
        generator = RandomTextGenerator(words=["aa", "bb"], seed=1)
        for document in generator.generate(5).records:
            assert set(document.split()) <= {"aa", "bb"}

    def test_document_length_respected(self):
        generator = RandomTextGenerator(document_length=13, seed=1)
        assert all(
            len(doc.split()) == 13 for doc in generator.generate(4).records
        )

    def test_empty_word_list_rejected(self):
        with pytest.raises(GenerationError):
            RandomTextGenerator(words=[])

    def test_non_positive_length_rejected(self):
        with pytest.raises(GenerationError):
            RandomTextGenerator(document_length=0)


class TestWordDistribution:
    def test_sums_to_one(self, text_corpus):
        distribution = word_distribution(text_corpus.records)
        assert abs(sum(distribution.values()) - 1.0) < 1e-9

    def test_empty_input(self):
        assert word_distribution([]) == {}

    def test_counts_are_proportional(self):
        distribution = word_distribution(["a a b"])
        assert distribution["a"] == pytest.approx(2 / 3)
