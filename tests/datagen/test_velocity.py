"""Tests for velocity control (parallel generation, updates, pacing)."""

from __future__ import annotations

import pytest

from repro.core.errors import GenerationError
from repro.datagen.stream import EventKind, PoissonArrivals, StreamGenerator
from repro.datagen.text import RandomTextGenerator
from repro.datagen.velocity import (
    PacedStream,
    ParallelGenerationController,
    UpdateScheduler,
    VelocityReport,
)


class TestParallelGenerationController:
    def test_output_volume(self):
        controller = ParallelGenerationController(
            RandomTextGenerator(seed=1), num_partitions=4
        )
        dataset, report = controller.run(101)
        assert dataset.num_records == 101
        assert report.volume == 101

    def test_same_records_as_generate_parallel(self):
        generator = RandomTextGenerator(seed=2)
        controller = ParallelGenerationController(generator, num_partitions=3)
        dataset, _ = controller.run(30)
        assert dataset.records == generator.generate_parallel(30, 3).records

    def test_simulated_speedup_grows_with_partitions(self):
        """The E8 shape: more generators → higher simulated rate."""
        speedups = []
        for partitions in (1, 4):
            controller = ParallelGenerationController(
                RandomTextGenerator(document_length=200, seed=3),
                num_partitions=partitions,
            )
            _, report = controller.run(400)
            speedups.append(report.speedup)
        assert speedups[1] > speedups[0] * 1.5

    def test_partition_seconds_recorded(self):
        controller = ParallelGenerationController(
            RandomTextGenerator(seed=4), num_partitions=5
        )
        _, report = controller.run(50)
        assert len(report.partition_seconds) == 5
        assert report.serial_seconds >= report.simulated_parallel_seconds

    def test_invalid_partitions(self):
        with pytest.raises(GenerationError):
            ParallelGenerationController(RandomTextGenerator(), num_partitions=0)

    def test_threaded_mode_matches_serial_output(self):
        generator = RandomTextGenerator(seed=5)
        serial, _ = ParallelGenerationController(generator, 4).run(40)
        threaded, _ = ParallelGenerationController(
            generator, 4, use_threads=True
        ).run(40)
        assert serial.records == threaded.records

    def test_report_rates(self):
        report = VelocityReport(
            volume=100, num_partitions=2,
            partition_seconds=[1.0, 1.0], wall_seconds=2.0,
        )
        assert report.wall_rate == pytest.approx(50.0)
        assert report.simulated_rate == pytest.approx(100.0)
        assert report.speedup == pytest.approx(2.0)


class TestUpdateScheduler:
    def test_plan_hits_target_frequency(self):
        scheduler = UpdateScheduler(updates_per_second=100.0, seed=1)
        events = scheduler.plan(duration_seconds=5.0, key_space=50)
        assert len(events) == 500
        assert all(0 <= event.timestamp <= 5.0 for event in events)

    def test_plan_is_time_ordered(self):
        events = UpdateScheduler(50.0, seed=2).plan(2.0, key_space=10)
        timestamps = [event.timestamp for event in events]
        assert timestamps == sorted(timestamps)

    def test_mix_fractions(self):
        scheduler = UpdateScheduler(
            1000.0, update_fraction=0.6, delete_fraction=0.2, seed=3
        )
        events = scheduler.plan(2.0, key_space=100)
        kinds = [event.kind for event in events]
        assert kinds.count(EventKind.UPDATE) / len(kinds) == pytest.approx(
            0.6, abs=0.05
        )

    def test_apply_mutates_state(self):
        scheduler = UpdateScheduler(
            100.0, update_fraction=0.0, delete_fraction=0.0, seed=4
        )
        events = scheduler.plan(1.0, key_space=20)
        state: dict[int, float] = {}
        counts = UpdateScheduler.apply(state, events)
        assert counts["insert"] == len(events)
        assert len(state) <= 20

    def test_apply_delete_removes_keys(self):
        from repro.datagen.stream import StreamEvent

        state = {1: 0.5}
        events = [StreamEvent(0.0, 1, 0.0, EventKind.DELETE)]
        counts = UpdateScheduler.apply(state, events)
        assert counts["delete"] == 1
        assert 1 not in state

    def test_validation(self):
        with pytest.raises(GenerationError):
            UpdateScheduler(0.0)
        with pytest.raises(GenerationError):
            UpdateScheduler(1.0, update_fraction=0.9, delete_fraction=0.3)
        with pytest.raises(GenerationError):
            UpdateScheduler(1.0).plan(0.0, key_space=1)
        with pytest.raises(GenerationError):
            UpdateScheduler(1.0).plan(1.0, key_space=0)


class TestPacedStream:
    def _events(self, rate: float, count: int):
        generator = StreamGenerator(arrivals=PoissonArrivals(rate), seed=5)
        return generator.generate(count).records

    def test_pacing_caps_delivery_rate(self):
        events = self._events(rate=10000.0, count=800)
        paced = PacedStream(events, target_rate=100.0)
        assert paced.delivered_rate() <= 101.0

    def test_slow_stream_passes_through(self):
        events = self._events(rate=50.0, count=400)
        paced = PacedStream(events, target_rate=10000.0)
        # Delivery should track the (slow) source, not the high cap.
        assert paced.delivered_rate() == pytest.approx(50.0, rel=0.15)

    def test_delivery_never_before_event_time(self):
        events = self._events(rate=100.0, count=100)
        for delivery, event in PacedStream(events, target_rate=200.0):
            assert delivery >= event.timestamp

    def test_real_time_mode_sleeps(self):
        sleeps: list[float] = []
        events = self._events(rate=10000.0, count=10)
        paced = PacedStream(
            events, target_rate=1000.0, real_time=True, sleep=sleeps.append
        )
        list(paced)
        assert sleeps  # pacing had to wait at least once

    def test_invalid_rate(self):
        with pytest.raises(GenerationError):
            PacedStream([], target_rate=0.0)

    def test_rate_requires_two_events(self):
        events = self._events(rate=100.0, count=1)
        with pytest.raises(GenerationError):
            PacedStream(events, target_rate=10.0).delivered_rate()


class TestVelocityBugfixes:
    """Regression tests for the three velocity.py failure modes."""

    def _events(self, rate: float, count: int):
        generator = StreamGenerator(arrivals=PoissonArrivals(rate), seed=6)
        return generator.generate(count).records

    # -- PacedStream.delivered_rate slept through real-time replays -----

    def test_delivered_rate_never_sleeps(self):
        """Asking a real_time stream for its rate must not replay it.

        delivered_rate() used to iterate the stream itself, so a
        real_time=True stream slept through the entire schedule just to
        report a number the virtual timeline already knew.
        """
        sleeps: list[float] = []
        events = self._events(rate=10000.0, count=50)
        paced = PacedStream(
            events, target_rate=100.0, real_time=True, sleep=sleeps.append
        )
        rate = paced.delivered_rate()
        assert sleeps == []
        assert rate == pytest.approx(100.0, rel=0.05)

    def test_schedule_matches_iteration(self):
        events = self._events(rate=500.0, count=60)
        paced = PacedStream(events, target_rate=200.0)
        assert paced.schedule() == list(paced)

    def test_schedule_never_sleeps(self):
        sleeps: list[float] = []
        paced = PacedStream(
            self._events(rate=10000.0, count=20),
            target_rate=50.0,
            real_time=True,
            sleep=sleeps.append,
        )
        paced.schedule()
        assert sleeps == []

    def test_real_time_sleep_schedule(self):
        """The injected sleep must be called with the schedule's gaps."""
        sleeps: list[float] = []
        events = self._events(rate=10000.0, count=30)
        paced = PacedStream(
            events, target_rate=100.0, real_time=True, sleep=sleeps.append
        )
        deliveries = [delivery for delivery, _ in paced]
        # Total slept time walks the clock to the final delivery.
        assert sum(sleeps) == pytest.approx(deliveries[-1])

    def test_bursty_events_are_spread_to_the_target_rate(self):
        from repro.datagen.stream import StreamEvent

        # An on/off shape: a 5000/s burst, a quiet gap, another burst.
        stamps = [i * 0.0002 for i in range(50)]
        stamps += [1.0 + i * 0.0002 for i in range(50)]
        events = [
            StreamEvent(stamp, key, 0.0, EventKind.INSERT)
            for key, stamp in enumerate(stamps)
        ]
        paced = PacedStream(events, target_rate=100.0)
        pairs = list(paced)
        deliveries = [delivery for delivery, _ in pairs]
        # The pacing invariant: event i is never delivered before
        # i / rate, so no prefix of the replay exceeds the target rate.
        interval = 1.0 / 100.0
        assert all(
            delivery >= index * interval - 1e-9
            for index, delivery in enumerate(deliveries)
        )
        assert deliveries == sorted(deliveries)
        # The cap really engaged: some burst event had to wait.
        assert any(
            delivery > event.timestamp + 1e-9 for delivery, event in pairs
        )

    # -- UpdateScheduler replayed the same window forever ---------------

    def test_successive_windows_differ(self):
        """Windows must not replay the identical update sequence.

        plan() used to seed from (seed, key_space) alone, so every
        window of a long-running update stream hit the same keys in the
        same order with the same values.
        """
        scheduler = UpdateScheduler(200.0, seed=11)
        first = scheduler.plan(1.0, key_space=1000, window=0)
        second = scheduler.plan(1.0, key_space=1000, window=1)
        assert [e.key for e in first] != [e.key for e in second]
        assert [e.value for e in first] != [e.value for e in second]

    def test_windows_are_individually_deterministic(self):
        scheduler = UpdateScheduler(100.0, seed=12)
        for window in (0, 3):
            again = UpdateScheduler(100.0, seed=12)
            assert scheduler.plan(2.0, 50, window=window) == again.plan(
                2.0, 50, window=window
            )

    def test_start_offset_shifts_timestamps(self):
        scheduler = UpdateScheduler(100.0, seed=13)
        base = scheduler.plan(2.0, 50, window=4)
        shifted = scheduler.plan(2.0, 50, window=4, start_offset=8.0)
        assert all(
            s.timestamp == pytest.approx(b.timestamp + 8.0)
            and s.key == b.key
            and s.value == b.value
            and s.kind is b.kind
            for b, s in zip(base, shifted)
        )
        assert all(8.0 <= e.timestamp <= 10.0 for e in shifted)

    def test_consecutive_windows_form_a_timeline(self):
        scheduler = UpdateScheduler(50.0, seed=14)
        timeline = []
        for window in range(3):
            timeline.extend(
                scheduler.plan(
                    1.0, 20, window=window, start_offset=float(window)
                )
            )
        stamps = [e.timestamp for e in timeline]
        assert stamps == sorted(stamps)
        assert stamps[-1] > 2.0  # the third window really starts later

    def test_negative_window_rejected(self):
        with pytest.raises(GenerationError):
            UpdateScheduler(1.0).plan(1.0, key_space=1, window=-1)

    # -- VelocityReport reported rate 0.0 below timer resolution --------

    def test_zero_wall_clock_is_a_floor_not_zero(self):
        """An instant run must not report a rate of 0.0 (the opposite
        of what happened); it clamps and flags instead."""
        report = VelocityReport(
            volume=100, num_partitions=2,
            partition_seconds=[0.0, 0.0], wall_seconds=0.0,
        )
        assert report.wall_rate > 0.0
        assert report.simulated_rate > 0.0
        assert report.below_timer_resolution

    def test_zero_over_zero_speedup_is_neutral(self):
        report = VelocityReport(
            volume=10, num_partitions=1,
            partition_seconds=[0.0], wall_seconds=0.0,
        )
        assert report.speedup == pytest.approx(1.0)

    def test_measurable_report_is_not_flagged(self):
        report = VelocityReport(
            volume=100, num_partitions=2,
            partition_seconds=[1.0, 1.0], wall_seconds=2.0,
        )
        assert not report.below_timer_resolution
        assert report.wall_rate == pytest.approx(50.0)
        assert report.speedup == pytest.approx(2.0)
