"""Tests for velocity control (parallel generation, updates, pacing)."""

from __future__ import annotations

import pytest

from repro.core.errors import GenerationError
from repro.datagen.stream import EventKind, PoissonArrivals, StreamGenerator
from repro.datagen.text import RandomTextGenerator
from repro.datagen.velocity import (
    PacedStream,
    ParallelGenerationController,
    UpdateScheduler,
    VelocityReport,
)


class TestParallelGenerationController:
    def test_output_volume(self):
        controller = ParallelGenerationController(
            RandomTextGenerator(seed=1), num_partitions=4
        )
        dataset, report = controller.run(101)
        assert dataset.num_records == 101
        assert report.volume == 101

    def test_same_records_as_generate_parallel(self):
        generator = RandomTextGenerator(seed=2)
        controller = ParallelGenerationController(generator, num_partitions=3)
        dataset, _ = controller.run(30)
        assert dataset.records == generator.generate_parallel(30, 3).records

    def test_simulated_speedup_grows_with_partitions(self):
        """The E8 shape: more generators → higher simulated rate."""
        speedups = []
        for partitions in (1, 4):
            controller = ParallelGenerationController(
                RandomTextGenerator(document_length=200, seed=3),
                num_partitions=partitions,
            )
            _, report = controller.run(400)
            speedups.append(report.speedup)
        assert speedups[1] > speedups[0] * 1.5

    def test_partition_seconds_recorded(self):
        controller = ParallelGenerationController(
            RandomTextGenerator(seed=4), num_partitions=5
        )
        _, report = controller.run(50)
        assert len(report.partition_seconds) == 5
        assert report.serial_seconds >= report.simulated_parallel_seconds

    def test_invalid_partitions(self):
        with pytest.raises(GenerationError):
            ParallelGenerationController(RandomTextGenerator(), num_partitions=0)

    def test_threaded_mode_matches_serial_output(self):
        generator = RandomTextGenerator(seed=5)
        serial, _ = ParallelGenerationController(generator, 4).run(40)
        threaded, _ = ParallelGenerationController(
            generator, 4, use_threads=True
        ).run(40)
        assert serial.records == threaded.records

    def test_report_rates(self):
        report = VelocityReport(
            volume=100, num_partitions=2,
            partition_seconds=[1.0, 1.0], wall_seconds=2.0,
        )
        assert report.wall_rate == pytest.approx(50.0)
        assert report.simulated_rate == pytest.approx(100.0)
        assert report.speedup == pytest.approx(2.0)


class TestUpdateScheduler:
    def test_plan_hits_target_frequency(self):
        scheduler = UpdateScheduler(updates_per_second=100.0, seed=1)
        events = scheduler.plan(duration_seconds=5.0, key_space=50)
        assert len(events) == 500
        assert all(0 <= event.timestamp <= 5.0 for event in events)

    def test_plan_is_time_ordered(self):
        events = UpdateScheduler(50.0, seed=2).plan(2.0, key_space=10)
        timestamps = [event.timestamp for event in events]
        assert timestamps == sorted(timestamps)

    def test_mix_fractions(self):
        scheduler = UpdateScheduler(
            1000.0, update_fraction=0.6, delete_fraction=0.2, seed=3
        )
        events = scheduler.plan(2.0, key_space=100)
        kinds = [event.kind for event in events]
        assert kinds.count(EventKind.UPDATE) / len(kinds) == pytest.approx(
            0.6, abs=0.05
        )

    def test_apply_mutates_state(self):
        scheduler = UpdateScheduler(
            100.0, update_fraction=0.0, delete_fraction=0.0, seed=4
        )
        events = scheduler.plan(1.0, key_space=20)
        state: dict[int, float] = {}
        counts = UpdateScheduler.apply(state, events)
        assert counts["insert"] == len(events)
        assert len(state) <= 20

    def test_apply_delete_removes_keys(self):
        from repro.datagen.stream import StreamEvent

        state = {1: 0.5}
        events = [StreamEvent(0.0, 1, 0.0, EventKind.DELETE)]
        counts = UpdateScheduler.apply(state, events)
        assert counts["delete"] == 1
        assert 1 not in state

    def test_validation(self):
        with pytest.raises(GenerationError):
            UpdateScheduler(0.0)
        with pytest.raises(GenerationError):
            UpdateScheduler(1.0, update_fraction=0.9, delete_fraction=0.3)
        with pytest.raises(GenerationError):
            UpdateScheduler(1.0).plan(0.0, key_space=1)
        with pytest.raises(GenerationError):
            UpdateScheduler(1.0).plan(1.0, key_space=0)


class TestPacedStream:
    def _events(self, rate: float, count: int):
        generator = StreamGenerator(arrivals=PoissonArrivals(rate), seed=5)
        return generator.generate(count).records

    def test_pacing_caps_delivery_rate(self):
        events = self._events(rate=10000.0, count=800)
        paced = PacedStream(events, target_rate=100.0)
        assert paced.delivered_rate() <= 101.0

    def test_slow_stream_passes_through(self):
        events = self._events(rate=50.0, count=400)
        paced = PacedStream(events, target_rate=10000.0)
        # Delivery should track the (slow) source, not the high cap.
        assert paced.delivered_rate() == pytest.approx(50.0, rel=0.15)

    def test_delivery_never_before_event_time(self):
        events = self._events(rate=100.0, count=100)
        for delivery, event in PacedStream(events, target_rate=200.0):
            assert delivery >= event.timestamp

    def test_real_time_mode_sleeps(self):
        sleeps: list[float] = []
        events = self._events(rate=10000.0, count=10)
        paced = PacedStream(
            events, target_rate=1000.0, real_time=True, sleep=sleeps.append
        )
        list(paced)
        assert sleeps  # pacing had to wait at least once

    def test_invalid_rate(self):
        with pytest.raises(GenerationError):
            PacedStream([], target_rate=0.0)

    def test_rate_requires_two_events(self):
        events = self._events(rate=100.0, count=1)
        with pytest.raises(GenerationError):
            PacedStream(events, target_rate=10.0).delivered_rate()
