"""Tests for format conversion (Figure 3 step 4, Section 2.3)."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import FormatConversionError
from repro.datagen.base import DataType, as_dataset
from repro.datagen.formats import available_formats, convert


@pytest.fixture()
def table_dataset():
    return as_dataset(
        [(1, "ann", 30), (2, "bob", 25)],
        DataType.TABLE,
        name="people",
        schema=("id", "name", "age"),
    )


@pytest.fixture()
def graph_dataset():
    return as_dataset([(0, 1), (1, 2)], DataType.GRAPH, name="g")


class TestRegistry:
    def test_known_formats_present(self):
        formats = available_formats()
        for name in ("records", "text-lines", "csv", "jsonl", "key-value",
                     "adjacency-list", "edge-list-lines", "common-log"):
            assert name in formats

    def test_unknown_format_rejected(self, table_dataset):
        with pytest.raises(FormatConversionError):
            convert(table_dataset, "parquet")

    def test_converted_data_carries_provenance(self, table_dataset):
        converted = convert(table_dataset, "csv")
        assert converted.format_name == "csv"
        assert converted.source_name == "people"


class TestTextLines:
    def test_strings_pass_through(self):
        dataset = as_dataset(["one", "two"], DataType.TEXT)
        assert convert(dataset, "text-lines").payload == ["one", "two"]

    def test_tuples_are_tab_joined(self, table_dataset):
        lines = convert(table_dataset, "text-lines").payload
        assert lines[0] == "1\tann\t30"

    def test_dicts_are_tab_joined(self):
        dataset = as_dataset([{"a": 1, "b": 2}], DataType.WEB_LOG)
        assert convert(dataset, "text-lines").payload == ["1\t2"]


class TestCsv:
    def test_header_from_schema(self, table_dataset):
        lines = convert(table_dataset, "csv").payload
        assert lines[0] == "id,name,age"
        assert len(lines) == 3

    def test_cells_with_commas_are_quoted(self):
        dataset = as_dataset(
            [("a,b",)], DataType.TABLE, schema=("text",)
        )
        lines = convert(dataset, "csv").payload
        assert lines[1] == '"a,b"'

    def test_quotes_are_escaped(self):
        dataset = as_dataset(
            [('say "hi"',)], DataType.TABLE, schema=("text",)
        )
        assert '""hi""' in convert(dataset, "csv").payload[1]


class TestJsonl:
    def test_rows_use_schema_keys(self, table_dataset):
        lines = convert(table_dataset, "jsonl").payload
        first = json.loads(lines[0])
        assert first == {"id": 1, "name": "ann", "age": 30}

    def test_every_line_is_valid_json(self, table_dataset):
        for line in convert(table_dataset, "jsonl").payload:
            json.loads(line)

    def test_plain_values_wrapped(self):
        dataset = as_dataset(["hello"], DataType.TEXT)
        assert json.loads(convert(dataset, "jsonl").payload[0]) == {
            "value": "hello"
        }


class TestKeyValue:
    def test_pairs_pass_through(self):
        dataset = as_dataset([("k", "v")], DataType.KEY_VALUE)
        assert convert(dataset, "key-value").payload == [("k", "v")]

    def test_wide_tuples_split_key_rest(self, table_dataset):
        pairs = convert(table_dataset, "key-value").payload
        assert pairs[0] == (1, ("ann", 30))

    def test_plain_records_get_index_keys(self):
        dataset = as_dataset(["a", "b"], DataType.TEXT)
        assert convert(dataset, "key-value").payload == [(0, "a"), (1, "b")]


class TestGraphFormats:
    def test_adjacency_list_is_symmetric(self, graph_dataset):
        adjacency = convert(graph_dataset, "adjacency-list").payload
        assert adjacency[1] == [0, 2]

    def test_adjacency_list_requires_graph(self, table_dataset):
        with pytest.raises(FormatConversionError):
            convert(table_dataset, "adjacency-list")

    def test_edge_list_lines(self, graph_dataset):
        assert convert(graph_dataset, "edge-list-lines").payload == [
            "0\t1", "1\t2",
        ]


class TestCommonLog:
    def test_weblog_renders(self, retail_tables):
        from repro.datagen.weblog import WebLogGenerator

        weblog = WebLogGenerator(
            retail_tables["customers"], retail_tables["products"], seed=1
        ).generate(5)
        lines = convert(weblog, "common-log").payload
        assert len(lines) == 5
        assert all('"' in line for line in lines)

    def test_requires_weblog_type(self, table_dataset):
        with pytest.raises(FormatConversionError):
            convert(table_dataset, "common-log")


class TestStreamingConversion:
    """convert_batches: bounded-memory conversion, identical output."""

    def test_matches_convert_for_csv(self, table_dataset):
        from repro.datagen.formats import convert_batches

        chunked = [
            line
            for chunk in convert_batches(table_dataset, "csv", chunk_size=1)
            for line in chunk
        ]
        assert chunked == convert(table_dataset, "csv").payload

    def test_matches_convert_for_key_value(self):
        from repro.datagen.formats import convert_batches

        dataset = as_dataset([f"doc {i}" for i in range(10)], DataType.TEXT)
        chunked = [
            pair
            for chunk in convert_batches(dataset, "key-value", chunk_size=3)
            for pair in chunk
        ]
        # The global key index spans chunk boundaries unbroken.
        assert chunked == convert(dataset, "key-value").payload

    def test_non_streaming_format_rejected_eagerly(self, graph_dataset):
        from repro.datagen.formats import convert_batches

        with pytest.raises(FormatConversionError):
            convert_batches(graph_dataset, "adjacency-list")

    def test_type_mismatch_rejected_before_consuming(self, table_dataset):
        from repro.datagen.formats import convert_batches

        # A plain call (no iteration) already raises: validation is
        # eager even though conversion is lazy.
        with pytest.raises(FormatConversionError):
            convert_batches(table_dataset, "common-log")

    def test_chunk_size_validated(self, table_dataset):
        from repro.datagen.formats import convert_batches

        with pytest.raises(FormatConversionError):
            convert_batches(table_dataset, "csv", chunk_size=0)

    def test_streaming_source_converts_lazily(self):
        from repro.datagen.formats import convert_batches

        pulled = []

        class _Source:
            name = "lazy"
            data_type = DataType.TEXT
            metadata = {}

            def batches(self):
                from repro.datagen.base import RecordBatch

                for index in range(3):
                    pulled.append(index)
                    yield RecordBatch(
                        records=[f"doc {index}"],
                        data_type=DataType.TEXT,
                        index=index,
                        offset=index,
                    )

        chunks = convert_batches(_Source(), "text-lines", chunk_size=1)
        assert pulled == []  # nothing consumed until iteration
        assert next(iter(chunks)) == ["doc 0"]
        assert pulled == [0]

    def test_lazy_converted_data_len(self):
        from repro.datagen.formats import ConvertedData

        lazy = ConvertedData(
            "text-lines", iter(["a", "b"]), "s", num_records=2
        )
        assert len(lazy) == 2

    def test_is_streaming_format(self):
        from repro.datagen.formats import is_streaming_format

        assert is_streaming_format("csv")
        assert not is_streaming_format("adjacency-list")
