"""Tests for the embedded seed corpora and the alias sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import GenerationError
from repro.datagen.alias import AliasSampler, naive_sample
from repro.datagen.corpus import (
    TOPIC_VOCABULARIES,
    load_retail_tables,
    load_social_graph,
    load_text_corpus,
)
from repro.datagen.graph import degree_counts


class TestTextCorpus:
    def test_deterministic(self):
        assert load_text_corpus(20, 10).records == load_text_corpus(20, 10).records

    def test_documents_have_requested_length(self):
        corpus = load_text_corpus(num_documents=10, words_per_document=25)
        assert all(len(doc.split()) == 25 for doc in corpus.records)

    def test_topic_vocabularies_are_disjoint(self):
        seen: set[str] = set()
        for vocabulary in TOPIC_VOCABULARIES.values():
            words = set(vocabulary)
            assert not words & seen
            seen |= words

    def test_documents_are_topically_concentrated(self):
        """Each document should lean heavily on one topic's vocabulary."""
        corpus = load_text_corpus(num_documents=40, words_per_document=60)
        concentrated = 0
        for document in corpus.records:
            tokens = document.split()
            best = max(
                sum(1 for token in tokens if token in set(vocab))
                for vocab in TOPIC_VOCABULARIES.values()
            )
            topical = sum(
                1 for token in tokens
                if any(token in set(v) for v in TOPIC_VOCABULARIES.values())
            )
            if topical and best / topical > 0.6:
                concentrated += 1
        assert concentrated > len(corpus.records) * 0.8


class TestSocialGraph:
    def test_deterministic(self):
        assert load_social_graph(100).records == load_social_graph(100).records

    def test_vertex_count(self):
        graph = load_social_graph(num_vertices=150)
        vertices = {v for edge in graph.records for v in edge}
        assert len(vertices) == 150

    def test_heavy_tailed_degrees(self):
        graph = load_social_graph(num_vertices=300)
        degrees = degree_counts(graph.records)
        maximum = max(degrees.values())
        mean = sum(degrees.values()) / len(degrees)
        assert maximum > 3 * mean


class TestRetailTables:
    def test_three_tables_with_schemas(self):
        tables = load_retail_tables()
        assert set(tables) == {"customers", "products", "orders"}
        for dataset in tables.values():
            assert "schema" in dataset.metadata

    def test_foreign_keys_resolve(self):
        tables = load_retail_tables(num_customers=50, num_products=20,
                                    num_orders=100)
        customer_ids = {row[0] for row in tables["customers"].records}
        product_ids = {row[0] for row in tables["products"].records}
        for _, customer, product, _, _ in tables["orders"].records:
            assert customer in customer_ids
            assert product in product_ids

    def test_order_skew(self):
        from collections import Counter

        tables = load_retail_tables(num_orders=400)
        counts = Counter(row[1] for row in tables["orders"].records)
        # Zipf skew: the hottest customer has far more than the average.
        assert counts.most_common(1)[0][1] > 3 * (400 / len(counts))


class TestAliasSampler:
    def test_distribution_matches_weights(self):
        sampler = AliasSampler([0.7, 0.2, 0.1])
        draws = sampler.sample(np.random.default_rng(1), 20000)
        frequencies = np.bincount(draws, minlength=3) / 20000
        assert frequencies[0] == pytest.approx(0.7, abs=0.02)
        assert frequencies[2] == pytest.approx(0.1, abs=0.02)

    def test_single_outcome(self):
        sampler = AliasSampler([1.0])
        assert set(sampler.sample(np.random.default_rng(2), 100)) == {0}

    def test_matches_naive_sampler_distribution(self):
        weights = np.array([0.5, 0.3, 0.15, 0.05])
        alias_draws = AliasSampler(weights).sample(
            np.random.default_rng(3), 10000
        )
        cumulative = np.cumsum(weights / weights.sum())
        naive_draws = naive_sample(np.random.default_rng(4), cumulative, 10000)
        alias_frequency = np.bincount(alias_draws, minlength=4) / 10000
        naive_frequency = np.bincount(naive_draws, minlength=4) / 10000
        assert np.allclose(alias_frequency, naive_frequency, atol=0.03)

    def test_validation(self):
        with pytest.raises(GenerationError):
            AliasSampler([])
        with pytest.raises(GenerationError):
            AliasSampler([-0.5, 1.5])
        with pytest.raises(GenerationError):
            AliasSampler([0.0, 0.0])
