"""Tests for the semi-structured resume generator."""

from __future__ import annotations

import pytest

from repro.core.errors import GenerationError
from repro.datagen.base import DataType, StructureClass
from repro.datagen.resume import (
    EDUCATION_LEVELS,
    SKILL_CLUSTERS,
    ResumeGenerator,
    cluster_cohesion,
    skill_cooccurrence,
)


class TestResumeGenerator:
    def test_semi_structured_data_type(self):
        dataset = ResumeGenerator(seed=1).generate(10)
        assert dataset.data_type is DataType.RESUME
        assert dataset.structure is StructureClass.SEMI_STRUCTURED

    def test_record_shape(self):
        for resume in ResumeGenerator(seed=2).generate(20).records:
            assert set(resume) == {"person_id", "name", "education",
                                   "experience_years", "skills", "summary"}
            assert resume["education"] in EDUCATION_LEVELS
            assert 0 <= resume["experience_years"] < 25
            assert resume["summary"]

    def test_skills_come_from_known_clusters(self):
        all_skills = {
            skill for skills in SKILL_CLUSTERS.values() for skill in skills
        }
        for resume in ResumeGenerator(seed=3).generate(30).records:
            assert set(resume["skills"]) <= all_skills
            assert len(resume["skills"]) == 5

    def test_skill_count_configurable(self):
        resumes = ResumeGenerator(skills_per_resume=3, seed=4).generate(10)
        assert all(len(r["skills"]) == 3 for r in resumes.records)

    def test_person_ids_unique_across_partitions(self):
        dataset = ResumeGenerator(seed=5).generate_parallel(40, 4)
        ids = [resume["person_id"] for resume in dataset.records]
        assert sorted(ids) == list(range(40))

    def test_clustered_skills_are_cohesive(self):
        """Skills must co-occur within clusters far above chance."""
        resumes = ResumeGenerator(
            cross_cluster_probability=0.1, seed=6
        ).generate(150).records
        assert cluster_cohesion(resumes) > 0.6

    def test_cross_cluster_knob_lowers_cohesion(self):
        tight = ResumeGenerator(
            cross_cluster_probability=0.0, seed=7
        ).generate(100).records
        loose = ResumeGenerator(
            cross_cluster_probability=0.9, seed=7
        ).generate(100).records
        assert cluster_cohesion(tight) > cluster_cohesion(loose)
        assert cluster_cohesion(tight) == 1.0

    def test_fitted_text_model_supplies_summaries(self, fitted_lda):
        resumes = ResumeGenerator(
            text_generator=fitted_lda, seed=8
        ).generate(10).records
        vocabulary = set(fitted_lda.model.vocabulary.words)
        for resume in resumes:
            tokens = resume["summary"].split()
            assert tokens
            assert set(tokens) <= vocabulary

    def test_unfitted_text_model_rejected(self):
        from repro.datagen.text import UnigramTextGenerator

        with pytest.raises(GenerationError):
            ResumeGenerator(text_generator=UnigramTextGenerator())

    def test_validation(self):
        with pytest.raises(GenerationError):
            ResumeGenerator(skills_per_resume=0)
        with pytest.raises(GenerationError):
            ResumeGenerator(cross_cluster_probability=1.5)

    def test_cooccurrence_counts(self):
        resumes = [{"skills": ["a", "b", "c"]}, {"skills": ["a", "b"]}]
        counts = skill_cooccurrence(resumes)
        assert counts[("a", "b")] == 2
        assert counts[("a", "c")] == 1

    def test_cohesion_empty(self):
        assert cluster_cohesion([]) == 0.0

    def test_jsonl_conversion(self):
        """Resumes flow through the semi-structured exchange format."""
        import json

        from repro.datagen.formats import convert

        dataset = ResumeGenerator(seed=9).generate(5)
        lines = convert(dataset, "jsonl").payload
        first = json.loads(lines[0])
        assert first["person_id"] == 0
        assert isinstance(first["skills"], list)
