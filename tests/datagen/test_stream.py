"""Tests for stream generation and arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import GenerationError
from repro.datagen.base import DataType
from repro.datagen.stream import (
    BurstyArrivals,
    EmpiricalArrivals,
    EventKind,
    PoissonArrivals,
    StreamGenerator,
    UniformArrivals,
)

RNG = np.random.default_rng(0)


class TestArrivalProcesses:
    def test_poisson_rate_roughly_matches(self):
        gaps = PoissonArrivals(rate=100.0).gaps(np.random.default_rng(1), 5000)
        assert 1.0 / gaps.mean() == pytest.approx(100.0, rel=0.1)

    def test_poisson_invalid_rate(self):
        with pytest.raises(GenerationError):
            PoissonArrivals(rate=0.0)

    def test_uniform_gaps_constant(self):
        gaps = UniformArrivals(rate=50.0).gaps(RNG, 10)
        assert all(gap == pytest.approx(0.02) for gap in gaps)

    def test_bursty_has_higher_variance_than_poisson(self):
        rng_a = np.random.default_rng(2)
        rng_b = np.random.default_rng(2)
        poisson = PoissonArrivals(rate=100.0).gaps(rng_a, 3000)
        bursty = BurstyArrivals(
            low_rate=20.0, high_rate=500.0, switch_probability=0.02
        ).gaps(rng_b, 3000)
        cv_poisson = poisson.std() / poisson.mean()
        cv_bursty = bursty.std() / bursty.mean()
        assert cv_bursty > cv_poisson

    def test_bursty_validation(self):
        with pytest.raises(GenerationError):
            BurstyArrivals(low_rate=0.0, high_rate=10.0)
        with pytest.raises(GenerationError):
            BurstyArrivals(low_rate=1.0, high_rate=10.0, switch_probability=0.0)

    def test_empirical_resamples_real_gaps(self):
        real = [0.0, 1.0, 3.0, 6.0]  # gaps 1, 2, 3
        arrivals = EmpiricalArrivals(real)
        gaps = arrivals.gaps(RNG, 100)
        assert set(np.round(gaps, 6)) <= {1.0, 2.0, 3.0}

    def test_empirical_requires_two_timestamps(self):
        with pytest.raises(GenerationError):
            EmpiricalArrivals([1.0])

    def test_timestamps_are_monotone(self):
        timestamps = PoissonArrivals(10.0).timestamps(RNG, 100)
        assert all(b >= a for a, b in zip(timestamps, timestamps[1:]))


class TestStreamGenerator:
    def test_volume_respected(self):
        dataset = StreamGenerator(seed=1).generate(123)
        assert dataset.num_records == 123
        assert dataset.data_type is DataType.STREAM

    def test_update_and_delete_fractions(self):
        generator = StreamGenerator(
            update_fraction=0.5, delete_fraction=0.2, seed=2
        )
        events = generator.generate(2000).records
        kinds = [event.kind for event in events]
        assert kinds.count(EventKind.UPDATE) / len(kinds) == pytest.approx(0.5, abs=0.05)
        assert kinds.count(EventKind.DELETE) / len(kinds) == pytest.approx(0.2, abs=0.04)

    def test_fraction_validation(self):
        with pytest.raises(GenerationError):
            StreamGenerator(update_fraction=0.8, delete_fraction=0.3)
        with pytest.raises(GenerationError):
            StreamGenerator(update_fraction=-0.1)
        with pytest.raises(GenerationError):
            StreamGenerator(key_space=0)

    def test_measured_rate_tracks_arrival_process(self):
        generator = StreamGenerator(arrivals=PoissonArrivals(500.0), seed=3)
        events = generator.generate(3000).records
        assert generator.measured_rate(events) == pytest.approx(500.0, rel=0.1)

    def test_measured_rate_needs_two_events(self):
        generator = StreamGenerator(seed=1)
        with pytest.raises(GenerationError):
            generator.measured_rate(generator.generate(1).records)

    def test_keys_respect_key_space(self):
        events = StreamGenerator(key_space=10, seed=4).generate(500).records
        assert all(0 <= event.key < 10 for event in events)

    def test_zipf_skew_makes_hot_keys(self):
        events = StreamGenerator(key_space=100, key_skew=1.5, seed=5).generate(
            2000
        ).records
        from collections import Counter

        counts = Counter(event.key for event in events)
        assert counts[0] > counts.get(50, 0)

    def test_fit_learns_update_mix(self):
        source = StreamGenerator(update_fraction=0.4, seed=6)
        real = source.generate(1000)
        learner = StreamGenerator(seed=7).fit(real)
        assert learner.update_fraction == pytest.approx(0.4, abs=0.05)

    def test_fit_learns_arrival_rate(self):
        source = StreamGenerator(arrivals=PoissonArrivals(200.0), seed=8)
        real = source.generate(2000)
        learner = StreamGenerator(seed=9).fit(real)
        synthetic = learner.generate(2000)
        assert learner.measured_rate(synthetic.records) == pytest.approx(
            200.0, rel=0.15
        )

    def test_fit_requires_two_events(self):
        source = StreamGenerator(seed=1)
        tiny = source.generate(1)
        with pytest.raises(GenerationError):
            StreamGenerator().fit(tiny)
