"""Tests for schema-driven and fitted table generation."""

from __future__ import annotations

import statistics

import pytest

from repro.core.errors import GenerationError
from repro.datagen.base import DataType
from repro.datagen.table import (
    Categorical,
    FittedTableGenerator,
    ForeignKey,
    Gaussian,
    SequentialKey,
    TableGenerator,
    TableSchema,
    TextColumn,
    UniformFloat,
    UniformInt,
    Zipf,
    retail_star_schema,
)

import numpy as np

RNG = np.random.default_rng(0)


class TestDistributions:
    def test_sequential_key_is_dense(self):
        values = SequentialKey(start=5).sample(RNG, 4, start_row=10)
        assert values == [15, 16, 17, 18]

    def test_uniform_int_bounds(self):
        values = UniformInt(3, 7).sample(RNG, 200, 0)
        assert all(3 <= value < 7 for value in values)

    def test_uniform_int_invalid_bounds(self):
        with pytest.raises(GenerationError):
            UniformInt(5, 5)

    def test_uniform_float_bounds(self):
        values = UniformFloat(0.0, 1.0).sample(RNG, 100, 0)
        assert all(0.0 <= value < 1.0 for value in values)

    def test_gaussian_mean_roughly_correct(self):
        values = Gaussian(mean=10.0, std=1.0).sample(
            np.random.default_rng(1), 2000, 0
        )
        assert abs(statistics.fmean(values) - 10.0) < 0.15

    def test_gaussian_negative_std_rejected(self):
        with pytest.raises(GenerationError):
            Gaussian(std=-1.0)

    def test_zipf_is_skewed_to_low_ranks(self):
        values = Zipf(size=100, exponent=1.8).sample(
            np.random.default_rng(2), 2000, 0
        )
        assert all(0 <= value < 100 for value in values)
        zeros = sum(1 for value in values if value == 0)
        assert zeros > len(values) * 0.3  # rank 0 dominates

    def test_zipf_validation(self):
        with pytest.raises(GenerationError):
            Zipf(size=0)
        with pytest.raises(GenerationError):
            Zipf(size=10, exponent=1.0)

    def test_categorical_respects_values(self):
        values = Categorical(("a", "b")).sample(RNG, 50, 0)
        assert set(values) <= {"a", "b"}

    def test_categorical_weights_shift_mass(self):
        values = Categorical(("a", "b"), weights=(0.95, 0.05)).sample(
            np.random.default_rng(3), 1000, 0
        )
        assert values.count("a") > 800

    def test_categorical_validation(self):
        with pytest.raises(GenerationError):
            Categorical(())
        with pytest.raises(GenerationError):
            Categorical(("a",), weights=(0.5, 0.5))

    def test_foreign_key_range(self):
        values = ForeignKey(ref_size=10).sample(RNG, 100, 0)
        assert all(0 <= value < 10 for value in values)

    def test_foreign_key_skew_creates_hot_rows(self):
        values = ForeignKey(ref_size=50, skew=1.8).sample(
            np.random.default_rng(4), 1000, 0
        )
        assert values.count(0) > values.count(25)

    def test_text_column_format(self):
        values = TextColumn(prefix="name", cardinality=5).sample(RNG, 10, 0)
        assert all(value.startswith("name_") for value in values)


class TestTableSchema:
    def test_duplicate_column_rejected(self):
        schema = TableSchema("t").add("a", SequentialKey())
        with pytest.raises(GenerationError):
            schema.add("a", SequentialKey())

    def test_column_names_ordered(self):
        schema = TableSchema("t").add("x", SequentialKey()).add("y", UniformInt(0, 2))
        assert schema.column_names == ("x", "y")


class TestTableGenerator:
    def _schema(self):
        return (
            TableSchema("demo")
            .add("id", SequentialKey())
            .add("value", UniformInt(0, 100))
        )

    def test_empty_schema_rejected(self):
        with pytest.raises(GenerationError):
            TableGenerator(TableSchema("empty"))

    def test_rows_match_schema_width(self):
        rows = TableGenerator(self._schema(), seed=1).generate(10).records
        assert all(len(row) == 2 for row in rows)

    def test_sequential_keys_stay_dense_across_partitions(self):
        dataset = TableGenerator(self._schema(), seed=1).generate_parallel(20, 4)
        keys = sorted(row[0] for row in dataset.records)
        assert keys == list(range(20))

    def test_schema_metadata_attached(self):
        dataset = TableGenerator(self._schema(), seed=1).generate(3)
        assert dataset.metadata["schema"] == ("id", "value")
        assert dataset.data_type is DataType.TABLE

    def test_zero_volume(self):
        assert TableGenerator(self._schema(), seed=1).generate(0).records == []

    def test_retail_star_schema_generates_three_tables(self):
        schemas = retail_star_schema()
        assert set(schemas) == {"customers", "products", "orders"}
        for schema in schemas.values():
            dataset = TableGenerator(schema, seed=2).generate(20)
            assert dataset.num_records == 20


class TestFittedTableGenerator:
    def test_requires_fit(self, retail_tables):
        with pytest.raises(Exception):
            FittedTableGenerator().generate(5)

    def test_empty_table_rejected(self, retail_tables):
        from repro.datagen.base import as_dataset

        empty = as_dataset([], DataType.TABLE, schema=("a",))
        with pytest.raises(GenerationError):
            FittedTableGenerator().fit(empty)

    def test_preserves_schema(self, retail_tables):
        generator = FittedTableGenerator(seed=1).fit(retail_tables["orders"])
        dataset = generator.generate(50)
        assert dataset.metadata["schema"] == retail_tables["orders"].metadata["schema"]

    def test_categorical_columns_use_real_values(self, retail_tables):
        generator = FittedTableGenerator(seed=1).fit(retail_tables["customers"])
        real_countries = {row[2] for row in retail_tables["customers"].records}
        synthetic = generator.generate(100)
        assert {row[2] for row in synthetic.records} <= real_countries

    def test_numeric_columns_stay_in_range(self, retail_tables):
        generator = FittedTableGenerator(seed=1).fit(retail_tables["orders"])
        real_days = [row[4] for row in retail_tables["orders"].records]
        synthetic_days = [row[4] for row in generator.generate(200).records]
        assert min(synthetic_days) >= min(real_days)
        assert max(synthetic_days) <= max(real_days)

    def test_skew_is_preserved(self, retail_tables):
        """Zipf-skewed customer references must stay skewed."""
        from collections import Counter

        generator = FittedTableGenerator(seed=1).fit(retail_tables["orders"])
        synthetic = generator.generate(300)
        real_counts = Counter(row[1] for row in retail_tables["orders"].records)
        synthetic_counts = Counter(row[1] for row in synthetic.records)
        real_top_share = real_counts.most_common(1)[0][1] / sum(real_counts.values())
        synthetic_top_share = synthetic_counts.most_common(1)[0][1] / sum(
            synthetic_counts.values()
        )
        # Hot-key share within 2x of the real share (both clearly skewed).
        assert synthetic_top_share > real_top_share / 2
