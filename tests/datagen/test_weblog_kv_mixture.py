"""Tests for the web-log/review, key-value, and mixture generators."""

from __future__ import annotations

import pytest

from repro.core.errors import GenerationError
from repro.datagen.base import DataType, as_dataset
from repro.datagen.kv import KeyValueGenerator
from repro.datagen.mixture import GaussianMixtureGenerator
from repro.datagen.weblog import ReviewGenerator, WebLogGenerator


class TestWebLogGenerator:
    def test_records_reference_real_customers(self, retail_tables):
        generator = WebLogGenerator(
            retail_tables["customers"], retail_tables["products"], seed=1
        )
        customer_ids = {row[0] for row in retail_tables["customers"].records}
        for record in generator.generate(100).records:
            assert record["customer_id"] in customer_ids

    def test_product_paths_reference_real_products(self, retail_tables):
        generator = WebLogGenerator(
            retail_tables["customers"], retail_tables["products"], seed=2
        )
        product_ids = {row[0] for row in retail_tables["products"].records}
        for record in generator.generate(300).records:
            if record["path"].startswith("/product/"):
                assert int(record["path"].rsplit("/", 1)[1]) in product_ids

    def test_timestamps_increase(self, retail_tables):
        generator = WebLogGenerator(
            retail_tables["customers"], retail_tables["products"], seed=3
        )
        timestamps = [r["timestamp"] for r in generator.generate(50).records]
        assert timestamps == sorted(timestamps)

    def test_skew_makes_hot_customers(self, retail_tables):
        from collections import Counter

        generator = WebLogGenerator(
            retail_tables["customers"], retail_tables["products"],
            skew=1.5, seed=4,
        )
        counts = Counter(
            record["customer_id"] for record in generator.generate(500).records
        )
        top_share = counts.most_common(1)[0][1] / 500
        assert top_share > 0.1  # clearly non-uniform

    def test_requires_schema_metadata(self, retail_tables):
        bare = as_dataset([(1,)], DataType.TABLE)
        with pytest.raises(GenerationError):
            WebLogGenerator(bare, retail_tables["products"])

    def test_rate_validation(self, retail_tables):
        with pytest.raises(GenerationError):
            WebLogGenerator(
                retail_tables["customers"], retail_tables["products"],
                requests_per_second=0.0,
            )

    def test_data_type(self, retail_tables):
        generator = WebLogGenerator(
            retail_tables["customers"], retail_tables["products"], seed=5
        )
        assert generator.generate(3).data_type is DataType.WEB_LOG


class TestReviewGenerator:
    def test_reviews_chain_to_tables_and_text_model(
        self, retail_tables, fitted_lda
    ):
        generator = ReviewGenerator(
            retail_tables["customers"], retail_tables["products"],
            fitted_lda, seed=1,
        )
        product_ids = {row[0] for row in retail_tables["products"].records}
        reviews = generator.generate(30).records
        for review in reviews:
            assert review["product_id"] in product_ids
            assert 1 <= review["rating"] <= 5
            assert review["text"]

    def test_ratings_skew_positive(self, retail_tables, fitted_lda):
        generator = ReviewGenerator(
            retail_tables["customers"], retail_tables["products"],
            fitted_lda, seed=2,
        )
        ratings = [r["rating"] for r in generator.generate(300).records]
        assert sum(1 for r in ratings if r >= 4) > len(ratings) / 2

    def test_unfitted_text_generator_rejected(self, retail_tables):
        from repro.datagen.text import UnigramTextGenerator

        with pytest.raises(GenerationError):
            ReviewGenerator(
                retail_tables["customers"], retail_tables["products"],
                UnigramTextGenerator(),
            )

    def test_review_ids_unique_across_partitions(self, retail_tables, fitted_lda):
        generator = ReviewGenerator(
            retail_tables["customers"], retail_tables["products"],
            fitted_lda, seed=3,
        )
        reviews = generator.generate_parallel(40, 4).records
        ids = [review["review_id"] for review in reviews]
        assert len(set(ids)) == len(ids)


class TestKeyValueGenerator:
    def test_key_format_and_uniqueness(self):
        records = KeyValueGenerator(seed=1).generate(50).records
        keys = [key for key, _ in records]
        assert len(set(keys)) == 50
        assert all(key.startswith("user") for key in keys)

    def test_keys_dense_across_partitions(self):
        records = KeyValueGenerator(seed=2).generate_parallel(40, 4).records
        keys = sorted(key for key, _ in records)
        assert keys == [f"user{i:012d}" for i in range(40)]

    def test_field_shape(self):
        records = KeyValueGenerator(
            field_count=3, field_length=8, seed=3
        ).generate(5).records
        for _, fields in records:
            assert set(fields) == {"field0", "field1", "field2"}
            assert all(len(value) == 8 for value in fields.values())

    def test_validation(self):
        with pytest.raises(GenerationError):
            KeyValueGenerator(field_count=0)
        with pytest.raises(GenerationError):
            KeyValueGenerator(field_length=0)


class TestGaussianMixtureGenerator:
    def test_schema_and_label_column(self):
        dataset = GaussianMixtureGenerator(
            num_components=3, dimensions=2, seed=1
        ).generate(50)
        assert dataset.metadata["schema"] == ("x0", "x1", "true_component")
        assert all(0 <= row[-1] < 3 for row in dataset.records)

    def test_points_cluster_near_centres(self):
        generator = GaussianMixtureGenerator(
            num_components=2, dimensions=2, spread=20.0, cluster_std=0.5, seed=2
        )
        for row in generator.generate(200).records:
            centre = generator.centres[row[-1]]
            distance = sum(
                (value - centre[d]) ** 2 for d, value in enumerate(row[:-1])
            ) ** 0.5
            assert distance < 4.0  # within a few std of its own centre

    def test_partitions_share_centres(self):
        generator = GaussianMixtureGenerator(seed=3)
        part_a = generator.generate_partition(100, 0, 2)
        part_b = generator.generate_partition(100, 1, 2)
        assert part_a != part_b  # different points
        # but both label against the same centre set
        assert generator.centres.shape == (4, 2)

    def test_validation(self):
        with pytest.raises(GenerationError):
            GaussianMixtureGenerator(num_components=0)
        with pytest.raises(GenerationError):
            GaussianMixtureGenerator(dimensions=0)
        with pytest.raises(GenerationError):
            GaussianMixtureGenerator(cluster_std=0.0)
