"""Tests for the deterministic dataset cache."""

from __future__ import annotations

import threading

import pytest

from repro.core.test_generator import TestGenerator
from repro.datagen.base import DataSet, DataType
from repro.datagen.cache import CacheStats, DatasetCache
from repro.execution.runner import TestRunner


def _dataset(name: str = "d", records: int = 3) -> DataSet:
    return DataSet(
        name=name, data_type=DataType.TEXT, records=[f"r{i}" for i in range(records)]
    )


class TestMakeKey:
    def test_identical_requests_share_a_key(self):
        assert DatasetCache.make_key("random-text", 7, 100) == DatasetCache.make_key(
            "random-text", 7, 100
        )

    def test_seed_isolates_entries(self):
        assert DatasetCache.make_key("random-text", 7, 100) != DatasetCache.make_key(
            "random-text", 8, 100
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"volume": 200},
            {"num_partitions": 4},
            {"fit_on": "text-corpus"},
            {"params": {"alpha": 0.5}},
        ],
    )
    def test_every_field_participates(self, kwargs):
        base = dict(generator="g", seed=1, volume=100)
        assert DatasetCache.make_key(**base) != DatasetCache.make_key(
            **{**base, **kwargs}
        )

    def test_param_order_does_not_matter(self):
        assert DatasetCache.make_key(
            "g", 1, 10, params={"a": 1, "b": 2}
        ) == DatasetCache.make_key("g", 1, 10, params={"b": 2, "a": 1})


class TestGetOrGenerate:
    def test_factory_runs_once(self):
        cache = DatasetCache()
        key = DatasetCache.make_key("g", 0, 10)
        calls = []

        def factory():
            calls.append(1)
            return _dataset()

        first = cache.get_or_generate(key, factory)
        second = cache.get_or_generate(key, factory)
        assert first is second
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_keys_generate_separately(self):
        cache = DatasetCache()
        a = cache.get_or_generate(DatasetCache.make_key("g", 0, 10), _dataset)
        b = cache.get_or_generate(DatasetCache.make_key("g", 1, 10), _dataset)
        assert a is not b
        assert cache.misses == 2

    def test_concurrent_same_key_generates_once(self):
        cache = DatasetCache()
        key = DatasetCache.make_key("g", 0, 10)
        calls = []
        gate = threading.Event()

        def factory():
            gate.wait(timeout=5)
            calls.append(1)
            return _dataset()

        threads = [
            threading.Thread(
                target=lambda: cache.get_or_generate(key, factory)
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(calls) == 1
        assert cache.misses == 1 and cache.hits == 3

    def test_raising_factory_releases_the_key_lock(self):
        # Regression: a raising factory used to leak the per-key lock,
        # leaving it in the table (and, worse, permanently held on
        # Python builds where the with-block unwind was interrupted).
        cache = DatasetCache()
        key = DatasetCache.make_key("g", 0, 10)

        def explode():
            raise RuntimeError("generation failed")

        with pytest.raises(RuntimeError):
            cache.get_or_generate(key, explode)
        assert cache._key_locks == {}
        # The key stays generatable: the next caller must not deadlock
        # or see a stale entry.
        assert cache.get_or_generate(key, _dataset).name == "d"
        assert key in cache

    def test_raising_factory_counts_no_miss(self):
        cache = DatasetCache()
        key = DatasetCache.make_key("g", 0, 10)
        with pytest.raises(RuntimeError):
            cache.get_or_generate(key, lambda: (_ for _ in ()).throw(
                RuntimeError("boom")
            ))
        assert cache.stats() == CacheStats(hits=0, misses=0, entries=0)

    def test_lru_eviction(self):
        cache = DatasetCache(max_entries=2)
        keys = [DatasetCache.make_key("g", seed, 10) for seed in range(3)]
        for key in keys:
            cache.get_or_generate(key, _dataset)
        assert len(cache) == 2
        assert keys[0] not in cache  # least recently used was dropped
        assert keys[1] in cache and keys[2] in cache

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            DatasetCache(max_entries=0)

    def test_clear_resets_counters(self):
        cache = DatasetCache()
        key = DatasetCache.make_key("g", 0, 10)
        cache.get_or_generate(key, _dataset)
        cache.get_or_generate(key, _dataset)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == CacheStats(hits=0, misses=0, entries=0)
        assert cache.stats().hit_rate == 0.0

    def test_stats_hit_rate(self):
        cache = DatasetCache()
        key = DatasetCache.make_key("g", 0, 10)
        cache.get_or_generate(key, _dataset)
        cache.get_or_generate(key, _dataset)
        cache.get_or_generate(key, _dataset)
        stats = cache.stats()
        assert stats == CacheStats(hits=2, misses=1, entries=1)
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.as_dict() == {
            "hits": 2, "misses": 1, "entries": 1, "hit_rate": 2 / 3,
        }

    def test_stats_since_reports_the_delta(self):
        cache = DatasetCache()
        key = DatasetCache.make_key("g", 0, 10)
        cache.get_or_generate(key, _dataset)
        before = cache.stats()
        cache.get_or_generate(key, _dataset)
        cache.get_or_generate(key, _dataset)
        delta = cache.stats().since(before)
        assert delta == CacheStats(hits=2, misses=0, entries=1)
        assert delta.hit_rate == 1.0


class TestGeneratorIntegration:
    def test_generation_happens_once_per_unique_request(self, monkeypatch):
        generator = TestGenerator()
        calls = []
        original = TestGenerator._generate_data

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(TestGenerator, "_generate_data", counting)
        for engine in ("dbms", "mapreduce", "nosql"):
            generator.generate("database-aggregate-join", engine, 50)
        assert len(calls) == 1
        assert generator.dataset_cache.stats().hits == 2

    def test_cached_datasets_are_shared_objects(self):
        generator = TestGenerator()
        first = generator.generate("database-aggregate-join", "dbms", 50)
        second = generator.generate("database-aggregate-join", "mapreduce", 50)
        assert first.dataset is second.dataset

    def test_volume_override_isolates_entries(self):
        generator = TestGenerator()
        small = generator.generate("micro-wordcount", "mapreduce", 20)
        large = generator.generate("micro-wordcount", "mapreduce", 40)
        assert small.dataset is not large.dataset
        assert generator.dataset_cache.misses == 2

    def test_caching_can_be_disabled(self):
        generator = TestGenerator(cache_datasets=False)
        assert generator.dataset_cache is None
        first = generator.generate("micro-wordcount", "mapreduce", 20)
        second = generator.generate("micro-wordcount", "mapreduce", 20)
        assert first.dataset is not second.dataset
        # Generation stays deterministic with or without the cache.
        assert first.dataset.records == second.dataset.records


class TestRunnerIntegration:
    def test_run_on_engines_generates_once(self):
        runner = TestRunner()
        engines = ["dbms", "mapreduce", "nosql"]
        results = runner.run_on_engines("database-aggregate-join", engines, 60)
        stats = runner.test_generator.dataset_cache.stats()
        assert stats.misses == 1
        assert stats.hits == len(engines) - 1
        for result in results:
            assert result.extra["dataset_cache"]["misses"] == 1

    def test_run_on_engines_reports_per_call_deltas(self):
        runner = TestRunner()
        engines = ["dbms", "mapreduce", "nosql"]
        runner.run_on_engines("database-aggregate-join", engines, 60)
        results = runner.run_on_engines("database-aggregate-join", engines, 60)
        # The second call is fully served from cache, and its results must
        # carry that call's delta — not process-lifetime totals.
        for result in results:
            assert result.extra["dataset_cache"]["misses"] == 0
            assert result.extra["dataset_cache"]["hits"] == len(engines)
        lifetime = runner.test_generator.dataset_cache.stats()
        assert lifetime.misses == 1
        assert lifetime.hits == 2 * len(engines) - 1

    def test_repeats_share_the_cached_dataset(self):
        from repro.execution.runner import RunnerOptions

        runner = TestRunner(options=RunnerOptions(repeats=3))
        runner.run("micro-wordcount", "mapreduce", 30)
        runner.run("micro-wordcount", "mapreduce", 30)
        stats = runner.test_generator.dataset_cache.stats()
        assert stats.misses == 1
        assert stats.hits == 1


class TestSpillToDisk:
    """Budgeted caches spill LRU entries to disk and re-stream them."""

    def _cache(self, tmp_path, budget):
        return DatasetCache(
            max_entries=32, max_resident_bytes=budget, spill_dir=tmp_path
        )

    def _put(self, cache, name, records=50):
        key = DatasetCache.make_key(name, 0, records)
        cache.get_or_generate(key, lambda: _dataset(name, records))
        return key

    def test_over_budget_entries_spill(self, tmp_path):
        one = _dataset("a", 50)
        cache = self._cache(tmp_path, one.estimated_bytes() + 1)
        self._put(cache, "a")
        self._put(cache, "b")
        stats = cache.stats()
        assert stats.spills == 1
        assert stats.spilled_entries == 1
        assert stats.resident_bytes <= one.estimated_bytes() + 1
        assert list(tmp_path.glob("spill-*.pkl"))

    def test_spilled_entry_restores_on_hit(self, tmp_path):
        one = _dataset("a", 50)
        cache = self._cache(tmp_path, one.estimated_bytes() + 1)
        key_a = self._put(cache, "a")
        self._put(cache, "b")
        restored = cache.get_or_generate(key_a, lambda: _dataset("x", 1))
        # Served from the spill file, not the factory.
        assert restored.records == _dataset("a", 50).records
        assert cache.stats().spill_hits == 1

    def test_get_source_restreams_without_loading(self, tmp_path):
        from repro.datagen.cache import SpilledDatasetSource

        one = _dataset("a", 50)
        cache = self._cache(tmp_path, one.estimated_bytes() + 1)
        key_a = self._put(cache, "a")
        self._put(cache, "b")
        source = cache.get_source(key_a)
        assert isinstance(source, SpilledDatasetSource)
        assert source.num_records == 50
        streamed = [record for batch in source.batches(7) for record in batch]
        assert streamed == _dataset("a", 50).records
        # Re-streaming does not restore residency.
        assert cache.stats().spilled_entries == 1

    def test_get_source_returns_resident_dataset(self, tmp_path):
        cache = self._cache(tmp_path, None)
        key = self._put(cache, "a")
        assert isinstance(cache.get_source(key), DataSet)

    def test_unbudgeted_cache_never_spills(self, tmp_path):
        cache = DatasetCache(spill_dir=tmp_path)
        self._put(cache, "a")
        self._put(cache, "b")
        assert cache.stats().spills == 0
        assert not list(tmp_path.glob("spill-*.pkl"))

    def test_clear_removes_spill_files(self, tmp_path):
        one = _dataset("a", 50)
        cache = self._cache(tmp_path, one.estimated_bytes() + 1)
        self._put(cache, "a")
        self._put(cache, "b")
        assert list(tmp_path.glob("spill-*.pkl"))
        cache.clear()
        assert not list(tmp_path.glob("spill-*.pkl"))
        assert cache.stats().spills == 0

    def test_stats_hide_spill_fields_until_used(self):
        stats = DatasetCache().stats()
        assert "spills" not in stats.as_dict()

    def test_budget_without_spill_dir_evicts(self, tmp_path):
        one = _dataset("a", 50)
        cache = DatasetCache(max_resident_bytes=one.estimated_bytes() + 1)
        key_a = self._put(cache, "a")
        self._put(cache, "b")
        stats = cache.stats()
        assert stats.spills == 0
        assert stats.entries == 1
        # The evicted entry regenerates on demand.
        calls = []
        cache.get_or_generate(
            key_a, lambda: calls.append(1) or _dataset("a", 50)
        )
        assert calls == [1]
