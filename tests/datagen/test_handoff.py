"""Tests for the zero-copy dataset handoff layer (``datagen/handoff.py``).

Covers the shared chunk-stream format (byte-compatible with the cache's
disk spills), shared-memory and file-backed re-streaming sources, handle
round-trips, export lifetime, and executor-parallel generation being
bit-identical to the serial partition loop.
"""

from __future__ import annotations

import io

import pytest

from repro.core.errors import GenerationError
from repro.datagen.base import DataSet, DataType
from repro.datagen.cache import DatasetCache
from repro.datagen.handoff import (
    DatasetHandle,
    SharedMemoryStreamSource,
    export_dataset,
    fingerprint_handle,
    iter_chunks,
    read_header,
    serialize_dataset,
    write_stream,
)
from repro.datagen.text import RandomTextGenerator


def _dataset(records=None) -> DataSet:
    return DataSet(
        name="handoff-test",
        data_type=DataType.TEXT,
        records=records if records is not None else [f"doc {i}" for i in range(10)],
        metadata={"generator": "test", "seed": 7},
    )


KEY = ("random-text", 0, 100, 1, None)


class TestChunkStreamFormat:
    def test_header_then_chunks_roundtrip(self):
        dataset = _dataset()
        buffer = io.BytesIO()
        write_stream(buffer, dataset, chunk_records=3)
        buffer.seek(0)
        header = read_header(buffer)
        assert header["name"] == "handoff-test"
        assert header["data_type"] == "TEXT"
        assert header["num_records"] == 10
        assert header["metadata"] == {"generator": "test", "seed": 7}
        chunks = list(iter_chunks(buffer))
        assert [len(chunk) for chunk in chunks] == [3, 3, 3, 1]
        assert [r for chunk in chunks for r in chunk] == dataset.records

    def test_spill_files_share_the_format(self, tmp_path):
        """A cache spill file is readable with this module's readers."""
        cache = DatasetCache(
            max_entries=4, max_resident_bytes=1, spill_dir=tmp_path
        )
        cache.put(KEY, _dataset())
        spill_files = list(tmp_path.glob("spill-*.pkl"))
        assert len(spill_files) == 1
        with spill_files[0].open("rb") as handle:
            header = read_header(handle)
            records = [r for chunk in iter_chunks(handle) for r in chunk]
        assert header["num_records"] == 10
        assert records == _dataset().records


class TestSharedMemoryExport:
    def test_shm_handle_roundtrip(self):
        dataset = _dataset()
        export = export_dataset(KEY, DatasetCache.fingerprint(KEY), dataset)
        try:
            handle = export.handle
            assert handle.kind == "shm"
            assert handle.nbytes == len(serialize_dataset(dataset))
            restored = handle.open().materialize()
            assert restored.records == dataset.records
            assert restored.metadata == dataset.metadata
            assert restored.data_type is DataType.TEXT
        finally:
            export.close()

    def test_shm_source_rechunks_lazily(self):
        dataset = _dataset(records=[f"r{i}" for i in range(25)])
        export = export_dataset(KEY, DatasetCache.fingerprint(KEY), dataset)
        try:
            source = export.handle.open()
            assert isinstance(source, SharedMemoryStreamSource)
            batches = list(source.batches(chunk_size=10))
            assert [len(b) for b in batches] == [10, 10, 5]
            assert [b.offset for b in batches] == [0, 10, 20]
            assert [r for b in batches for r in b] == dataset.records
            # A second pass re-attaches and reads the same records.
            assert source.materialize().records == dataset.records
        finally:
            export.close()

    def test_close_is_idempotent_and_releases_segment(self):
        export = export_dataset(KEY, DatasetCache.fingerprint(KEY), _dataset())
        export.close()
        export.close()
        with pytest.raises(Exception):
            export.handle.open().materialize()


class TestFileExport:
    def test_file_fallback_roundtrip(self, tmp_path):
        dataset = _dataset()
        export = export_dataset(
            KEY,
            DatasetCache.fingerprint(KEY),
            dataset,
            prefer_shm=False,
            export_dir=tmp_path,
        )
        handle = export.handle
        assert handle.kind == "file"
        assert handle.path.startswith(str(tmp_path))
        assert handle.open().materialize().records == dataset.records
        export.close()
        assert not list(tmp_path.iterdir())  # owned file removed

    def test_spilled_cache_entry_ships_as_existing_file(self, tmp_path):
        """Exporting a spilled entry writes zero new bytes."""
        cache = DatasetCache(
            max_entries=4, max_resident_bytes=1, spill_dir=tmp_path
        )
        cache.put(KEY, _dataset())
        source = cache.export_source(KEY)
        export = export_dataset(KEY, DatasetCache.fingerprint(KEY), source)
        handle = export.handle
        assert handle.kind == "file"
        assert handle.path == str(source.path)
        assert handle.open().materialize().records == _dataset().records
        export.close()
        # Referenced, not owned: the spill file is still the cache's.
        assert source.path.exists()


class TestHandles:
    def test_fingerprint_handle_carries_no_bytes(self):
        handle = fingerprint_handle(KEY, DatasetCache.fingerprint(KEY))
        assert handle.kind == "fingerprint"
        assert handle.nbytes == 0
        with pytest.raises(GenerationError):
            handle.open()

    def test_handles_are_picklable_and_small(self):
        import pickle

        export = export_dataset(KEY, DatasetCache.fingerprint(KEY), _dataset())
        try:
            payload = pickle.dumps(export.handle)
            assert len(payload) < 600
            assert isinstance(pickle.loads(payload), DatasetHandle)
        finally:
            export.close()

    def test_cache_fingerprint_is_content_addressed(self):
        assert DatasetCache.fingerprint(KEY) == DatasetCache.fingerprint(
            ("random-text", 0, 100, 1, None)
        )
        assert DatasetCache.fingerprint(KEY) != DatasetCache.fingerprint(
            ("random-text", 0, 200, 1, None)
        )
        assert len(DatasetCache.fingerprint(KEY)) == 64


class TestParallelGeneration:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_executor_fanout_is_bit_identical(self, backend):
        serial = RandomTextGenerator(seed=11).generate_parallel(60, 4)
        fanned = RandomTextGenerator(seed=11).generate_parallel(
            60, 4, executor=backend
        )
        assert fanned.records == serial.records
        assert fanned.num_records == 60

    def test_single_partition_skips_fanout(self):
        serial = RandomTextGenerator(seed=11).generate_parallel(20, 1)
        fanned = RandomTextGenerator(seed=11).generate_parallel(
            20, 1, executor="thread"
        )
        assert fanned.records == serial.records
