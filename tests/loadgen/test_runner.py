"""Tests for the load runner (virtual and real clocks, both loops)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import LoadGenError, RequestShed
from repro.loadgen import (
    LoadPlan,
    LoadRunner,
    LoadTarget,
    SLOPolicy,
    SyntheticTarget,
    load_fingerprint,
)


class FlakyTarget(LoadTarget):
    """Executes for real: every 3rd request sheds, every 5th errors."""

    name = "flaky"

    def execute(self, request_index: int) -> None:
        if request_index % 5 == 0:
            raise RuntimeError("boom")
        if request_index % 3 == 0:
            raise RequestShed("full")


class TestOpenLoopVirtual:
    def test_underloaded_run_completes_everything(self):
        report = LoadRunner(
            SyntheticTarget(mean_service=0.002), concurrency=4
        ).run(LoadPlan(rate=100.0, duration=2.0, seed=3))
        assert report.offered == report.completed
        assert report.shed == 0
        assert report.errors == 0
        assert len(report.latencies) == report.completed
        assert report.achieved_rate == pytest.approx(
            report.offered_rate, rel=0.01
        )

    def test_same_seed_same_verdict_and_measurements(self):
        """The ISSUE acceptance contract: same seed → same verdict."""

        def run():
            return LoadRunner(
                SyntheticTarget(mean_service=0.004), concurrency=2
            ).run(
                LoadPlan(rate=200.0, duration=4.0, seed=7),
                slo=SLOPolicy(p99_budget=0.05),
            )

        first, second = run(), run()
        assert first.latencies == second.latencies
        assert first.verdict == second.verdict
        assert first.summary() == second.summary()

    def test_different_seed_different_measurements(self):
        reports = [
            LoadRunner(SyntheticTarget(), concurrency=2).run(
                LoadPlan(rate=100.0, duration=2.0, seed=seed)
            )
            for seed in (1, 2)
        ]
        assert reports[0].latencies != reports[1].latencies

    def test_overload_sheds_and_bounds_queue_depth(self):
        capacity = 5
        report = LoadRunner(
            SyntheticTarget(mean_service=0.1, distribution="constant"),
            concurrency=1,
            queue_capacity=capacity,
        ).run(LoadPlan(arrival="constant", rate=100.0, duration=1.0))
        assert report.shed > 0
        assert report.queue_depth_max <= capacity
        assert report.offered == report.completed + report.shed
        # Shed requests leave no latency sample behind.
        assert len(report.latencies) == report.completed

    def test_latency_includes_queueing_delay(self):
        slow = LoadRunner(
            SyntheticTarget(mean_service=0.05, distribution="constant"),
            concurrency=1,
            queue_capacity=1000,
        ).run(LoadPlan(arrival="constant", rate=40.0, duration=1.0))
        stats = slow.latency_stats()
        # One server at 2× its capacity: the queue grows, so the tail
        # latency must far exceed the bare service time.
        assert stats.p99 > 0.05 * 4

    def test_executing_target_dispositions(self):
        report = LoadRunner(FlakyTarget(), concurrency=2).run(
            LoadPlan(arrival="constant", rate=30.0, duration=1.0)
        )
        assert report.offered == 30
        # index % 5 == 0 → error (6), else % 3 == 0 → shed (8).
        assert report.errors == 6
        assert report.shed == 8
        assert report.completed == 16

    def test_zero_queue_capacity_sheds_waiters(self):
        report = LoadRunner(
            SyntheticTarget(mean_service=0.5, distribution="constant"),
            concurrency=1,
            queue_capacity=0,
        ).run(LoadPlan(arrival="constant", rate=10.0, duration=1.0))
        # Server busy 0.5s per request; with no queue, arrivals landing
        # while a prior admitted request waits-or-runs are shed.
        assert report.shed > 0
        assert report.completed >= 1


class TestClosedLoopVirtual:
    def test_sessions_bound_concurrency_of_demand(self):
        report = LoadRunner(
            SyntheticTarget(mean_service=0.01, distribution="constant"),
            concurrency=4,
        ).run(LoadPlan(sessions=2, think_time=0.0, duration=1.0, seed=1))
        # 2 sessions back-to-back on 0.01s service ≈ 200 requests.
        assert report.offered == pytest.approx(200, abs=4)
        assert report.completed == report.offered

    def test_think_time_slows_demand(self):
        fast = LoadRunner(SyntheticTarget(), concurrency=4).run(
            LoadPlan(sessions=4, think_time=0.0, duration=1.0, seed=2)
        )
        slow = LoadRunner(SyntheticTarget(), concurrency=4).run(
            LoadPlan(sessions=4, think_time=0.1, duration=1.0, seed=2)
        )
        assert slow.offered < fast.offered

    def test_closed_loop_is_deterministic(self):
        def run():
            return LoadRunner(SyntheticTarget(), concurrency=2).run(
                LoadPlan(sessions=3, think_time=0.02, duration=2.0, seed=9)
            )

        assert run().summary() == run().summary()


class TestRealClock:
    def test_real_clock_paces_with_injected_sleep(self):
        sleeps: list[float] = []
        clock = {"now": 0.0}

        def fake_sleep(seconds: float) -> None:
            sleeps.append(seconds)
            clock["now"] += seconds

        runner = LoadRunner(
            SyntheticTarget(mean_service=1e-6),
            clock="real",
            concurrency=2,
            sleep=fake_sleep,
            time_source=lambda: clock["now"],
        )
        report = runner.run(
            LoadPlan(arrival="constant", rate=10.0, duration=1.0, seed=0)
        )
        assert report.offered == 10
        assert report.completed == 10
        # The dispatcher slept up to each arrival: the gaps sum to the
        # last arrival time (worker service sleeps add the rest).
        assert sum(sleeps) >= 0.9
        assert report.elapsed_seconds >= 1.0

    def test_real_clock_smoke_wall_time(self):
        report = LoadRunner(
            SyntheticTarget(mean_service=0.001),
            clock="real",
            concurrency=4,
        ).run(LoadPlan(arrival="poisson", rate=200.0, duration=0.2, seed=4))
        assert report.completed > 0
        assert report.error_fraction == 0.0
        assert all(latency >= 0 for latency in report.latencies)

    def test_unknown_clock_rejected(self):
        with pytest.raises(LoadGenError, match="unknown clock"):
            LoadRunner(SyntheticTarget(), clock="sundial")


class TestReportAndRecording:
    def test_run_result_carries_percentiles_and_verdict(self):
        report = LoadRunner(SyntheticTarget(), concurrency=2).run(
            LoadPlan(rate=100.0, duration=2.0, seed=5),
            slo=SLOPolicy(p95_budget=1.0),
        )
        result = report.as_run_result()
        assert result.test_name == "load:open-poisson"
        assert result.engine == "loadgen-virtual"
        stats = result.metric("latency")
        assert stats.p50 <= stats.p95 <= stats.p99
        assert result.extra["slo_verdict"]["passed"] is True
        assert result.metric("achieved_rate").mean > 0

    def test_recorded_into_run_store(self, tmp_path):
        from repro.analysis.store import RunStore

        store = RunStore(str(tmp_path))
        report = LoadRunner(SyntheticTarget(), concurrency=2).run(
            LoadPlan(rate=50.0, duration=1.0, seed=6),
            slo=SLOPolicy(),
            store=store,
        )
        assert report.record_id is not None
        record = store.get(report.record_id)
        assert record.test_name == "load:open-poisson"
        assert record.result["extra"]["slo_verdict"]["passed"] is True

    def test_same_plan_lands_in_one_series(self, tmp_path):
        from repro.analysis.store import RunStore

        store = RunStore(str(tmp_path))
        plan = LoadPlan(rate=50.0, duration=1.0, seed=6)
        records = [
            LoadRunner(SyntheticTarget(), concurrency=2)
            .run(plan, store=store)
            .record_id
            for _ in range(2)
        ]
        first, second = (store.get(r) for r in records)
        assert first.series == second.series

    def test_fingerprint_excludes_slo(self):
        plan = LoadPlan(rate=50.0, duration=1.0)
        payload = load_fingerprint(
            plan, "synthetic", clock="virtual", concurrency=2,
            queue_capacity=64,
        )
        assert payload["kind"] == "loadgen"
        assert "slo" not in str(payload)

    def test_tracing_counters(self):
        from repro.observability import Tracer

        tracer = Tracer()
        LoadRunner(
            SyntheticTarget(), concurrency=2, tracer=tracer
        ).run(LoadPlan(rate=50.0, duration=1.0, seed=2))
        roots = tracer.roots()
        assert len(roots) == 1
        span = roots[0]
        assert span.name == "load"
        assert span.counters["load.offered"] > 0
        assert span.counters["load.completed"] > 0

    def test_latency_stats_requires_completions(self):
        report = LoadRunner(SyntheticTarget(), concurrency=1).run(
            LoadPlan(rate=50.0, duration=1.0)
        )
        report.latencies.clear()
        with pytest.raises(LoadGenError, match="no latencies"):
            report.latency_stats()


class TestPlanValidation:
    def test_invalid_plans_rejected(self):
        runner = LoadRunner(SyntheticTarget())
        for plan in (
            LoadPlan(arrival="sawtooth"),
            LoadPlan(rate=0.0),
            LoadPlan(duration=0.0),
            LoadPlan(sessions=-1),
            LoadPlan(think_time=-0.5),
        ):
            with pytest.raises(LoadGenError):
                runner.run(plan)

    def test_invalid_runner_configuration(self):
        with pytest.raises(LoadGenError):
            LoadRunner(SyntheticTarget(), concurrency=0)
        with pytest.raises(LoadGenError):
            LoadRunner(SyntheticTarget(), queue_capacity=-1)


class TestTargets:
    def test_workload_target_serves_real_requests(self):
        from repro.loadgen import WorkloadTarget

        report = LoadRunner(
            WorkloadTarget("micro-wordcount", volume=30), concurrency=2
        ).run(LoadPlan(rate=20.0, duration=0.5, seed=1))
        assert report.completed > 0
        assert report.error_fraction == 0.0
        assert report.target_name.startswith("workload:micro-wordcount@")

    def test_service_target_drives_the_orchestrator(self, tmp_path):
        from repro.loadgen import ServiceTarget

        report = LoadRunner(
            ServiceTarget(store_dir=str(tmp_path)), concurrency=2
        ).run(
            LoadPlan(arrival="constant", rate=5.0, duration=1.0, seed=2),
            slo=SLOPolicy(min_rate_fraction=0.5, p99_budget=30.0),
        )
        assert report.completed > 0
        assert report.verdict is not None
        assert report.target_name == "service:micro-wordcount"

    def test_synthetic_target_validation(self):
        with pytest.raises(LoadGenError):
            SyntheticTarget(mean_service=0.0)
        with pytest.raises(LoadGenError):
            SyntheticTarget(distribution="bimodal")

    def test_synthetic_lognormal_mean_matches_knob(self):
        target = SyntheticTarget(mean_service=0.01)
        rng = np.random.default_rng(0)
        draws = [target.service_time(i, rng) for i in range(20000)]
        assert np.mean(draws) == pytest.approx(0.01, rel=0.05)
