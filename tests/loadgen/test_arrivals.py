"""Tests for the open-loop arrival schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import LoadGenError
from repro.datagen.stream import DiurnalArrivals
from repro.loadgen import ARRIVAL_KINDS, arrival_process, arrival_schedule


class TestArrivalProcessFactory:
    def test_every_kind_builds(self):
        for kind in ARRIVAL_KINDS:
            process = arrival_process(kind, 50.0)
            gaps = process.gaps(np.random.default_rng(0), 100)
            assert len(gaps) == 100
            assert np.all(gaps >= 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(LoadGenError, match="unknown arrival kind"):
            arrival_process("sawtooth", 10.0)

    def test_non_positive_rate_rejected(self):
        with pytest.raises(LoadGenError, match="rate must be positive"):
            arrival_process("poisson", 0.0)

    def test_bursty_factor_validated(self):
        with pytest.raises(LoadGenError, match="burst_factor"):
            arrival_process("bursty", 10.0, burst_factor=1.0)

    def test_cli_choices_match_kinds(self):
        """The hardcoded CLI --arrival choices must track ARRIVAL_KINDS."""
        from repro.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args(["load", "--arrival", ARRIVAL_KINDS[-1]])
        assert args.arrival == ARRIVAL_KINDS[-1]


class TestArrivalSchedule:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_schedule_shape(self, kind):
        schedule = arrival_schedule(kind, 100.0, 5.0, seed=3)
        assert schedule == sorted(schedule)
        assert all(0.0 <= t < 5.0 for t in schedule)
        # The offered count lands near rate * duration.
        assert len(schedule) == pytest.approx(500, rel=0.5)

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_schedule_is_deterministic(self, kind):
        first = arrival_schedule(kind, 50.0, 2.0, seed=9)
        second = arrival_schedule(kind, 50.0, 2.0, seed=9)
        assert first == second

    def test_seed_changes_schedule(self):
        assert arrival_schedule("poisson", 50.0, 2.0, seed=1) != (
            arrival_schedule("poisson", 50.0, 2.0, seed=2)
        )

    def test_constant_schedule_is_evenly_spaced(self):
        schedule = arrival_schedule("constant", 10.0, 1.0, seed=0)
        gaps = {round(b - a, 9) for a, b in zip(schedule, schedule[1:])}
        assert gaps == {0.1}

    def test_invalid_duration(self):
        with pytest.raises(LoadGenError, match="duration"):
            arrival_schedule("poisson", 10.0, 0.0)


class TestDiurnalArrivals:
    def test_rate_modulates_with_phase(self):
        """Peak-phase arrivals outnumber trough-phase arrivals."""
        process = DiurnalArrivals(rate=200.0, period=10.0, amplitude=0.9)
        stamps = process.timestamps(np.random.default_rng(5), 4000)
        stamps = stamps[stamps < 10.0]
        # sin peaks in the first half-period, troughs in the second.
        peak = np.count_nonzero(stamps < 5.0)
        trough = np.count_nonzero(stamps >= 5.0)
        assert peak > trough * 1.5

    def test_validation(self):
        from repro.core.errors import GenerationError

        with pytest.raises(GenerationError):
            DiurnalArrivals(rate=0.0)
        with pytest.raises(GenerationError):
            DiurnalArrivals(rate=1.0, amplitude=1.0)
        with pytest.raises(GenerationError):
            DiurnalArrivals(rate=1.0, period=0.0)
