"""Tests for SLO policies and verdicts."""

from __future__ import annotations

import pytest

from repro.core.errors import LoadGenError
from repro.loadgen import (
    LoadPlan,
    LoadRunner,
    SLOCheck,
    SLOPolicy,
    SLOVerdict,
    SyntheticTarget,
)


def _report(**runner_options):
    runner = LoadRunner(
        SyntheticTarget(mean_service=0.005),
        concurrency=runner_options.pop("concurrency", 4),
        **runner_options,
    )
    return runner.run(LoadPlan(rate=100.0, duration=3.0, seed=1))


class TestSLOPolicy:
    def test_default_policy_passes_an_underloaded_run(self):
        verdict = SLOPolicy().evaluate(_report())
        assert verdict.passed
        assert verdict.reasons() == []
        names = [check.name for check in verdict.checks]
        assert names == ["achieved_rate", "shed_fraction", "error_fraction"]

    def test_latency_budgets_add_checks(self):
        policy = SLOPolicy(
            p50_budget=1.0, p95_budget=1.0, p99_budget=1e-9
        )
        verdict = policy.evaluate(_report())
        names = [check.name for check in verdict.checks]
        assert "latency_p50" in names
        assert "latency_p95" in names
        assert not verdict.passed  # the 1ns p99 budget must fail
        assert any("latency_p99" in reason for reason in verdict.reasons())

    def test_overload_fails_rate_and_shed(self):
        report = LoadRunner(
            SyntheticTarget(mean_service=0.2, distribution="constant"),
            concurrency=1,
            queue_capacity=2,
        ).run(LoadPlan(arrival="constant", rate=50.0, duration=2.0))
        verdict = SLOPolicy().evaluate(report)
        assert not verdict.passed
        failing = {check.name for check in verdict.checks if not check.ok}
        assert "achieved_rate" in failing
        assert "shed_fraction" in failing

    def test_validation(self):
        with pytest.raises(LoadGenError):
            SLOPolicy(min_rate_fraction=1.5)
        with pytest.raises(LoadGenError):
            SLOPolicy(max_shed_fraction=-0.1)
        with pytest.raises(LoadGenError):
            SLOPolicy(p99_budget=0.0)

    def test_as_dict_round_trips_fields(self):
        policy = SLOPolicy(p99_budget=0.25, max_shed_fraction=0.1)
        payload = policy.as_dict()
        assert payload["p99_budget"] == 0.25
        assert payload["max_shed_fraction"] == 0.1


class TestSLOVerdict:
    def test_describe_shows_direction_and_outcome(self):
        check = SLOCheck(
            name="latency_p99", ok=False, observed=0.5, budget=0.1
        )
        assert check.describe() == "latency_p99: 0.5 <= 0.1 [VIOLATED]"

    def test_as_dict_is_json_ready(self):
        import json

        verdict = SLOVerdict(
            passed=False,
            checks=[SLOCheck("x", True, 1.0, 2.0)],
        )
        payload = json.loads(json.dumps(verdict.as_dict()))
        assert payload["passed"] is False
        assert payload["checks"][0]["name"] == "x"
