"""Tests for the structured tracing subsystem."""

from __future__ import annotations

import json
import threading

import pytest

from repro.observability import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    summarize_spans,
    trace_span,
)


class TestSpan:
    def test_set_and_incr_chain(self):
        span = Span("s")
        assert span.set(a=1).incr("n").incr("n", 2) is span
        assert span.attrs == {"a": 1}
        assert span.counters == {"n": 3}

    def test_self_seconds_excludes_children(self):
        span = Span("parent", duration_seconds=1.0)
        span.children.append(Span("child", duration_seconds=0.3))
        span.children.append(Span("child", duration_seconds=0.5))
        assert span.self_seconds == pytest.approx(0.2)

    def test_self_seconds_clamped_at_zero(self):
        span = Span("parent", duration_seconds=0.1)
        span.children.append(Span("child", duration_seconds=0.2))
        assert span.self_seconds == 0.0

    def test_walk_is_depth_first(self):
        root = Span("a")
        left = Span("b")
        left.children.append(Span("c"))
        root.children.append(left)
        root.children.append(Span("d"))
        assert [span.name for span in root.walk()] == ["a", "b", "c", "d"]

    def test_dict_roundtrip(self):
        root = Span("a", attrs={"k": "v"}, counters={"n": 2}, duration_seconds=0.5)
        root.children.append(Span("b", duration_seconds=0.25))
        restored = Span.from_dict(root.to_dict())
        assert restored.name == "a"
        assert restored.attrs == {"k": "v"}
        assert restored.counters == {"n": 2}
        assert restored.duration_seconds == 0.5
        assert [child.name for child in restored.children] == ["b"]

    def test_to_dict_omits_empty_fields(self):
        payload = Span("bare", duration_seconds=0.1).to_dict()
        assert set(payload) == {"name", "duration_seconds"}


class TestTracerRecording:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                pass
        roots = tracer.roots()
        assert [root.name for root in roots] == ["outer"]
        assert [child.name for child in roots[0].children] == [
            "inner-1", "inner-2",
        ]
        assert roots[0].duration_seconds >= sum(
            child.duration_seconds for child in roots[0].children
        )

    def test_span_attrs_and_annotations(self):
        tracer = Tracer()
        with tracer.span("s", engine="dbms") as span:
            span.set(volume=10)
            tracer.annotate(extra=True)
            tracer.count("records", 5)
        (root,) = tracer.roots()
        assert root.attrs == {"engine": "dbms", "volume": 10, "extra": True}
        assert root.counters == {"records": 5}

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (root,) = tracer.roots()
        assert root.attrs["error"] == "ValueError"
        assert root.duration_seconds >= 0

    def test_current_tracks_the_innermost_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_clear_drops_roots(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.roots() == []

    def test_to_jsonl_one_object_per_root(self):
        tracer = Tracer()
        for name in ("first", "second"):
            with tracer.span(name):
                pass
        lines = tracer.to_jsonl().splitlines()
        assert [json.loads(line)["name"] for line in lines] == [
            "first", "second",
        ]

    def test_threads_record_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def record(index: int) -> None:
            barrier.wait(timeout=5)
            with tracer.span("worker", index=index):
                with tracer.span("step"):
                    pass

        threads = [
            threading.Thread(target=record, args=(index,)) for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        roots = tracer.roots()
        assert len(roots) == 4
        assert {root.name for root in roots} == {"worker"}
        # No cross-thread interleaving: every worker kept its own child.
        for root in roots:
            assert [child.name for child in root.children] == ["step"]


class TestGraft:
    def _tree(self, name: str) -> Span:
        return Span.from_dict({"name": name, "duration_seconds": 0.1})

    def test_graft_under_the_open_span(self):
        tracer = Tracer()
        with tracer.span("parent"):
            tracer.graft([self._tree("worker-0"), self._tree("worker-1")])
        (root,) = tracer.roots()
        assert [child.name for child in root.children] == [
            "worker-0", "worker-1",
        ]

    def test_graft_without_open_span_files_roots(self):
        tracer = Tracer()
        tracer.graft([self._tree("orphan")])
        assert [root.name for root in tracer.roots()] == ["orphan"]

    def test_disabled_tracer_ignores_grafts(self):
        tracer = Tracer(enabled=False)
        tracer.graft([self._tree("ignored")])
        assert tracer.roots() == []


class TestDisabledTracer:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("invisible") as span:
            span.set(a=1).incr("n")
        assert NULL_TRACER.roots() == []
        assert NULL_TRACER.current() is None

    def test_null_span_is_falsy(self):
        assert not NULL_SPAN
        with NULL_TRACER.span("x") as span:
            assert span is NULL_SPAN

    def test_disabled_span_context_is_shared(self):
        # Zero allocation when off: the same context object every time.
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_annotate_and_count_are_noops(self):
        NULL_TRACER.annotate(a=1)
        NULL_TRACER.count("n")
        assert NULL_TRACER.roots() == []


class TestActivation:
    def test_default_is_the_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
            with trace_span("via-helper"):
                pass
        assert current_tracer() is NULL_TRACER
        assert [root.name for root in tracer.roots()] == ["via-helper"]

    def test_nested_activation_restores_the_outer_tracer(self):
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            with inner.activate():
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_activation_is_thread_local(self):
        tracer = Tracer()
        seen: list[Tracer] = []
        with tracer.activate():
            thread = threading.Thread(
                target=lambda: seen.append(current_tracer())
            )
            thread.start()
            thread.join(timeout=5)
        assert seen == [NULL_TRACER]

    def test_trace_span_without_activation_is_free(self):
        with trace_span("nowhere") as span:
            assert not span


class TestSummarize:
    def test_aggregates_by_name_across_the_forest(self):
        first = Span("run", duration_seconds=1.0)
        first.children.append(Span("repeat", duration_seconds=0.4))
        first.children.append(Span("repeat", duration_seconds=0.5))
        second = Span("repeat", duration_seconds=0.1)
        summary = summarize_spans([first, second])
        assert summary["run"] == {"count": 1, "total_seconds": 1.0}
        assert summary["repeat"]["count"] == 3
        assert summary["repeat"]["total_seconds"] == pytest.approx(1.0)

    def test_empty_forest(self):
        assert summarize_spans([]) == {}
