"""Tests for the shared utilities in repro._util."""

from __future__ import annotations

import time

import pytest

from repro._util import (
    Stopwatch,
    batched,
    chunked,
    format_size,
    mean,
    parse_size,
    percentile,
)


class TestParseSize:
    def test_plain_numbers_are_bytes(self):
        assert parse_size(1024) == 1024
        assert parse_size("123") == 123
        assert parse_size(1.5) == 1

    def test_units(self):
        assert parse_size("10KB") == 10_000
        assert parse_size("10MB") == 10_000_000
        assert parse_size("2GB") == 2_000_000_000
        assert parse_size("1TB") == 10**12
        assert parse_size("1PB") == 10**15

    def test_case_and_whitespace_insensitive(self):
        assert parse_size(" 1.5 gb ") == 1_500_000_000
        assert parse_size("3mb") == 3_000_000

    def test_bare_b_unit(self):
        assert parse_size("512b") == 512

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            parse_size("lots")


class TestFormatSize:
    def test_scales(self):
        assert format_size(500) == "500.0 B"
        assert format_size(1500) == "1.5 KB"
        assert format_size(2_500_000) == "2.5 MB"
        assert format_size(3_200_000_000) == "3.2 GB"

    def test_petabytes(self):
        assert format_size(2e15) == "2.0 PB"

    def test_roundtrip_order_of_magnitude(self):
        for value in (1, 10_000, 123_456_789):
            parsed = parse_size(format_size(value).replace(" ", ""))
            assert parsed == pytest.approx(value, rel=0.1)


class TestChunked:
    def test_even_split(self):
        assert chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder_goes_to_early_chunks(self):
        chunks = chunked([1, 2, 3, 4, 5], 3)
        assert [len(c) for c in chunks] == [2, 2, 1]

    def test_more_chunks_than_items(self):
        chunks = chunked([1], 3)
        assert chunks == [[1], [], []]

    def test_empty_input_yields_all_empty_chunks(self):
        assert chunked([], 4) == [[], [], [], []]

    def test_single_chunk_is_whole_sequence(self):
        assert chunked([1, 2, 3], 1) == [[1, 2, 3]]

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestBatched:
    def test_batches(self):
        assert list(batched([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]

    def test_exact_multiple(self):
        assert list(batched([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_empty(self):
        assert list(batched([], 3)) == []

    def test_works_on_iterators(self):
        assert list(batched(iter(range(3)), 2)) == [[0, 1], [2]]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batched([1], 0))


class TestStopwatch:
    def test_measures_elapsed(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed >= 0.01

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.005)
        assert watch.elapsed >= 0.005

    def test_elapsed_while_running(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        assert watch.elapsed >= 0.005
        watch.stop()

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_accumulates_across_restarts(self):
        watch = Stopwatch().start()
        time.sleep(0.004)
        first = watch.stop()
        watch.start()
        time.sleep(0.004)
        total = watch.stop()
        assert total > first


class TestPercentileAndMean:
    def test_percentile_endpoints(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 4.0

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 0.5) == 5.0

    def test_percentile_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])
