"""Tests for bounded admission, quotas, and load shedding."""

from __future__ import annotations

import pytest

from repro.core.errors import ServiceError
from repro.core.spec import BenchmarkSpec
from repro.service.jobs import Job
from repro.service.queue import AdmissionError, AdmissionQueue


def make_job(job_id: str, *, client: str = "anonymous",
             priority: int = 0) -> Job:
    return Job(spec=BenchmarkSpec("micro-wordcount"), job_id=job_id,
               client=client, priority=priority)


class TestAdmission:
    def test_capacity_rejection(self):
        queue = AdmissionQueue(capacity=2)
        queue.submit(make_job("j1"))
        queue.submit(make_job("j2"))
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(make_job("j3"))
        assert excinfo.value.reason == "queue_full"
        assert excinfo.value.retry_after > 0

    def test_retry_hint_grows_with_consecutive_rejections(self):
        queue = AdmissionQueue(capacity=1)
        queue.submit(make_job("j1", client="alice"))
        hints = []
        for attempt in range(3):
            with pytest.raises(AdmissionError) as excinfo:
                queue.submit(make_job(f"r{attempt}", client="alice"))
            hints.append(excinfo.value.retry_after)
        assert hints == sorted(hints)
        assert hints[0] < hints[-1]

    def test_rejection_count_resets_on_success(self):
        queue = AdmissionQueue(capacity=1)
        queue.submit(make_job("j1", client="alice"))
        with pytest.raises(AdmissionError) as first:
            queue.submit(make_job("r1", client="alice"))
        with pytest.raises(AdmissionError) as second:
            queue.submit(make_job("r2", client="alice"))
        assert second.value.retry_after > first.value.retry_after
        queue.take(timeout=0)  # drain, freeing capacity
        queue.submit(make_job("j2", client="alice"))  # resets the count
        queue.take(timeout=0)
        queue.submit(make_job("j3", client="alice"))
        with pytest.raises(AdmissionError) as fresh:
            queue.submit(make_job("r3", client="alice"))
        # The hint schedule is deterministic per client, so a fresh
        # first rejection reproduces the original first hint exactly.
        assert fresh.value.retry_after == first.value.retry_after

    def test_quota_rejection_counts_active_jobs(self):
        queue = AdmissionQueue(per_client_quota=1)
        queue.submit(make_job("j1", client="alice"))
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(make_job("j2", client="alice"))
        assert excinfo.value.reason == "quota_exceeded"
        # A different client is unaffected.
        queue.submit(make_job("j3", client="bob"))
        # Releasing the slot re-opens admission (quota counts active
        # jobs, not historical ones).
        queue.release("alice")
        queue.submit(make_job("j4", client="alice"))
        assert queue.active("alice") == 1

    def test_closed_queue_sheds_everything(self):
        queue = AdmissionQueue()
        queue.close()
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(make_job("j1"))
        assert excinfo.value.reason == "closed"
        assert excinfo.value.retry_after == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ServiceError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ServiceError):
            AdmissionQueue(per_client_quota=0)

    def test_submit_stamps_queue_depth(self):
        queue = AdmissionQueue()
        first = make_job("j1")
        second = make_job("j2")
        queue.submit(first)
        queue.submit(second)
        assert first.queue_depth_at_submit == 1
        assert second.queue_depth_at_submit == 2


class TestDraining:
    def test_priority_order_then_fifo(self):
        queue = AdmissionQueue()
        queue.submit(make_job("low", priority=0))
        queue.submit(make_job("high", priority=5))
        queue.submit(make_job("also-low", priority=0))
        order = [queue.take(timeout=0).job_id for _ in range(3)]
        assert order == ["high", "low", "also-low"]

    def test_take_times_out_on_empty(self):
        queue = AdmissionQueue()
        assert queue.take(timeout=0) is None
        assert queue.take(timeout=0.01) is None

    def test_cancelled_jobs_are_skipped(self):
        queue = AdmissionQueue()
        victim = make_job("victim")
        survivor = make_job("survivor")
        queue.submit(victim)
        queue.submit(survivor)
        found = queue.cancel("victim")
        assert found is victim
        found.transition("cancelled")  # caller owns the transition
        assert queue.depth() == 1
        assert queue.take(timeout=0).job_id == "survivor"
        assert queue.take(timeout=0) is None

    def test_cancel_unknown_job_returns_none(self):
        queue = AdmissionQueue()
        assert queue.cancel("nope") is None
