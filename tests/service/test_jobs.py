"""Tests for the job state machine and the append-only job log."""

from __future__ import annotations

import pytest

from repro.core.errors import ServiceError
from repro.core.spec import SPEC_VERSION, BenchmarkSpec
from repro.service.jobs import JOB_STATES, TERMINAL_STATES, Job, JobLog


def make_job(job_id: str = "j0001", **spec_kwargs) -> Job:
    return Job(spec=BenchmarkSpec("micro-wordcount", **spec_kwargs),
               job_id=job_id)


class TestJobStateMachine:
    def test_happy_path(self):
        job = make_job()
        assert job.state == "queued"
        assert not job.terminal
        job.transition("admitted")
        job.transition("running")
        job.transition("done")
        assert job.terminal
        assert [state for state, _ in job.history] == [
            "queued", "admitted", "running", "done",
        ]

    def test_illegal_jump_raises(self):
        job = make_job()
        with pytest.raises(ServiceError, match="cannot go"):
            job.transition("running")  # must be admitted first

    def test_terminal_states_are_final(self):
        job = make_job()
        job.transition("cancelled")
        for state in JOB_STATES:
            with pytest.raises(ServiceError):
                job.transition(state)

    def test_cancel_only_from_non_terminal(self):
        job = make_job()
        job.transition("admitted")
        job.transition("running")
        job.transition("cancelled")
        assert job.state in TERMINAL_STATES

    def test_unknown_state_rejected(self):
        job = make_job()
        with pytest.raises(ServiceError, match="cannot go"):
            job.transition("paused")

    def test_queue_wait_seconds(self):
        job = make_job()
        assert job.queue_wait_seconds() is None
        job.transition("admitted", at=job.submitted_at + 0.25)
        assert job.queue_wait_seconds() == pytest.approx(0.25)

    def test_timestamps_keep_first_entry(self):
        job = make_job()
        stamps = job.timestamps
        assert stamps["queued"] == job.submitted_at


class TestJobSerialization:
    def test_round_trip(self):
        job = make_job(volume=120, engines=["mapreduce"], repeats=2)
        job.transition("admitted")
        payload = job.as_dict()
        assert payload["spec"]["spec_version"] == SPEC_VERSION
        clone = Job.from_dict(payload)
        assert clone.job_id == job.job_id
        assert clone.state == "admitted"
        assert clone.spec == job.spec
        assert clone.history == job.history

    def test_error_fields_survive(self):
        job = make_job()
        job.transition("admitted")
        job.transition("running")
        job.error_type = "ExecutionError"
        job.error_message = "boom"
        job.transition("failed")
        clone = Job.from_dict(job.as_dict())
        assert clone.error_type == "ExecutionError"
        assert clone.error_message == "boom"


class TestJobLog:
    def test_replay_reconstructs_lifecycle(self, tmp_path):
        log = JobLog(tmp_path)
        job = make_job()
        log.append(job, "queued")
        job.transition("admitted")
        log.append(job, "admitted")
        job.transition("running")
        log.append(job, "running")
        job.transition("done")
        log.append(job, "done", detail={
            "record_ids": ["r0001"], "failure_count": 1,
        })

        replayed = log.replay()["j0001"]
        assert replayed.state == "done"
        assert replayed.record_ids == ["r0001"]
        assert replayed.failure_count == 1
        assert [state for state, _ in replayed.history] == [
            "queued", "admitted", "running", "done",
        ]

    def test_replay_applies_error_detail(self, tmp_path):
        log = JobLog(tmp_path)
        job = make_job()
        log.append(job, "queued")
        job.transition("admitted")
        log.append(job, "admitted")
        job.transition("running")
        log.append(job, "running")
        job.transition("failed")
        log.append(job, "failed", detail={
            "error_type": "ExecutionError", "error_message": "boom",
        })
        replayed = log.replay()["j0001"]
        assert replayed.state == "failed"
        assert replayed.error_type == "ExecutionError"
        assert replayed.error_message == "boom"

    def test_get_by_unique_prefix(self, tmp_path):
        log = JobLog(tmp_path)
        log.append(make_job("j0001"), "queued")
        log.append(make_job("j0002"), "queued")
        assert log.get("j0002").job_id == "j0002"
        with pytest.raises(ServiceError, match="ambiguous"):
            log.get("j0")
        with pytest.raises(ServiceError, match="no job"):
            log.get("j9999")

    def test_corrupt_log_fails_loudly(self, tmp_path):
        log = JobLog(tmp_path)
        log.append(make_job(), "queued")
        with log.path.open("a") as handle:
            handle.write("not json\n")
        with pytest.raises(ServiceError, match="corrupt job log"):
            log.events()

    def test_empty_log_replays_empty(self, tmp_path):
        assert JobLog(tmp_path).replay() == {}
