"""End-to-end tests for the orchestrator and the service client.

The service's contract: same results as the direct runner path (it owns
the lifecycle, not the semantics), plus admission control, cancellation,
and an auditable job log.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import ServiceError, SpecError
from repro.core.prescription import builtin_repository
from repro.core.results import RunResult, TaskFailure
from repro.core.spec import BenchmarkSpec
from repro.core.test_generator import TestGenerator
from repro.execution.runner import RunnerOptions, RunTask, TestRunner
from repro.observability import Tracer
from repro.service import (
    AdmissionError,
    AdmissionQueue,
    JobLog,
    Orchestrator,
    ServiceClient,
)


def make_spec(**overrides) -> BenchmarkSpec:
    defaults = dict(prescription="micro-wordcount",
                    engines=["mapreduce"], volume=80)
    defaults.update(overrides)
    return BenchmarkSpec(**defaults)


class TestParityWithDirectRunner:
    def test_submit_wait_result_matches_run_many(self, tmp_path):
        """A service job yields the same outcome and record shape as the
        equivalent direct ``TestRunner.run_many`` call."""
        spec = make_spec(repeats=2, record=True,
                         store_dir=str(tmp_path / "service"))

        with ServiceClient(store_dir=str(tmp_path / "service"),
                           log_jobs=False) as client:
            service_outcomes = client.submit(spec).result(timeout=60)

        repository = builtin_repository()
        runner = TestRunner(
            test_generator=TestGenerator(repository),
            options=RunnerOptions(repeats=2),
        )
        try:
            from repro.analysis.store import RunStore

            runner.store = RunStore(tmp_path / "direct")
            prescription = repository.get(spec.prescription)
            direct_outcomes = runner.run_many(
                [RunTask(prescription, "mapreduce", spec.volume, {})]
            )
        finally:
            runner.close()

        assert len(service_outcomes) == len(direct_outcomes) == 1
        service_result, direct_result = (
            service_outcomes[0], direct_outcomes[0],
        )
        assert isinstance(service_result, RunResult)
        assert service_result.test_name == direct_result.test_name
        assert service_result.engine == direct_result.engine
        assert set(service_result.metrics) == set(direct_result.metrics)
        for name in service_result.metrics:
            assert len(service_result.metrics[name].samples) == 2

        # Recorded entries land in the *same comparable series*: the
        # fingerprint is a pure function of the request, not of the
        # path (service vs. direct) that executed it.
        from repro.analysis.store import RunStore

        service_record = RunStore(tmp_path / "service").latest()
        direct_record = RunStore(tmp_path / "direct").latest()
        assert service_record.fingerprint == direct_record.fingerprint
        assert service_record.series == direct_record.series
        assert (
            set(service_record.result["metrics"])
            == set(direct_record.result["metrics"])
        )
        assert (
            set(service_record.as_dict()) == set(direct_record.as_dict())
        )

    def test_string_spec_submission(self):
        with ServiceClient(log_jobs=False) as client:
            outcomes = client.submit("micro-wordcount").result(timeout=60)
        assert all(isinstance(o, RunResult) for o in outcomes)


class TestConcurrency:
    def test_eight_concurrent_jobs_all_done(self, tmp_path):
        tracer = Tracer()
        with ServiceClient(schedulers=4, store_dir=str(tmp_path),
                           tracer=tracer) as client:
            handles = [
                client.submit(make_spec(volume=60), client=f"c{i % 2}")
                for i in range(8)
            ]
            jobs = [handle.wait(timeout=120) for handle in handles]
        assert [job.state for job in jobs] == ["done"] * 8
        assert len({job.job_id for job in jobs}) == 8

        # Every job ran under a "job" span carrying the queue-depth
        # counter observed at submission.
        job_spans = [
            span for span in tracer.roots() if span.name == "job"
        ]
        assert len(job_spans) == 8
        assert all("queue.depth" in span.counters for span in job_spans)
        assert max(
            span.counters["queue.depth"] for span in job_spans
        ) >= 1
        assert all(
            "queue_wait_seconds" in span.attrs for span in job_spans
        )

    def test_unique_record_ids_under_concurrency(self, tmp_path):
        from repro.analysis.store import RunStore

        with ServiceClient(schedulers=4,
                           store_dir=str(tmp_path)) as client:
            handles = [
                client.submit(make_spec(volume=60, record=True,
                                        store_dir=str(tmp_path)))
                for _ in range(8)
            ]
            jobs = [handle.wait(timeout=120) for handle in handles]
        record_ids = [rid for job in jobs for rid in job.record_ids]
        assert len(record_ids) == 8
        assert len(set(record_ids)) == 8
        assert len(RunStore(tmp_path).records()) == 8


class TestLifecycle:
    def test_cancel_mid_queue(self, tmp_path):
        # An unstarted orchestrator never drains, so the job stays
        # queued and cancellation must win.
        orchestrator = Orchestrator(store_dir=str(tmp_path))
        job = orchestrator.submit(make_spec())
        assert orchestrator.status(job.job_id) == "queued"
        assert orchestrator.cancel(job.job_id) is True
        assert job.state == "cancelled"
        # Cancelling again (or a terminal job) is a no-op.
        assert orchestrator.cancel(job.job_id) is False
        with pytest.raises(ServiceError, match="cancelled"):
            ServiceClient(orchestrator=orchestrator).handle(
                job.job_id
            ).result(timeout=1)
        orchestrator.shutdown()

    def test_quota_rejection_surfaces_retry_hint(self, tmp_path):
        orchestrator = Orchestrator(
            queue=AdmissionQueue(per_client_quota=1),
            store_dir=str(tmp_path),
        )
        orchestrator.submit(make_spec(), client="alice")
        with pytest.raises(AdmissionError) as excinfo:
            orchestrator.submit(make_spec(), client="alice")
        assert excinfo.value.reason == "quota_exceeded"
        assert excinfo.value.retry_after > 0
        orchestrator.shutdown()

    def test_invalid_spec_rejected_at_the_door(self, tmp_path):
        orchestrator = Orchestrator(store_dir=str(tmp_path))
        with pytest.raises(SpecError):
            orchestrator.submit(BenchmarkSpec("no-such-prescription"))
        with pytest.raises(SpecError):
            orchestrator.submit(make_spec(repeats=0))
        orchestrator.shutdown()

    def test_failure_capture_continue(self, tmp_path):
        # The injected latency is a real sleep, so the task reliably
        # outlives its budget (a cpu-bound task this short can finish
        # within one GIL switch interval and dodge the timeout).
        spec = make_spec(task_timeout=0.01, inject_latency=0.3,
                         on_error="continue")
        with ServiceClient(store_dir=str(tmp_path)) as client:
            handle = client.submit(spec)
            job = handle.wait(timeout=60)
            outcomes = handle.result(timeout=60)
        # The batch completed: the job is done, the captured failure
        # rides along in the outcomes rather than failing the job.
        assert job.state == "done"
        assert job.failure_count == 1
        assert isinstance(outcomes[0], TaskFailure)

    def test_runner_exception_fails_the_job(self, tmp_path):
        spec = make_spec(task_timeout=0.01, inject_latency=0.3,
                         on_error="abort")
        with ServiceClient(store_dir=str(tmp_path)) as client:
            handle = client.submit(spec)
            job = handle.wait(timeout=60)
            with pytest.raises(ServiceError, match="failed"):
                handle.result(timeout=60)
        assert job.state == "failed"
        assert job.error_type == "TaskTimeoutError"
        assert "budget" in (job.error_message or "")

    def test_wait_timeout(self, tmp_path):
        orchestrator = Orchestrator(store_dir=str(tmp_path))
        job = orchestrator.submit(make_spec())
        with pytest.raises(ServiceError, match="timed out"):
            orchestrator.wait(job.job_id, timeout=0.01)
        orchestrator.shutdown(drain=False)

    def test_unknown_job_raises(self, tmp_path):
        orchestrator = Orchestrator(store_dir=str(tmp_path))
        with pytest.raises(ServiceError, match="unknown job"):
            orchestrator.status("j9999")
        orchestrator.shutdown()

    def test_shutdown_rejects_new_submissions(self, tmp_path):
        orchestrator = Orchestrator(store_dir=str(tmp_path)).start()
        orchestrator.shutdown()
        with pytest.raises(AdmissionError) as excinfo:
            orchestrator.submit(make_spec())
        assert excinfo.value.reason == "closed"


class TestEventsAndLog:
    def test_watch_yields_full_lifecycle(self, tmp_path):
        with ServiceClient(store_dir=str(tmp_path)) as client:
            handle = client.submit(make_spec(volume=60))
            states = [event.state for event in handle.events()]
        assert states == ["queued", "admitted", "running", "done"]

    def test_subscribe_sees_transitions(self, tmp_path):
        seen: list[str] = []
        lock = threading.Lock()

        def observer(event):
            with lock:
                seen.append(f"{event.job_id}:{event.state}")

        with ServiceClient(store_dir=str(tmp_path)) as client:
            client.subscribe(observer)
            handle = client.submit(make_spec(volume=60))
            handle.wait(timeout=60)
        assert f"{handle.job_id}:queued" in seen
        assert f"{handle.job_id}:done" in seen

    def test_job_log_replay_matches_live_state(self, tmp_path):
        with ServiceClient(store_dir=str(tmp_path)) as client:
            handle = client.submit(
                make_spec(volume=60, record=True,
                          store_dir=str(tmp_path))
            )
            job = handle.wait(timeout=60)
        replayed = JobLog(tmp_path).get(job.job_id)
        assert replayed.state == "done"
        assert replayed.record_ids == job.record_ids
        assert replayed.spec == job.spec


class TestServiceClient:
    def test_context_manager_owns_private_orchestrator(self, tmp_path):
        client = ServiceClient(store_dir=str(tmp_path))
        with client:
            client.submit(make_spec(volume=60)).wait(timeout=60)
        # Closed on exit: further submissions are shed.
        with pytest.raises(AdmissionError):
            client.orchestrator.submit(make_spec())

    def test_shared_orchestrator_survives_client_close(self, tmp_path):
        orchestrator = Orchestrator(store_dir=str(tmp_path)).start()
        with ServiceClient(orchestrator=orchestrator) as client:
            client.submit(make_spec(volume=60)).wait(timeout=60)
        # The shared orchestrator is still open for business.
        job = orchestrator.submit(make_spec(volume=60))
        orchestrator.wait(job.job_id, timeout=60)
        assert job.state == "done"
        orchestrator.shutdown()

    def test_orchestrator_and_options_are_exclusive(self, tmp_path):
        orchestrator = Orchestrator(store_dir=str(tmp_path))
        with pytest.raises(ServiceError, match="not both"):
            ServiceClient(orchestrator=orchestrator, schedulers=4)
        orchestrator.shutdown()
