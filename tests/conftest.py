"""Shared fixtures.

Expensive artifacts (corpus loads, LDA fits) are session-scoped so the
suite stays fast; tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.datagen.corpus import (
    load_retail_tables,
    load_social_graph,
    load_text_corpus,
)
from repro.datagen.text import LdaTextGenerator


@pytest.fixture(scope="session")
def text_corpus():
    """A small embedded text corpus (120 docs, 40 words each)."""
    return load_text_corpus(num_documents=120, words_per_document=40)


@pytest.fixture(scope="session")
def social_graph():
    """The embedded social graph at reduced size."""
    return load_social_graph(num_vertices=200, edges_per_vertex=3)


@pytest.fixture(scope="session")
def retail_tables():
    """The embedded retail tables at reduced size."""
    return load_retail_tables(num_customers=80, num_products=40, num_orders=300)


@pytest.fixture(scope="session")
def fitted_lda(text_corpus):
    """An LDA text generator fitted once for the whole session."""
    generator = LdaTextGenerator(num_topics=4, iterations=10, seed=7)
    generator.fit(text_corpus)
    return generator
