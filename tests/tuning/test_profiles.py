"""Tuning profiles: knob surfaces, validation, and fingerprints."""

from __future__ import annotations

import pytest

import repro  # noqa: F401 - triggers default registration
from repro.core.errors import ReproError, SpecError, TuningError
from repro.tuning.profiles import (
    DATASET_CACHE_KNOB,
    ENGINE_KNOBS,
    ONE_OFF_PREFIX,
    TuningProfile,
    available_profiles,
    builtin_profiles,
    get_profile,
    normal,
    one_off_profiles,
    optimized,
)


class TestErrorHierarchy:
    def test_tuning_error_is_a_spec_error(self):
        assert issubclass(TuningError, SpecError)
        assert issubclass(TuningError, ReproError)


class TestNormalProfile:
    @pytest.mark.parametrize("engine", sorted(ENGINE_KNOBS))
    def test_normal_is_bare(self, engine):
        profile = normal(engine)
        assert profile.is_normal
        assert profile.engine_options() == {}
        assert profile.fingerprint() is None

    def test_normal_configuration_is_none_on_row_layout(self):
        # Load-bearing: a bare engine is what every historical run
        # used, so normal/row must not wrap the engine at all.
        assert normal("dbms").configuration("row") is None

    def test_normal_configuration_carries_layout_options(self):
        configuration = normal("dbms").configuration("columnar")
        assert configuration is not None
        assert configuration.options["layout"] == "columnar"

    def test_unknown_engine_normal_is_allowed(self):
        assert normal("custom-engine").validate().is_normal


class TestOptimizedProfile:
    @pytest.mark.parametrize("engine", ["dbms", "mapreduce", "nosql", "dfs"])
    def test_optimized_is_tuned_and_buildable(self, engine):
        profile = optimized(engine).validate()
        assert not profile.is_normal
        assert profile.fingerprint()["profile"] == "optimized"
        assert set(profile.knobs) <= set(ENGINE_KNOBS[engine])

    def test_streaming_optimized_equals_normal(self):
        assert optimized("streaming").is_normal

    def test_unknown_engine_optimized_equals_normal(self):
        assert optimized("custom-engine").is_normal

    def test_fingerprint_knobs_are_sorted(self):
        fingerprint = optimized("dbms").fingerprint()
        assert list(fingerprint["knobs"]) == sorted(fingerprint["knobs"])

    def test_profile_knobs_win_over_layout_options(self):
        # optimized dbms pins layout=columnar; asking for row layout
        # must not undo the profile's choice.
        configuration = optimized("dbms").configuration("row")
        assert configuration.options["layout"] == "columnar"


class TestValidation:
    def test_unknown_knob_rejected(self):
        with pytest.raises(TuningError, match="unknown knob"):
            TuningProfile("dbms", "x", {"turbo": True}).validate()

    def test_unknown_engine_with_knobs_rejected(self):
        with pytest.raises(TuningError, match="no tuning surface"):
            TuningProfile("spark", "x", {"layout": "columnar"}).validate()

    def test_unbuildable_knob_value_rejected(self):
        with pytest.raises(TuningError, match="does not build"):
            TuningProfile("dbms", "x", {"layout": "diagonal"}).validate()

    def test_dataset_cache_budget_must_be_positive_int(self):
        with pytest.raises(TuningError, match="positive integer"):
            TuningProfile(
                "dbms", "x", {DATASET_CACHE_KNOB: -1}
            ).validate()
        with pytest.raises(TuningError, match="positive integer"):
            TuningProfile(
                "dbms", "x", {DATASET_CACHE_KNOB: "lots"}
            ).validate()

    def test_dataset_cache_budget_is_harness_level(self):
        profile = TuningProfile(
            "dbms", "x", {DATASET_CACHE_KNOB: 1 << 20}
        ).validate()
        assert profile.engine_options() == {}
        assert profile.dataset_cache_bytes == 1 << 20
        assert not profile.is_normal  # it still forks the series


class TestRegistry:
    def test_get_profile_resolves_builtins(self):
        assert get_profile("dbms", "normal").is_normal
        assert get_profile("dbms", "optimized").knobs["layout"] == "columnar"

    def test_get_profile_resolves_one_offs(self):
        profile = get_profile("mapreduce", "normal+combine_batch_records")
        assert profile.knobs == {"combine_batch_records": 1024}

    def test_one_off_for_wrong_engine_rejected(self):
        with pytest.raises(TuningError, match="no optimized knob"):
            get_profile("dbms", "normal+combine_batch_records")

    def test_unknown_profile_rejected(self):
        with pytest.raises(TuningError, match="unknown tuning profile"):
            get_profile("dbms", "hyperspeed")

    def test_one_offs_cover_every_optimized_knob(self):
        for engine in ("dbms", "mapreduce"):
            knobs = {
                profile.name[len(ONE_OFF_PREFIX):]
                for profile in one_off_profiles(engine)
            }
            assert knobs == set(optimized(engine).knobs)

    def test_single_knob_engines_have_no_one_offs(self):
        assert one_off_profiles("nosql") == []
        assert one_off_profiles("dfs") == []
        assert one_off_profiles("streaming") == []

    def test_available_profiles_all_resolve(self):
        for engine in sorted(ENGINE_KNOBS):
            for name in available_profiles(engine):
                assert get_profile(engine, name).name == name

    def test_builtin_profiles_table(self):
        table = builtin_profiles()
        assert set(table) == set(ENGINE_KNOBS)
        for engine, column in table.items():
            assert "normal" in column and "optimized" in column


class TestSerialization:
    def test_round_trip(self):
        profile = optimized("mapreduce")
        clone = TuningProfile.from_dict(profile.as_dict())
        assert clone == profile

    def test_knobs_do_not_alias(self):
        profile = optimized("dbms")
        payload = profile.as_dict()
        payload["knobs"]["layout"] = "row"
        assert profile.knobs["layout"] == "columnar"
