"""The ablation driver: matrix expansion, recording, verdicts."""

from __future__ import annotations

import json

import pytest

import repro  # noqa: F401 - triggers default registration
from repro.analysis.store import RunStore
from repro.core.errors import TuningError
from repro.tuning import render_ablation, resolve_workloads, run_ablation


class TestResolveWorkloads:
    def test_exact_names_pass_through(self):
        assert resolve_workloads("micro-wordcount") == ["micro-wordcount"]

    def test_aliases_resolve(self):
        assert resolve_workloads("relational,micro") == [
            "database-aggregate-join",
            "micro-wordcount",
        ]

    def test_unique_prefix_resolves(self):
        assert resolve_workloads("search-page") == ["search-pagerank"]

    def test_ambiguous_prefix_rejected(self):
        with pytest.raises(TuningError, match="ambiguous"):
            resolve_workloads("micro-")

    def test_unknown_rejected(self):
        with pytest.raises(TuningError, match="unknown workload"):
            resolve_workloads("tpc-h")

    def test_empty_rejected(self):
        with pytest.raises(TuningError, match="no workloads"):
            resolve_workloads(" , ")

    def test_duplicates_collapse(self):
        assert resolve_workloads("micro,micro-wordcount") == [
            "micro-wordcount"
        ]


@pytest.fixture(scope="module")
def small_report(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("ablate-store")
    return run_ablation(
        "relational,micro",
        "dbms,mapreduce",
        repeats=7,
        warmup=1,
        volume=500,
        store_dir=str(store_dir),
    )


class TestMatrix:
    def test_every_executed_cell_has_a_record_id(self, small_report):
        executed = [c for c in small_report.cells if c.supported]
        assert executed
        assert all(cell.record_id for cell in executed)
        assert all(cell.series for cell in executed)

    def test_unsupported_cells_are_kept_but_not_run(self, small_report):
        holes = [c for c in small_report.cells if not c.supported]
        assert [(c.prescription, c.engine) for c in holes] == [
            ("micro-wordcount", "dbms")
        ]
        assert holes[0].outcome is None
        assert holes[0].status == "unsupported"

    def test_normal_cells_keep_the_historical_series(self, small_report):
        store = RunStore(small_report.store_dir)
        for cell in small_report.cells:
            if not cell.supported or not cell.profile.is_normal:
                continue
            record = store.get(cell.record_id)
            assert "tuning" not in record.fingerprint

    def test_tuned_cells_fork_their_series(self, small_report):
        store = RunStore(small_report.store_dir)
        normal_series = {
            (c.prescription, c.engine): c.series
            for c in small_report.cells
            if c.supported and c.profile.is_normal
        }
        tuned = [
            c
            for c in small_report.cells
            if c.supported and not c.profile.is_normal
        ]
        assert tuned
        for cell in tuned:
            record = store.get(cell.record_id)
            assert record.fingerprint["tuning"]["profile"] == cell.profile.name
            assert cell.series != normal_series[(cell.prescription, cell.engine)]

    def test_verdicts_reference_record_ids(self, small_report):
        assert small_report.verdicts
        ids = {c.record_id for c in small_report.cells if c.record_id}
        for verdict in small_report.verdicts:
            assert verdict.comparison.baseline in ids
            assert verdict.comparison.candidate in ids
            assert verdict.verdict in (
                "improved", "regressed", "unchanged", "inconclusive",
            )

    def test_optimized_dbms_improves_on_relational(self, small_report):
        verdict = small_report.verdict_for(
            "database-aggregate-join", "dbms", "optimized"
        )
        assert verdict is not None
        assert verdict.verdict == "improved"

    def test_attribution_covers_the_one_off_knobs(self, small_report):
        knobs = {
            (row["workload"], row["engine"], row["knob"])
            for row in small_report.attribution_rows()
        }
        assert ("database-aggregate-join", "dbms", "layout") in knobs
        assert (
            "database-aggregate-join",
            "mapreduce",
            "combine_batch_records",
        ) in knobs

    def test_report_round_trips_to_json(self, small_report):
        payload = json.loads(json.dumps(small_report.as_dict()))
        assert payload["counts"] == small_report.counts()
        assert len(payload["cells"]) == len(small_report.cells)


class TestDeterminism:
    def test_same_seed_reruns_are_byte_identical(self, tmp_path):
        kwargs = dict(
            repeats=3,
            volume=60,
            include_one_offs=False,
            seed=0,
        )
        first = run_ablation(
            "relational", "dbms", store_dir=str(tmp_path / "a"), **kwargs
        )
        second = run_ablation(
            "relational", "dbms", store_dir=str(tmp_path / "b"), **kwargs
        )
        # Separate stores, same work: the identity of every cell — its
        # spec fingerprint, and with it the series key — must come out
        # byte for byte identical.  (Wall-clock samples inside the
        # outcomes are measurements and legitimately vary.)
        assert [c.series for c in first.cells] == [
            c.series for c in second.cells
        ]
        first_store = RunStore(first.store_dir)
        second_store = RunStore(second.store_dir)
        for a, b in zip(first.cells, second.cells):
            assert json.dumps(
                first_store.get(a.record_id).fingerprint, sort_keys=True
            ) == json.dumps(
                second_store.get(b.record_id).fingerprint, sort_keys=True
            )
        # And judging is seeded: the same pair of outcomes compared
        # twice yields identical statistics, byte for byte.
        from repro.analysis.compare import compare_records

        base = first.cell("database-aggregate-join", "dbms", "normal")
        cand = first.cell("database-aggregate-join", "dbms", "optimized")
        once = compare_records(
            base.outcome, cand.outcome, metrics=["duration"], seed=0
        ).as_dict()
        twice = compare_records(
            base.outcome, cand.outcome, metrics=["duration"], seed=0
        ).as_dict()
        assert json.dumps(once, sort_keys=True) == json.dumps(
            twice, sort_keys=True
        )


class TestRendering:
    def test_ascii_has_all_sections(self, small_report):
        text = render_ablation(small_report, "ascii")
        assert "matrix" in text
        assert "verdicts (vs normal)" in text
        assert "per-knob attribution" in text
        for cell in small_report.cells:
            if cell.record_id:
                assert cell.record_id in text

    def test_markdown_uses_pipe_tables(self, small_report):
        text = render_ablation(small_report, "markdown")
        assert "## verdicts (vs normal)" in text
        assert "| profile" in text or "profile |" in text

    def test_json_parses(self, small_report):
        payload = json.loads(render_ablation(small_report, "json"))
        assert payload["verdicts"]

    def test_unknown_style_rejected(self, small_report):
        with pytest.raises(TuningError, match="unknown ablation render"):
            render_ablation(small_report, "yaml")


class TestServicePath:
    def test_cells_run_as_queued_jobs(self, tmp_path):
        report = run_ablation(
            "relational",
            "dbms",
            repeats=2,
            volume=60,
            include_one_offs=False,
            store_dir=str(tmp_path),
            service=True,
        )
        executed = [c for c in report.cells if c.supported]
        assert len(executed) == 2  # normal + optimized
        assert all(cell.record_id for cell in executed)
        store = RunStore(str(tmp_path))
        tuned = next(c for c in executed if not c.profile.is_normal)
        assert (
            store.get(tuned.record_id).fingerprint["tuning"]["profile"]
            == "optimized"
        )
