"""Tests for the parallel execution layer.

Covers the executor abstraction itself (ordering, validation), backend
parity — thread and process fan-out must reproduce the serial path's
deterministic metrics exactly — and the configuration-sweep isolation
guarantee.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ExecutionError
from repro.core.metrics import Metric, MetricKind, MetricSuite
from repro.core.prescription import Prescription
from repro.engines.mapreduce import JobConf, MapReduceEngine, MapReduceJob
from repro.execution.config import SystemConfiguration
from repro.execution.harness import BenchmarkHarness
from repro.execution.parallel import (
    EXECUTOR_BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.execution.runner import RunnerOptions, RunTask, TestRunner
from repro.observability import Tracer

ENGINES = ["dbms", "mapreduce", "nosql"]
PRESCRIPTION = "database-aggregate-join"

#: Metrics that do not depend on wall-clock time, per engine: mapreduce
#: metrics derive from the simulated cluster makespan, nosql metrics
#: from the store's seeded latency model.  Every dbms metric is
#: wall-clock based, so it has no deterministic subset to compare.
DETERMINISTIC_METRICS = {
    "mapreduce": [
        "throughput", "ops_per_second", "data_rate",
        "network_rate", "energy", "cost",
    ],
    "nosql": ["throughput", "mean_latency", "latency_p95", "latency_p99"],
    "dbms": [],
}


def _square(value: int) -> int:  # module level: picklable for "process"
    return value * value


def _metric_means(results) -> dict[tuple[str, str], float]:
    means = {}
    for result in results:
        for name in DETERMINISTIC_METRICS[result.engine]:
            if name in result.metrics:
                means[(result.engine, name)] = result.mean(name)
    return means


class TestResolveExecutor:
    def test_backend_registry(self):
        assert EXECUTOR_BACKENDS == ("serial", "thread", "process")

    def test_named_backends(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        assert isinstance(resolve_executor("process"), ProcessExecutor)

    def test_none_means_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_instance_passes_through(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_instance_with_matching_max_workers_passes_through(self):
        executor = ThreadExecutor(max_workers=3)
        assert resolve_executor(executor, max_workers=3) is executor

    def test_instance_with_conflicting_max_workers_rejected(self):
        executor = ThreadExecutor(max_workers=3)
        with pytest.raises(ExecutionError, match="conflicts"):
            resolve_executor(executor, max_workers=5)

    def test_serial_instance_ignores_max_workers(self):
        # Serial has no pool, so there is nothing to conflict with.
        executor = SerialExecutor()
        assert resolve_executor(executor, max_workers=5) is executor

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError):
            resolve_executor("spark-cluster")


class TestChunkedSubmission:
    def test_process_backend_computes_chunksize(self):
        executor = ProcessExecutor(max_workers=2)
        assert executor._chunksize(80) == 10
        assert executor._chunksize(2) == 1

    def test_thread_backend_keeps_chunksize_one(self):
        assert ThreadExecutor(max_workers=2)._chunksize(80) == 1

    def test_chunked_process_map_preserves_order(self):
        with ProcessExecutor(max_workers=2) as executor:
            assert executor._chunksize(40) > 1
            results = executor.map(_square, list(range(40)))
        assert results == [x * x for x in range(40)]


class TestExecutorOrdering:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_results_in_submission_order(self, backend):
        with resolve_executor(backend, max_workers=4) as executor:
            results = executor.map(lambda x: x * x, list(range(25)))
        assert results == [x * x for x in range(25)]

    def test_process_results_in_submission_order(self):
        with resolve_executor("process", max_workers=2) as executor:
            results = executor.map(_square, list(range(8)))
        assert results == [x * x for x in range(8)]

    def test_empty_input(self):
        with resolve_executor("thread") as executor:
            assert executor.map(lambda x: x, []) == []

    def test_single_item_short_circuits_pool_creation(self):
        with resolve_executor("thread") as executor:
            assert executor.map(lambda x: x + 1, [41]) == [42]
            assert executor._pool is None

    def test_worker_exception_propagates(self):
        def explode(value):
            raise RuntimeError(f"boom {value}")

        with resolve_executor("thread") as executor:
            with pytest.raises(RuntimeError):
                executor.map(explode, [1, 2, 3])


class TestRunnerOptionsValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ExecutionError):
            RunnerOptions(executor="gpu")

    def test_bad_max_workers_rejected(self):
        with pytest.raises(ExecutionError):
            RunnerOptions(max_workers=0)

    def test_defaults_are_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        options = RunnerOptions()
        assert options.executor == "serial"
        assert options.max_workers is None

    def test_executor_default_honours_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        assert RunnerOptions().executor == "thread"


class TestBackendParity:
    """Thread and process fan-out must be drop-in replacements: same
    engines in the same order, identical deterministic metric means."""

    @pytest.fixture(scope="class")
    def serial_results(self):
        with TestRunner(options=RunnerOptions(executor="serial")) as runner:
            return runner.run_on_engines(PRESCRIPTION, ENGINES, 60)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_run_on_engines_matches_serial(self, backend, serial_results):
        options = RunnerOptions(executor=backend, max_workers=2)
        with TestRunner(options=options) as runner:
            results = runner.run_on_engines(PRESCRIPTION, ENGINES, 60)
        assert [r.engine for r in results] == [r.engine for r in serial_results]
        assert _metric_means(results) == _metric_means(serial_results)

    def test_serial_results_carry_cache_stats(self, serial_results):
        for result in serial_results:
            stats = result.extra["dataset_cache"]
            assert stats["misses"] == 1
            assert stats["hits"] == len(ENGINES) - 1

    def test_volume_sweep_thread_matches_serial(self):
        volumes = [20, 40, 60]
        serial = BenchmarkHarness(
            TestRunner(options=RunnerOptions(executor="serial"))
        ).volume_sweep("micro-wordcount", "mapreduce", volumes)
        with TestRunner(
            options=RunnerOptions(executor="thread", max_workers=2)
        ) as runner:
            threaded = BenchmarkHarness(runner).volume_sweep(
                "micro-wordcount", "mapreduce", volumes
            )
        assert [point.value for point in threaded.points] == volumes
        assert threaded.series("throughput") == serial.series("throughput")


class _RecordsInMetric(Metric):
    """Module-level (picklable) custom metric for suite-shipping tests."""

    name = "records_in"
    kind = MetricKind.ARCHITECTURE
    unit = "records"

    def compute(self, evidence):
        return float(evidence.records_in)


def _extended_suite() -> MetricSuite:
    return MetricSuite(MetricSuite.standard().metrics + [_RecordsInMetric()])


class TestProcessPayloads:
    def test_picklable_prescription_ships_by_value(self):
        runner = TestRunner()
        payload = runner._task_payload(RunTask("micro-wordcount", "mapreduce"))
        assert isinstance(payload["prescription"], Prescription)

    def test_unpicklable_prescription_ships_by_name(self):
        # Iterative prescriptions hold stopping-condition callables that
        # cannot cross a process boundary.
        runner = TestRunner()
        payload = runner._task_payload(RunTask("search-pagerank", "mapreduce"))
        assert payload["prescription"] == "search-pagerank"

    def test_payload_resolves_default_configuration(self):
        runner = TestRunner()
        payload = runner._task_payload(RunTask("micro-wordcount", "mapreduce"))
        assert payload["configuration"] is runner.configurations["mapreduce"]

    def test_picklable_suite_ships_by_value(self):
        runner = TestRunner(suite=_extended_suite())
        payload = runner._task_payload(RunTask("micro-wordcount", "mapreduce"))
        assert payload["suite"] is runner.suite

    def test_unpicklable_suite_falls_back_to_standard(self):
        class LocalMetric(Metric):  # local class: cannot pickle instances
            name = "local"

            def compute(self, evidence):
                return 1.0

        runner = TestRunner(suite=MetricSuite([LocalMetric()]))
        payload = runner._task_payload(RunTask("micro-wordcount", "mapreduce"))
        assert payload["suite"] is None

    def test_custom_suite_survives_the_process_boundary(self):
        """Workers must compute the runner's suite, not silently revert
        to the standard one (the historical bug)."""
        options = RunnerOptions(executor="process", max_workers=2)
        with TestRunner(options=options, suite=_extended_suite()) as runner:
            results = runner.run_on_engines(PRESCRIPTION, ENGINES[:2], 60)
        with TestRunner(suite=_extended_suite()) as serial_runner:
            serial = serial_runner.run_on_engines(PRESCRIPTION, ENGINES[:2], 60)
        for result, expected in zip(results, serial):
            assert "records_in" in result.metrics
            # records_in counts dataset records — deterministic, so the
            # worker's value must equal the serial path's exactly.
            assert result.mean("records_in") == expected.mean("records_in")


class TestTracedBackends:
    """Tracing must see through every executor backend identically:
    one ``task`` span per submission (in order), queue-wait recorded,
    the full ``run`` tree beneath, and cache counters inside."""

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_task_span_trees_match_the_serial_shape(self, backend):
        tracer = Tracer()
        options = RunnerOptions(executor=backend, max_workers=2)
        with TestRunner(options=options) as runner, tracer.activate():
            results = runner.run_on_engines(PRESCRIPTION, ENGINES, 60)
        roots = tracer.roots()
        assert [root.name for root in roots] == ["task"] * len(ENGINES)
        assert [root.attrs["engine"] for root in roots] == ENGINES
        for index, root in enumerate(roots):
            assert root.attrs["index"] == index
            assert root.attrs["queue_wait_seconds"] >= 0.0
            (run_span,) = root.children
            assert run_span.name == "run"
            child_names = [child.name for child in run_span.children]
            assert child_names[0] == "test-generation"
            assert child_names.count("repeat") == 1
            # Phase durations nest consistently: children fit inside
            # their parent (small float tolerance).
            assert sum(
                child.duration_seconds for child in run_span.children
            ) <= run_span.duration_seconds + 1e-6
            assert run_span.duration_seconds <= root.duration_seconds + 1e-6
        # The dataset cache recorded hit/miss counters somewhere in each
        # tree (the parent cache for serial/thread, the worker's own for
        # process — either way the counters must be present).
        for root in roots:
            counters: set[str] = set()
            for span in root.walk():
                counters.update(span.counters)
            assert counters & {"cache.hits", "cache.misses"}
        # The compact summary stays in the result payload; the raw trees
        # were popped when they were grafted.
        for result in results:
            assert "trace" not in result.extra
            summary = result.extra["trace_summary"]
            assert summary["task"]["count"] == 1
            assert "run" in summary

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_disabled_tracer_records_nothing(self, backend):
        tracer = Tracer(enabled=False)
        options = RunnerOptions(executor=backend, max_workers=2)
        with TestRunner(options=options) as runner, tracer.activate():
            results = runner.run_on_engines(PRESCRIPTION, ENGINES[:2], 60)
        assert tracer.roots() == []
        for result in results:
            assert "trace" not in result.extra
            assert "trace_summary" not in result.extra

    def test_traced_results_match_untraced_results(self):
        with TestRunner() as runner:
            untraced = runner.run_on_engines(PRESCRIPTION, ENGINES, 60)
        tracer = Tracer()
        with TestRunner() as runner, tracer.activate():
            traced = runner.run_on_engines(PRESCRIPTION, ENGINES, 60)
        assert _metric_means(traced) == _metric_means(untraced)


class TestConfigurationSweep:
    CONFIGS = {
        "small": SystemConfiguration(
            "mapreduce", {"num_nodes": 2, "slots_per_node": 1}
        ),
        "large": SystemConfiguration(
            "mapreduce", {"num_nodes": 8, "slots_per_node": 4}
        ),
    }

    def test_sweep_never_mutates_runner_configurations(self):
        runner = TestRunner()
        before = dict(runner.configurations)
        report = BenchmarkHarness(runner).configuration_sweep(
            "micro-wordcount", "mapreduce", self.CONFIGS, volume_override=30
        )
        assert runner.configurations == before
        assert [point.value for point in report.points] == ["small", "large"]
        assert report.points[0].result.extra["configuration"] == "small"

    def test_failing_configuration_leaves_runner_intact(self):
        runner = TestRunner()
        before = dict(runner.configurations)
        configs = {
            "ok": SystemConfiguration("mapreduce"),
            "broken": SystemConfiguration("spark"),  # no recipe → raises
        }
        with pytest.raises(ExecutionError):
            BenchmarkHarness(runner).configuration_sweep(
                "micro-wordcount", "mapreduce", configs, volume_override=20
            )
        assert runner.configurations == before

    def test_larger_cluster_is_faster(self):
        report = BenchmarkHarness().configuration_sweep(
            "micro-wordcount", "mapreduce", self.CONFIGS, volume_override=120
        )
        series = dict(report.series("throughput"))
        assert series["large"] > series["small"]


def _wordcount_job(num_map_tasks: int = 4, num_reduce_tasks: int = 3):
    def mapper(key, value):
        yield value, 1

    def reducer(word, counts):
        yield word, sum(counts)

    return MapReduceJob(
        "wordcount",
        mapper,
        reducer,
        conf=JobConf(
            num_map_tasks=num_map_tasks, num_reduce_tasks=num_reduce_tasks
        ),
    )


class TestMapReduceExecutorParity:
    PAIRS = [(index, f"word{index % 7}") for index in range(50)]

    def test_thread_backend_bit_identical_to_serial(self):
        serial = MapReduceEngine(executor="serial").run(
            _wordcount_job(), self.PAIRS
        )
        threaded = MapReduceEngine(executor="thread", max_workers=2).run(
            _wordcount_job(), self.PAIRS
        )
        assert threaded.output == serial.output
        assert threaded.counters.snapshot() == serial.counters.snapshot()
        assert threaded.cost == serial.cost
        assert threaded.simulated_seconds == serial.simulated_seconds

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_more_map_tasks_than_pairs(self, backend):
        engine = MapReduceEngine(executor=backend, max_workers=2)
        result = engine.run(_wordcount_job(num_map_tasks=8), [(0, "a"), (1, "b")])
        assert sorted(result.output) == [("a", 1), ("b", 1)]
        assert result.counters.get("map", "input_records") == 2

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_empty_input(self, backend):
        engine = MapReduceEngine(executor=backend)
        result = engine.run(_wordcount_job(), [])
        assert result.output == []
