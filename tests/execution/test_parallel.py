"""Tests for the parallel execution layer.

Covers the executor abstraction itself (ordering, validation), backend
parity — thread and process fan-out must reproduce the serial path's
deterministic metrics exactly — and the configuration-sweep isolation
guarantee.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ExecutionError
from repro.core.prescription import Prescription
from repro.engines.mapreduce import JobConf, MapReduceEngine, MapReduceJob
from repro.execution.config import SystemConfiguration
from repro.execution.harness import BenchmarkHarness
from repro.execution.parallel import (
    EXECUTOR_BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.execution.runner import RunnerOptions, RunTask, TestRunner

ENGINES = ["dbms", "mapreduce", "nosql"]
PRESCRIPTION = "database-aggregate-join"

#: Metrics that do not depend on wall-clock time, per engine: mapreduce
#: metrics derive from the simulated cluster makespan, nosql metrics
#: from the store's seeded latency model.  Every dbms metric is
#: wall-clock based, so it has no deterministic subset to compare.
DETERMINISTIC_METRICS = {
    "mapreduce": [
        "throughput", "ops_per_second", "data_rate",
        "network_rate", "energy", "cost",
    ],
    "nosql": ["throughput", "mean_latency", "latency_p95", "latency_p99"],
    "dbms": [],
}


def _square(value: int) -> int:  # module level: picklable for "process"
    return value * value


def _metric_means(results) -> dict[tuple[str, str], float]:
    means = {}
    for result in results:
        for name in DETERMINISTIC_METRICS[result.engine]:
            if name in result.metrics:
                means[(result.engine, name)] = result.mean(name)
    return means


class TestResolveExecutor:
    def test_backend_registry(self):
        assert EXECUTOR_BACKENDS == ("serial", "thread", "process")

    def test_named_backends(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        assert isinstance(resolve_executor("process"), ProcessExecutor)

    def test_none_means_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_instance_passes_through(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError):
            resolve_executor("spark-cluster")


class TestExecutorOrdering:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_results_in_submission_order(self, backend):
        with resolve_executor(backend, max_workers=4) as executor:
            results = executor.map(lambda x: x * x, list(range(25)))
        assert results == [x * x for x in range(25)]

    def test_process_results_in_submission_order(self):
        with resolve_executor("process", max_workers=2) as executor:
            results = executor.map(_square, list(range(8)))
        assert results == [x * x for x in range(8)]

    def test_empty_input(self):
        with resolve_executor("thread") as executor:
            assert executor.map(lambda x: x, []) == []

    def test_single_item_short_circuits_pool_creation(self):
        with resolve_executor("thread") as executor:
            assert executor.map(lambda x: x + 1, [41]) == [42]
            assert executor._pool is None

    def test_worker_exception_propagates(self):
        def explode(value):
            raise RuntimeError(f"boom {value}")

        with resolve_executor("thread") as executor:
            with pytest.raises(RuntimeError):
                executor.map(explode, [1, 2, 3])


class TestRunnerOptionsValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ExecutionError):
            RunnerOptions(executor="gpu")

    def test_bad_max_workers_rejected(self):
        with pytest.raises(ExecutionError):
            RunnerOptions(max_workers=0)

    def test_defaults_are_serial(self):
        options = RunnerOptions()
        assert options.executor == "serial"
        assert options.max_workers is None


class TestBackendParity:
    """Thread and process fan-out must be drop-in replacements: same
    engines in the same order, identical deterministic metric means."""

    @pytest.fixture(scope="class")
    def serial_results(self):
        with TestRunner(options=RunnerOptions(executor="serial")) as runner:
            return runner.run_on_engines(PRESCRIPTION, ENGINES, 60)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_run_on_engines_matches_serial(self, backend, serial_results):
        options = RunnerOptions(executor=backend, max_workers=2)
        with TestRunner(options=options) as runner:
            results = runner.run_on_engines(PRESCRIPTION, ENGINES, 60)
        assert [r.engine for r in results] == [r.engine for r in serial_results]
        assert _metric_means(results) == _metric_means(serial_results)

    def test_serial_results_carry_cache_stats(self, serial_results):
        for result in serial_results:
            stats = result.extra["dataset_cache"]
            assert stats["misses"] == 1
            assert stats["hits"] == len(ENGINES) - 1

    def test_volume_sweep_thread_matches_serial(self):
        volumes = [20, 40, 60]
        serial = BenchmarkHarness(
            TestRunner(options=RunnerOptions(executor="serial"))
        ).volume_sweep("micro-wordcount", "mapreduce", volumes)
        with TestRunner(
            options=RunnerOptions(executor="thread", max_workers=2)
        ) as runner:
            threaded = BenchmarkHarness(runner).volume_sweep(
                "micro-wordcount", "mapreduce", volumes
            )
        assert [point.value for point in threaded.points] == volumes
        assert threaded.series("throughput") == serial.series("throughput")


class TestProcessPayloads:
    def test_picklable_prescription_ships_by_value(self):
        runner = TestRunner()
        payload = runner._task_payload(RunTask("micro-wordcount", "mapreduce"))
        assert isinstance(payload["prescription"], Prescription)

    def test_unpicklable_prescription_ships_by_name(self):
        # Iterative prescriptions hold stopping-condition callables that
        # cannot cross a process boundary.
        runner = TestRunner()
        payload = runner._task_payload(RunTask("search-pagerank", "mapreduce"))
        assert payload["prescription"] == "search-pagerank"

    def test_payload_resolves_default_configuration(self):
        runner = TestRunner()
        payload = runner._task_payload(RunTask("micro-wordcount", "mapreduce"))
        assert payload["configuration"] is runner.configurations["mapreduce"]


class TestConfigurationSweep:
    CONFIGS = {
        "small": SystemConfiguration(
            "mapreduce", {"num_nodes": 2, "slots_per_node": 1}
        ),
        "large": SystemConfiguration(
            "mapreduce", {"num_nodes": 8, "slots_per_node": 4}
        ),
    }

    def test_sweep_never_mutates_runner_configurations(self):
        runner = TestRunner()
        before = dict(runner.configurations)
        report = BenchmarkHarness(runner).configuration_sweep(
            "micro-wordcount", "mapreduce", self.CONFIGS, volume_override=30
        )
        assert runner.configurations == before
        assert [point.value for point in report.points] == ["small", "large"]
        assert report.points[0].result.extra["configuration"] == "small"

    def test_failing_configuration_leaves_runner_intact(self):
        runner = TestRunner()
        before = dict(runner.configurations)
        configs = {
            "ok": SystemConfiguration("mapreduce"),
            "broken": SystemConfiguration("spark"),  # no recipe → raises
        }
        with pytest.raises(ExecutionError):
            BenchmarkHarness(runner).configuration_sweep(
                "micro-wordcount", "mapreduce", configs, volume_override=20
            )
        assert runner.configurations == before

    def test_larger_cluster_is_faster(self):
        report = BenchmarkHarness().configuration_sweep(
            "micro-wordcount", "mapreduce", self.CONFIGS, volume_override=120
        )
        series = dict(report.series("throughput"))
        assert series["large"] > series["small"]


def _wordcount_job(num_map_tasks: int = 4, num_reduce_tasks: int = 3):
    def mapper(key, value):
        yield value, 1

    def reducer(word, counts):
        yield word, sum(counts)

    return MapReduceJob(
        "wordcount",
        mapper,
        reducer,
        conf=JobConf(
            num_map_tasks=num_map_tasks, num_reduce_tasks=num_reduce_tasks
        ),
    )


class TestMapReduceExecutorParity:
    PAIRS = [(index, f"word{index % 7}") for index in range(50)]

    def test_thread_backend_bit_identical_to_serial(self):
        serial = MapReduceEngine(executor="serial").run(
            _wordcount_job(), self.PAIRS
        )
        threaded = MapReduceEngine(executor="thread", max_workers=2).run(
            _wordcount_job(), self.PAIRS
        )
        assert threaded.output == serial.output
        assert threaded.counters.snapshot() == serial.counters.snapshot()
        assert threaded.cost == serial.cost
        assert threaded.simulated_seconds == serial.simulated_seconds

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_more_map_tasks_than_pairs(self, backend):
        engine = MapReduceEngine(executor=backend, max_workers=2)
        result = engine.run(_wordcount_job(num_map_tasks=8), [(0, "a"), (1, "b")])
        assert sorted(result.output) == [("a", 1), ("b", 1)]
        assert result.counters.get("map", "input_records") == 2

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_empty_input(self, backend):
        engine = MapReduceEngine(executor=backend)
        result = engine.run(_wordcount_job(), [])
        assert result.output == []
