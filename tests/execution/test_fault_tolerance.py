"""Tests for the fault-tolerant execution layer.

Covers the retry/timeout primitives, the runner's attempt loop (capture
vs. fail-fast), cross-backend error-path parity — the serial, thread,
and process backends must produce identical merged outcomes under
seeded fault injection — and the surfacing paths: tracing attributes,
result tables, and the five-step process report.
"""

from __future__ import annotations

import time

import pytest

from repro.core.errors import ExecutionError, SpecError
from repro.core.process import BenchmarkingProcess
from repro.core.prescription import builtin_repository
from repro.core.results import MetricStats, RunResult, TaskFailure, split_outcomes
from repro.core.spec import BenchmarkSpec
from repro.core.test_generator import TestGenerator
from repro.engines.faults import FaultSpec, FaultyEngine, InjectedFault
from repro.execution.config import SystemConfiguration
from repro.execution.parallel import SerialExecutor, ThreadExecutor
from repro.execution.report import render_results
from repro.execution.retry import (
    ON_ERROR_POLICIES,
    RetryPolicy,
    TaskTimeoutError,
    call_with_timeout,
)
from repro.execution.runner import RunnerOptions, RunTask, TestRunner
from repro.observability import Tracer, summarize_spans

ENGINES = ["dbms", "mapreduce", "nosql"]
PRESCRIPTION = "database-aggregate-join"

#: Wall-clock-free metrics per engine (see test_parallel.py): the subset
#: whose means must match bit-for-bit across executor backends.
DETERMINISTIC_METRICS = {
    "mapreduce": [
        "throughput", "ops_per_second", "data_rate",
        "network_rate", "energy", "cost",
    ],
    "nosql": ["throughput", "mean_latency", "latency_p95", "latency_p99"],
    "dbms": [],
}


def _faulty_runner(
    backend: str,
    spec: FaultSpec,
    engines: list[str] = ENGINES,
    **options: object,
) -> TestRunner:
    """A runner whose engines all carry the given fault schedule."""
    runner = TestRunner(
        test_generator=TestGenerator(builtin_repository()),
        options=RunnerOptions(
            check_format=False, executor=backend, max_workers=3, **options
        ),
    )
    runner.configurations = {
        name: SystemConfiguration(name, fault=spec) for name in engines
    }
    return runner


def _tasks(engines: list[str] = ENGINES, volume: int = 50) -> list[RunTask]:
    prescription = builtin_repository().get(PRESCRIPTION)
    return [RunTask(prescription, name, volume, {}) for name in engines]


def _outcome_fingerprint(outcomes) -> list[tuple]:
    """Order, status, attempts, error, and deterministic metric means."""
    fingerprint = []
    for outcome in outcomes:
        if outcome.ok:
            means = tuple(
                (name, outcome.mean(name))
                for name in DETERMINISTIC_METRICS[outcome.engine]
                if name in outcome.metrics
            )
            fingerprint.append(
                (outcome.test_name, "ok", outcome.extra.get("attempts"), means)
            )
        else:
            fingerprint.append(
                (outcome.test_name, "failed", outcome.attempts, outcome.error)
            )
    return fingerprint


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4, backoff_seconds=0.5, seed=7)
        for attempt in (1, 2, 3):
            assert policy.delay(attempt, "k") == policy.delay(attempt, "k")

    def test_delay_without_jitter_is_exact_exponential(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_seconds=0.5, backoff_factor=2.0, jitter=0.0
        )
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 2.0

    def test_delay_clamped_to_max_backoff(self):
        policy = RetryPolicy(
            max_attempts=20, backoff_seconds=1.0, jitter=0.0,
            max_backoff_seconds=4.0,
        )
        assert policy.delay(10) == 4.0

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(max_attempts=3, backoff_seconds=1.0, jitter=0.25)
        for attempt in range(1, 10):
            base = min(2.0 ** (attempt - 1), policy.max_backoff_seconds)
            assert 0.75 * base <= policy.delay(attempt, "task") <= 1.25 * base

    def test_jitter_varies_by_key_and_seed(self):
        base = RetryPolicy(max_attempts=3, backoff_seconds=1.0, seed=0)
        delays_a = [base.delay(1, f"k{i}") for i in range(10)]
        assert len(set(delays_a)) > 1  # keys perturb the stream
        reseeded = RetryPolicy(max_attempts=3, backoff_seconds=1.0, seed=1)
        assert [reseeded.delay(1, f"k{i}") for i in range(10)] != delays_a

    def test_zero_backoff_means_zero_delay(self):
        assert RetryPolicy(max_attempts=3).delay(1, "k") == 0.0

    def test_should_retry_respects_budget(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(ValueError(), 1)
        assert not policy.should_retry(ValueError(), 2)

    def test_should_retry_filters_types(self):
        policy = RetryPolicy(max_attempts=5, retryable=(InjectedFault,))
        assert policy.should_retry(InjectedFault("x"), 1)
        assert not policy.should_retry(ValueError("x"), 1)

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_seconds": -1.0},
        {"backoff_factor": 0.5},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ExecutionError):
            RetryPolicy(**kwargs)


class TestCallWithTimeout:
    def test_no_timeout_is_a_plain_call(self):
        assert call_with_timeout(lambda: 41 + 1, None) == 42

    def test_fast_call_returns_result(self):
        assert call_with_timeout(lambda: "ok", 5.0) == "ok"

    def test_slow_call_raises_timeout(self):
        with pytest.raises(TaskTimeoutError):
            call_with_timeout(lambda: time.sleep(1.0), 0.05)

    def test_error_propagates(self):
        def explode():
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            call_with_timeout(explode, 5.0)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ExecutionError):
            call_with_timeout(lambda: None, 0.0)


# ---------------------------------------------------------------------------
# Options / spec plumbing
# ---------------------------------------------------------------------------


class TestFaultToleranceOptions:
    @pytest.mark.parametrize("kwargs", [
        {"on_error": "panic"},
        {"retries": -1},
        {"retry_backoff": -0.5},
        {"task_timeout": 0.0},
    ])
    def test_runner_options_validation(self, kwargs):
        with pytest.raises(ExecutionError):
            RunnerOptions(**kwargs)

    def test_retry_policy_derivation(self):
        options = RunnerOptions(
            retries=2, retry_backoff=0.25, retry_jitter=0.05, retry_seed=9
        )
        policy = options.retry_policy()
        assert policy.max_attempts == 3
        assert policy.backoff_seconds == 0.25
        assert policy.jitter == 0.05
        assert policy.seed == 9

    def test_retry_policy_overrides(self):
        policy = RunnerOptions(retries=2).retry_policy(retries=0)
        assert policy.max_attempts == 1

    def test_run_many_rejects_unknown_on_error(self):
        with TestRunner() as runner:
            with pytest.raises(ExecutionError):
                runner.run_many(_tasks(["dbms"]), on_error="panic")

    @pytest.mark.parametrize("kwargs", [
        {"on_error": "panic"},
        {"retries": -1},
        {"retry_backoff": -0.5},
        {"task_timeout": 0.0},
    ])
    def test_benchmark_spec_validation(self, kwargs):
        spec = BenchmarkSpec(prescription=PRESCRIPTION, **kwargs)
        with pytest.raises(SpecError):
            spec.validate(builtin_repository())

    def test_on_error_policies(self):
        assert ON_ERROR_POLICIES == ("abort", "continue")


class TestExecutorInvalidation:
    def test_mutating_options_rebuilds_the_executor(self):
        with TestRunner(options=RunnerOptions(executor="serial")) as runner:
            assert isinstance(runner.executor, SerialExecutor)
            runner.options.executor = "thread"
            assert isinstance(runner.executor, ThreadExecutor)

    def test_mutating_max_workers_rebuilds_the_executor(self):
        with TestRunner(
            options=RunnerOptions(executor="thread", max_workers=1)
        ) as runner:
            first = runner.executor
            runner.options.max_workers = 2
            second = runner.executor
            assert second is not first
            assert second.max_workers == 2

    def test_stable_options_keep_the_executor(self):
        with TestRunner() as runner:
            assert runner.executor is runner.executor


# ---------------------------------------------------------------------------
# The attempt loop
# ---------------------------------------------------------------------------


class TestRetryLoop:
    def test_scheduled_failures_recover_within_budget(self):
        runner = _faulty_runner(
            "serial", FaultSpec(fail_attempts=(0, 1)), ["dbms"], retries=3
        )
        with runner:
            (outcome,) = runner.run_many(_tasks(["dbms"]))
        assert outcome.ok
        assert outcome.extra["attempts"] == 3

    def test_insufficient_budget_aborts_with_the_original_error(self):
        runner = _faulty_runner(
            "serial", FaultSpec(fail_attempts=(0, 1)), ["dbms"], retries=1
        )
        with runner:
            with pytest.raises(InjectedFault):
                runner.run_many(_tasks(["dbms"]))

    def test_continue_captures_the_failure_in_order(self):
        spec = FaultSpec(fail_attempts=(0, 1, 2, 3))  # dbms always fails
        runner = _faulty_runner("serial", spec, ["dbms"], retries=1)
        runner.configurations["mapreduce"] = SystemConfiguration("mapreduce")
        with runner:
            outcomes = runner.run_many(
                _tasks(["mapreduce", "dbms"]), on_error="continue"
            )
        ok, failed = outcomes
        assert ok.ok and ok.engine == "mapreduce"
        assert not failed.ok
        assert failed.engine == "dbms"
        assert failed.attempts == 2
        assert failed.error_type == "InjectedFault"
        assert failed.test_name == f"{PRESCRIPTION}@dbms"
        assert failed.traceback_summary  # post-mortem breadcrumbs captured

    def test_clean_runs_carry_no_retry_metadata(self):
        with TestRunner(options=RunnerOptions(check_format=False)) as runner:
            (outcome,) = runner.run_many(_tasks(["dbms"]))
        assert "attempts" not in outcome.extra

    def test_run_many_kwargs_override_the_options(self):
        runner = _faulty_runner(
            "serial", FaultSpec(fail_attempts=(0,)), ["dbms"], retries=0
        )
        with runner:
            with pytest.raises(InjectedFault):
                runner.run_many(_tasks(["dbms"]))
            (outcome,) = runner.run_many(_tasks(["dbms"]), retries=1)
        assert outcome.ok and outcome.extra["attempts"] == 2

    def test_timeout_failure_is_captured(self):
        spec = FaultSpec(latency_rate=1.0, latency_seconds=0.5)
        runner = _faulty_runner(
            "serial", spec, ["dbms"], task_timeout=0.05
        )
        with runner:
            (outcome,) = runner.run_many(
                _tasks(["dbms"]), on_error="continue"
            )
        assert not outcome.ok
        assert outcome.error_type == "TaskTimeoutError"

    def test_backoff_schedule_is_slept(self):
        spec = FaultSpec(fail_attempts=(0,))
        runner = _faulty_runner(
            "serial", spec, ["dbms"], retries=1, retry_backoff=0.1
        )
        with runner:
            started = time.perf_counter()
            (outcome,) = runner.run_many(_tasks(["dbms"]))
            elapsed = time.perf_counter() - started
        assert outcome.ok
        assert elapsed >= 0.09  # one backoff (±10% jitter) was slept


# ---------------------------------------------------------------------------
# Cross-backend parity
# ---------------------------------------------------------------------------


class TestErrorPathParity:
    """A raising task must behave identically on every backend."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_abort_propagates_the_same_exception_type(self, backend):
        runner = _faulty_runner(backend, FaultSpec(failure_rate=1.0))
        with runner:
            with pytest.raises(InjectedFault):
                runner.run_many(_tasks())

    def test_continue_merges_identically_across_backends(self):
        """The acceptance scenario: ~30% of attempts fail, retries=3,
        and all three backends return the same outcomes in submission
        order — same statuses, attempt counts, errors, and
        deterministic metric means."""
        spec = FaultSpec(seed=7, failure_rate=0.3)
        fingerprints = {}
        for backend in ("serial", "thread", "process"):
            runner = _faulty_runner(
                backend, spec, repeats=2, on_error="continue", retries=3
            )
            with runner:
                outcomes = runner.run_many(_tasks())
            assert [o.engine for o in outcomes] == ENGINES
            fingerprints[backend] = _outcome_fingerprint(outcomes)
        assert fingerprints["serial"] == fingerprints["thread"]
        assert fingerprints["serial"] == fingerprints["process"]

    def test_always_failing_batch_completes_under_continue(self):
        spec = FaultSpec(failure_rate=1.0)
        runner = _faulty_runner(
            "thread", spec, on_error="continue", retries=1
        )
        with runner:
            outcomes = runner.run_many(_tasks())
        assert [o.ok for o in outcomes] == [False, False, False]
        assert [o.attempts for o in outcomes] == [2, 2, 2]

    def test_split_outcomes_partitions_by_type(self):
        spec = FaultSpec(fail_attempts=(0, 1))  # exhausts a 1-retry budget
        runner = _faulty_runner("serial", spec, ["dbms", "mapreduce"])
        runner.configurations["mapreduce"] = SystemConfiguration("mapreduce")
        with runner:
            outcomes = runner.run_many(
                _tasks(["mapreduce", "dbms"]), on_error="continue", retries=1
            )
        results, failures = split_outcomes(outcomes)
        assert [r.engine for r in results] == ["mapreduce"]
        assert [f.engine for f in failures] == ["dbms"]


class TestQueueWaitRegression:
    """Cross-process queue-wait must be a wall-clock delta: the historic
    perf_counter pairing compared two unrelated epochs."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_queue_wait_bounded_by_batch_wall_time(self, backend):
        tracer = Tracer()
        options = RunnerOptions(
            check_format=False, executor=backend, max_workers=2
        )
        with TestRunner(options=options) as runner, tracer.activate():
            started = time.perf_counter()
            runner.run_many(_tasks())
            wall = time.perf_counter() - started
        roots = tracer.roots()
        assert len(roots) == len(ENGINES)
        for root in roots:
            wait = root.attrs["queue_wait_seconds"]
            assert 0.0 <= wait <= wall


# ---------------------------------------------------------------------------
# Tracing surface
# ---------------------------------------------------------------------------


class TestRetryTracing:
    def test_task_span_records_attempts_and_status(self):
        tracer = Tracer()
        runner = _faulty_runner(
            "serial", FaultSpec(fail_attempts=(0,)), ["dbms"], retries=1
        )
        with runner, tracer.activate():
            (outcome,) = runner.run_many(_tasks(["dbms"]))
        (root,) = tracer.roots()
        assert root.name == "task"
        assert root.attrs["attempts"] == 2
        assert root.attrs["status"] == "ok"
        # Both attempts left their run trees: the failed one is marked.
        runs = [child for child in root.children if child.name == "run"]
        assert len(runs) == 2
        assert runs[0].attrs["error"] == "InjectedFault"
        assert "error" not in runs[1].attrs
        summary = outcome.extra["trace_summary"]
        assert summary["task"]["counters"]["task.retries"] == 1
        assert summary["task"]["counters"]["task.failed_attempts"] == 1

    def test_failed_task_span_records_the_error(self):
        tracer = Tracer()
        runner = _faulty_runner(
            "serial", FaultSpec(failure_rate=1.0), ["dbms"]
        )
        with runner, tracer.activate():
            (outcome,) = runner.run_many(
                _tasks(["dbms"]), on_error="continue"
            )
        (root,) = tracer.roots()
        assert root.attrs["status"] == "failed"
        assert root.attrs["error"] == "InjectedFault"
        assert not outcome.ok

    def test_backoff_spans_record_the_schedule(self):
        tracer = Tracer()
        runner = _faulty_runner(
            "serial", FaultSpec(fail_attempts=(0,)), ["dbms"],
            retries=1, retry_backoff=0.02,
        )
        with runner, tracer.activate():
            runner.run_many(_tasks(["dbms"]))
        (root,) = tracer.roots()
        backoffs = [c for c in root.children if c.name == "backoff"]
        assert len(backoffs) == 1
        assert backoffs[0].attrs["seconds"] > 0

    def test_summarize_spans_keeps_counters_conditional(self):
        tracer = Tracer()
        with tracer.span("clean"):
            pass
        with tracer.span("counted") as span:
            span.incr("hits", 2)
        summary = summarize_spans(tracer.roots())
        assert "counters" not in summary["clean"]
        assert summary["counted"]["counters"] == {"hits": 2}


# ---------------------------------------------------------------------------
# Reporting surface
# ---------------------------------------------------------------------------


def _result(engine: str, **extra) -> RunResult:
    return RunResult(
        test_name=f"t@{engine}", workload="w", engine=engine, repeats=1,
        metrics={"duration": MetricStats("duration", [1.0])},
        extra=dict(extra),
    )


def _failure(engine: str, attempts: int = 2) -> TaskFailure:
    return TaskFailure(
        test_name=f"t@{engine}", workload="w", engine=engine,
        error_type="InjectedFault", error_message="injected fault",
        attempts=attempts,
    )


class TestFailureReporting:
    def test_clean_tables_are_unchanged(self):
        table = render_results([_result("dbms"), _result("nosql")])
        assert "status" not in table
        assert "attempts" not in table
        assert "error" not in table

    def test_mixed_tables_show_status_and_error(self):
        table = render_results(
            [_result("dbms", attempts=1), _failure("nosql", attempts=3)]
        )
        assert "status" in table
        assert "failed" in table
        assert "InjectedFault: injected fault" in table
        assert "ok" in table

    def test_retried_success_shows_attempts(self):
        table = render_results(
            [_result("dbms", attempts=2), _result("nosql", attempts=1)]
        )
        assert "attempts" in table
        assert "status" in table

    def test_json_embeds_failures(self):
        import json

        payload = json.loads(
            render_results([_result("dbms"), _failure("nosql")], style="json")
        )
        assert payload[1]["status"] == "failed"
        assert payload[1]["error_type"] == "InjectedFault"
        assert payload[1]["attempts"] == 2

    def test_markdown_style_renders_failures(self):
        table = render_results([_failure("nosql")], style="markdown")
        assert table.startswith("|")
        assert "failed" in table

    def test_task_failure_as_dict_round_trip(self):
        failure = TaskFailure.from_exception(
            test_name="t@dbms", workload="w", engine="dbms",
            error=ValueError("bad"), attempts=4,
        )
        payload = failure.as_dict()
        assert payload["error_type"] == "ValueError"
        assert payload["error_message"] == "bad"
        assert payload["attempts"] == 4
        assert "traceback" not in payload  # error had no traceback frames


class _FaultyEngineRegistry:
    """Registry shim: every created engine carries a fault schedule."""

    def __init__(self, inner, spec: FaultSpec) -> None:
        self._inner = inner
        self._spec = spec

    def create(self, name: str):
        return FaultyEngine(self._inner.create(name), self._spec)

    def names(self):
        return self._inner.names()

    def __contains__(self, name: str) -> bool:
        return name in self._inner

    def __iter__(self):
        return iter(self._inner)


class TestProcessReportFailures:
    """Failure surfacing in the five-step process report.

    Specs pin ``executor="serial"``: the faulty-registry shim lives in
    this process and cannot follow tasks across a process boundary.
    """

    def _process(self, spec: FaultSpec) -> BenchmarkingProcess:
        from repro.core import registry

        generator = TestGenerator(
            engine_registry=_FaultyEngineRegistry(registry.engines, spec)
        )
        return BenchmarkingProcess(test_generator=generator)

    def test_continue_keeps_the_run_and_records_failures(self):
        process = self._process(FaultSpec(failure_rate=1.0))
        spec = BenchmarkSpec(
            prescription=PRESCRIPTION, engines=["dbms", "mapreduce"],
            volume=50, executor="serial", on_error="continue", retries=1,
        )
        report = process.execute(spec)
        assert report.results == []
        assert [f.engine for f in report.failures] == ["dbms", "mapreduce"]
        detail = report.step("execution").detail
        assert [f["engine"] for f in detail["failures"]] == [
            "dbms", "mapreduce"
        ]
        assert all(f["attempts"] == 2 for f in detail["failures"])

    def test_partial_failure_keeps_completed_results(self):
        # Attempts 0 and 1 fail: a 1-retry budget dies, 2 retries recover.
        process = self._process(FaultSpec(fail_attempts=(0, 1)))
        spec = BenchmarkSpec(
            prescription=PRESCRIPTION, engines=["dbms", "mapreduce"],
            volume=50, executor="serial", on_error="continue", retries=2,
        )
        report = process.execute(spec)
        assert [r.engine for r in report.results] == ["dbms", "mapreduce"]
        assert report.failures == []
        assert all(r.extra["attempts"] == 3 for r in report.results)

    def test_abort_remains_the_default(self):
        process = self._process(FaultSpec(failure_rate=1.0))
        spec = BenchmarkSpec(
            prescription=PRESCRIPTION, engines=["dbms"], volume=50,
            executor="serial",
        )
        with pytest.raises(InjectedFault):
            process.execute(spec)
