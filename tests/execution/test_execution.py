"""Tests for the execution layer: config, runner, harness, report."""

from __future__ import annotations

import json

import pytest

import repro  # noqa: F401 - triggers default registration
from repro.core.errors import ExecutionError
from repro.core.results import RunResult
from repro.engines.dbms import PlannerConfig
from repro.execution.config import (
    SystemConfiguration,
    default_configurations,
    prepare_input,
)
from repro.execution.harness import BenchmarkHarness
from repro.execution.report import (
    RESULT_STYLES,
    ascii_table,
    format_value,
    markdown_table,
    render_results,
    render_trace,
    results_json,
    results_table,
)
from repro.execution.runner import RunnerOptions, TestRunner
from repro.observability import Span


class TestSystemConfiguration:
    def test_default_configurations_cover_all_engines(self):
        assert set(default_configurations()) == {
            "mapreduce", "dbms", "nosql", "streaming", "dfs",
        }

    def test_build_mapreduce_with_cluster_options(self):
        configuration = SystemConfiguration("mapreduce", {"num_nodes": 2})
        engine = configuration.build()
        assert engine.cluster_model.spec.num_nodes == 2

    def test_build_dbms_with_planner_options(self):
        configuration = SystemConfiguration(
            "dbms", {"join_algorithm": "merge"}
        )
        engine = configuration.build()
        assert engine.planner.config.join_algorithm == "merge"

    def test_build_nosql_with_partitions(self):
        configuration = SystemConfiguration("nosql", {"num_partitions": 3})
        assert configuration.build().num_partitions == 3

    def test_unknown_engine_rejected(self):
        with pytest.raises(ExecutionError):
            SystemConfiguration("spark").build()

    def test_prepare_input_uses_engine_format(self, text_corpus):
        from repro.engines.mapreduce import MapReduceEngine

        converted = prepare_input(text_corpus, MapReduceEngine())
        assert converted.format_name == "key-value"


class TestRunnerBehaviour:
    def test_run_aggregates_repeats(self):
        runner = TestRunner(options=RunnerOptions(repeats=3))
        result = runner.run("micro-wordcount", "mapreduce", 20)
        assert result.repeats == 3
        assert result.mean("throughput") > 0

    def test_warmup_runs_not_counted(self):
        runner = TestRunner(options=RunnerOptions(repeats=2, warmup_runs=1))
        result = runner.run("micro-wordcount", "mapreduce", 15)
        assert result.repeats == 2

    def test_repeats_use_fresh_engines(self):
        """A stateful engine (DBMS) must not see tables from prior repeats."""
        runner = TestRunner(options=RunnerOptions(repeats=3))
        result = runner.run("database-aggregate-join", "dbms", 60)
        assert result.repeats == 3  # would raise "table exists" otherwise

    def test_run_on_engines(self):
        runner = TestRunner()
        results = runner.run_on_engines(
            "database-aggregate-join", ["dbms", "mapreduce"], 50
        )
        assert [result.engine for result in results] == ["dbms", "mapreduce"]

    def test_options_validation(self):
        with pytest.raises(ExecutionError):
            RunnerOptions(repeats=0)
        with pytest.raises(ExecutionError):
            RunnerOptions(warmup_runs=-1)

    def test_overrides_flow_through(self):
        runner = TestRunner()
        result = runner.run(
            "micro-grep", "mapreduce", 40, pattern_text=""
        )
        assert result.extra.get("jobs") == ["grep"]


class TestHarness:
    def test_volume_sweep_series(self):
        # Serial on purpose: the duration-grows assertion compares
        # wall-clock measurements, which pooled backends perturb with
        # per-worker warm-up and CPU contention.
        harness = BenchmarkHarness(
            TestRunner(options=RunnerOptions(executor="serial"))
        )
        report = harness.volume_sweep(
            "micro-wordcount", "mapreduce", [10, 40]
        )
        series = report.series("duration")
        assert len(series) == 2
        assert series[0][0] == 10
        # Larger volume → more work (duration grows).
        assert series[1][1] > series[0][1]

    def test_param_sweep(self):
        harness = BenchmarkHarness()
        report = harness.param_sweep(
            "oltp-read-write", "nosql", "operation_count", [50, 100]
        )
        assert [point.value for point in report.points] == [50, 100]

    def test_compare_engines_returns_analyzer(self):
        harness = BenchmarkHarness()
        analyzer = harness.compare_engines(
            "database-aggregate-join", ["dbms", "mapreduce"], 50
        )
        factors = analyzer.speedup(
            "duration", baseline_engine="mapreduce", higher_is_better=False
        )
        assert set(factors) == {"dbms", "mapreduce"}

    def test_configuration_sweep_restores_originals(self):
        harness = BenchmarkHarness()
        before = dict(harness.runner.configurations)
        report = harness.configuration_sweep(
            "database-aggregate-join",
            "dbms",
            {
                "hash": SystemConfiguration("dbms", {"join_algorithm": "hash"}),
                "nested": SystemConfiguration(
                    "dbms", {"join_algorithm": "nested_loop"}
                ),
            },
            volume_override=50,
        )
        assert len(report.points) == 2
        assert harness.runner.configurations == before

    def test_sweep_rows(self):
        harness = BenchmarkHarness()
        report = harness.volume_sweep("micro-wordcount", "mapreduce", [10])
        rows = report.rows(["duration"])
        assert rows[0]["volume"] == 10
        assert "duration" in rows[0]


class TestReporting:
    def _results(self) -> list[RunResult]:
        runner = TestRunner()
        return [runner.run("micro-wordcount", "mapreduce", 15)]

    def test_ascii_table_aligns_columns(self):
        table = ascii_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_ascii_table_empty(self):
        assert ascii_table([]) == "(no rows)"

    def test_markdown_table_shape(self):
        table = markdown_table([{"x": 1}])
        lines = table.splitlines()
        assert lines[0] == "| x |"
        assert lines[1] == "|---|"

    def test_results_table_contains_metrics(self):
        text = results_table(self._results(), ["duration", "throughput"])
        assert "duration" in text
        assert "mapreduce" in text

    def test_results_json_roundtrips(self):
        payload = json.loads(results_json(self._results()))
        assert payload[0]["engine"] == "mapreduce"
        assert "duration" in payload[0]["metrics"]

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(1234.0) == "1,234"
        assert format_value(0.25) == "0.25"
        assert format_value(1e-6) == "1.000e-06"
        assert format_value("txt") == "txt"

    def test_format_value_negative_floats(self):
        assert format_value(-2500.0) == "-2,500"
        assert format_value(-5.5) == "-5.5"
        assert format_value(-0.25) == "-0.25"
        assert format_value(-1e-6) == "-1.000e-06"

    def test_format_value_tiny_floats_use_scientific(self):
        # Values below the 0.001 fixed-point floor must not print as 0.
        assert format_value(0.0005) == "5.000e-04"
        assert format_value(0.000999) == "9.990e-04"
        assert format_value(0.001) == "0.001"
        assert format_value(0.0) == "0"


class TestRenderFacade:
    def _results(self) -> list[RunResult]:
        runner = TestRunner()
        return [runner.run("micro-wordcount", "mapreduce", 15)]

    def test_style_registry(self):
        assert RESULT_STYLES == ("ascii", "markdown", "json", "history")

    def test_unknown_style_rejected(self):
        with pytest.raises(ExecutionError):
            render_results([], style="html")

    def test_ascii_is_the_default_style(self):
        results = self._results()
        assert render_results(results, metrics=["duration"]) == render_results(
            results, style="ascii", metrics=["duration"]
        )

    def test_delegates_match_the_facade(self):
        results = self._results()
        assert results_table(results, ["duration"]) == render_results(
            results, style="ascii", metrics=["duration"]
        )
        assert results_table(
            results, ["duration"], style="markdown"
        ) == render_results(results, style="markdown", metrics=["duration"])
        assert results_json(results) == render_results(results, style="json")

    def test_omitted_metrics_show_every_metric(self):
        results = self._results()
        table = render_results(results)
        for name in results[0].metrics:
            assert name in table

    def test_json_style_serializes_all_statistics(self):
        results = self._results()
        payload = json.loads(render_results(results, style="json"))
        stats = payload[0]["metrics"]["duration"]
        assert set(stats) == {
            "mean", "min", "max", "stdev", "p50", "p95", "p99"
        }


class TestTableEdgeCases:
    def test_explicit_column_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        table = ascii_table(rows, columns=["c", "a"])
        header = table.splitlines()[0]
        assert header.split(" | ") == ["c", "a"]
        assert "b" not in header

    def test_mixed_rows_union_columns_in_first_appearance_order(self):
        rows = [{"a": 1}, {"b": 2}, {"a": 3, "c": 4}]
        lines = ascii_table(rows).splitlines()
        assert [cell.strip() for cell in lines[0].split(" | ")] == [
            "a", "b", "c",
        ]
        # Missing cells render blank, not "None".
        assert "None" not in lines[2]

    def test_missing_cells_keep_alignment(self):
        table = ascii_table([{"a": 1, "b": 2}, {"a": 10}])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_markdown_empty_rows(self):
        assert markdown_table([]) == "(no rows)"

    def test_markdown_explicit_columns(self):
        table = markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert table.splitlines()[0] == "| b |"


class TestTraceRendering:
    def _forest(self) -> list[Span]:
        root = Span(
            "benchmark-run", attrs={"prescription": "micro-wordcount"},
            duration_seconds=1.0,
        )
        child = Span("execution", duration_seconds=0.5)
        child.children.append(
            Span("task", counters={"cache.hits": 2}, duration_seconds=0.25)
        )
        root.children.append(child)
        return [root]

    def test_empty_forest(self):
        assert render_trace([]) == "(no spans)"

    def test_tree_shows_names_durations_and_shares(self):
        text = render_trace(self._forest())
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("benchmark-run")
        assert "1000.000 ms" in lines[0]
        assert "100.0%" in lines[0]
        assert lines[1].startswith("  execution")
        assert "50.0%" in lines[1]
        assert lines[2].startswith("    task")

    def test_attrs_and_counters_render(self):
        text = render_trace(self._forest())
        assert "[prescription=micro-wordcount]" in text
        assert "cache.hits=2" in text

    def test_max_depth_prunes_the_tree(self):
        text = render_trace(self._forest(), max_depth=1)
        assert "task" not in text
        assert "execution" in text

    def test_zero_duration_root_has_no_share(self):
        text = render_trace([Span("instant", duration_seconds=0.0)])
        assert "%" not in text
