"""Tests for the execution layer: config, runner, harness, report."""

from __future__ import annotations

import json

import pytest

import repro  # noqa: F401 - triggers default registration
from repro.core.errors import ExecutionError
from repro.core.results import RunResult
from repro.engines.dbms import PlannerConfig
from repro.execution.config import (
    SystemConfiguration,
    default_configurations,
    prepare_input,
)
from repro.execution.harness import BenchmarkHarness
from repro.execution.report import (
    ascii_table,
    format_value,
    markdown_table,
    results_json,
    results_table,
)
from repro.execution.runner import RunnerOptions, TestRunner


class TestSystemConfiguration:
    def test_default_configurations_cover_all_engines(self):
        assert set(default_configurations()) == {
            "mapreduce", "dbms", "nosql", "streaming", "dfs",
        }

    def test_build_mapreduce_with_cluster_options(self):
        configuration = SystemConfiguration("mapreduce", {"num_nodes": 2})
        engine = configuration.build()
        assert engine.cluster_model.spec.num_nodes == 2

    def test_build_dbms_with_planner_options(self):
        configuration = SystemConfiguration(
            "dbms", {"join_algorithm": "merge"}
        )
        engine = configuration.build()
        assert engine.planner.config.join_algorithm == "merge"

    def test_build_nosql_with_partitions(self):
        configuration = SystemConfiguration("nosql", {"num_partitions": 3})
        assert configuration.build().num_partitions == 3

    def test_unknown_engine_rejected(self):
        with pytest.raises(ExecutionError):
            SystemConfiguration("spark").build()

    def test_prepare_input_uses_engine_format(self, text_corpus):
        from repro.engines.mapreduce import MapReduceEngine

        converted = prepare_input(text_corpus, MapReduceEngine())
        assert converted.format_name == "key-value"


class TestRunnerBehaviour:
    def test_run_aggregates_repeats(self):
        runner = TestRunner(options=RunnerOptions(repeats=3))
        result = runner.run("micro-wordcount", "mapreduce", 20)
        assert result.repeats == 3
        assert result.mean("throughput") > 0

    def test_warmup_runs_not_counted(self):
        runner = TestRunner(options=RunnerOptions(repeats=2, warmup_runs=1))
        result = runner.run("micro-wordcount", "mapreduce", 15)
        assert result.repeats == 2

    def test_repeats_use_fresh_engines(self):
        """A stateful engine (DBMS) must not see tables from prior repeats."""
        runner = TestRunner(options=RunnerOptions(repeats=3))
        result = runner.run("database-aggregate-join", "dbms", 60)
        assert result.repeats == 3  # would raise "table exists" otherwise

    def test_run_on_engines(self):
        runner = TestRunner()
        results = runner.run_on_engines(
            "database-aggregate-join", ["dbms", "mapreduce"], 50
        )
        assert [result.engine for result in results] == ["dbms", "mapreduce"]

    def test_options_validation(self):
        with pytest.raises(ExecutionError):
            RunnerOptions(repeats=0)
        with pytest.raises(ExecutionError):
            RunnerOptions(warmup_runs=-1)

    def test_overrides_flow_through(self):
        runner = TestRunner()
        result = runner.run(
            "micro-grep", "mapreduce", 40, pattern_text=""
        )
        assert result.extra.get("jobs") == ["grep"]


class TestHarness:
    def test_volume_sweep_series(self):
        harness = BenchmarkHarness()
        report = harness.volume_sweep(
            "micro-wordcount", "mapreduce", [10, 40]
        )
        series = report.series("duration")
        assert len(series) == 2
        assert series[0][0] == 10
        # Larger volume → more work (duration grows).
        assert series[1][1] > series[0][1]

    def test_param_sweep(self):
        harness = BenchmarkHarness()
        report = harness.param_sweep(
            "oltp-read-write", "nosql", "operation_count", [50, 100]
        )
        assert [point.value for point in report.points] == [50, 100]

    def test_compare_engines_returns_analyzer(self):
        harness = BenchmarkHarness()
        analyzer = harness.compare_engines(
            "database-aggregate-join", ["dbms", "mapreduce"], 50
        )
        factors = analyzer.speedup(
            "duration", baseline_engine="mapreduce", higher_is_better=False
        )
        assert set(factors) == {"dbms", "mapreduce"}

    def test_configuration_sweep_restores_originals(self):
        harness = BenchmarkHarness()
        before = dict(harness.runner.configurations)
        report = harness.configuration_sweep(
            "database-aggregate-join",
            "dbms",
            {
                "hash": SystemConfiguration("dbms", {"join_algorithm": "hash"}),
                "nested": SystemConfiguration(
                    "dbms", {"join_algorithm": "nested_loop"}
                ),
            },
            volume_override=50,
        )
        assert len(report.points) == 2
        assert harness.runner.configurations == before

    def test_sweep_rows(self):
        harness = BenchmarkHarness()
        report = harness.volume_sweep("micro-wordcount", "mapreduce", [10])
        rows = report.rows(["duration"])
        assert rows[0]["volume"] == 10
        assert "duration" in rows[0]


class TestReporting:
    def _results(self) -> list[RunResult]:
        runner = TestRunner()
        return [runner.run("micro-wordcount", "mapreduce", 15)]

    def test_ascii_table_aligns_columns(self):
        table = ascii_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_ascii_table_empty(self):
        assert ascii_table([]) == "(no rows)"

    def test_markdown_table_shape(self):
        table = markdown_table([{"x": 1}])
        lines = table.splitlines()
        assert lines[0] == "| x |"
        assert lines[1] == "|---|"

    def test_results_table_contains_metrics(self):
        text = results_table(self._results(), ["duration", "throughput"])
        assert "duration" in text
        assert "mapreduce" in text

    def test_results_json_roundtrips(self):
        payload = json.loads(results_json(self._results()))
        assert payload[0]["engine"] == "mapreduce"
        assert "duration" in payload[0]["metrics"]

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(1234.0) == "1,234"
        assert format_value(0.25) == "0.25"
        assert format_value(1e-6) == "1.000e-06"
        assert format_value("txt") == "txt"
