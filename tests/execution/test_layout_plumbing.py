"""The ``layout`` knob end to end: spec → process → store → CLI → api.

The execution layout (row | columnar) travels from every public
surface down to the engines: :class:`BenchmarkSpec` carries it through
the five-step process, the shared CLI parent exposes ``--layout``,
``api.sweep``/``api.load`` thread it into the harness and load
targets, and the run-store fingerprint includes it only when
non-default so historical row series stay byte-identical.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis.store import fingerprint_hash, spec_fingerprint
from repro.cli import main
from repro.core.errors import SpecError
from repro.core.process import BenchmarkingProcess
from repro.core.spec import BenchmarkSpec
from repro.execution.config import layout_configuration, layout_options


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSpec:
    def test_default_is_row(self):
        assert BenchmarkSpec("micro-wordcount").layout == "row"

    def test_invalid_layout_rejected(self):
        from repro.core.prescription import builtin_repository

        with pytest.raises(SpecError):
            BenchmarkSpec("micro-wordcount", layout="diagonal").validate(
                builtin_repository()
            )

    def test_old_serialized_specs_default_to_row(self):
        spec = BenchmarkSpec("micro-wordcount", volume=40)
        payload = spec.as_dict()
        payload.pop("layout", None)  # a pre-layout serialization
        assert BenchmarkSpec.from_dict(payload).layout == "row"

    def test_layout_round_trips(self):
        spec = BenchmarkSpec("micro-wordcount", layout="columnar")
        assert BenchmarkSpec.from_dict(spec.as_dict()).layout == "columnar"


class TestLayoutConfigurations:
    def test_row_needs_no_overrides(self):
        assert layout_options("row") == {}
        assert layout_configuration("dbms", "row") is None

    def test_columnar_covers_both_hot_paths(self):
        options = layout_options("columnar")
        assert options["dbms"] == {"layout": "columnar"}
        assert options["mapreduce"]["combine_batch_records"] > 0

    def test_engines_without_layout_notion_run_bare(self):
        assert layout_configuration("nosql", "columnar") is None

    def test_configuration_builds_columnar_engine(self):
        engine = layout_configuration("dbms", "columnar").build()
        assert engine.execution_layout == "columnar"


class TestProcess:
    def test_columnar_spec_reaches_the_engines(self):
        spec = BenchmarkSpec(
            "database-aggregate-join", engines=["dbms"], volume=120,
            layout="columnar",
        )
        report = BenchmarkingProcess().execute(spec)
        assert report.step("execution").detail["layout"] == "columnar"
        [result] = report.results
        assert result.extra["layout"] == "columnar"
        assert result.extra["plan"]["layout"] == "columnar"

    def test_row_spec_stays_row(self):
        spec = BenchmarkSpec(
            "database-aggregate-join", engines=["dbms"], volume=120
        )
        report = BenchmarkingProcess().execute(spec)
        [result] = report.results
        assert result.extra["layout"] == "row"

    def test_layouts_return_identical_answers(self):
        plans = {}
        for layout in ("row", "columnar"):
            spec = BenchmarkSpec(
                "database-aggregate-join", engines=["dbms"], volume=150,
                layout=layout,
            )
            [result] = BenchmarkingProcess().execute(spec).results
            plans[layout] = result.extra["plan"]
        assert plans["row"]["layout"] == "row"
        assert plans["columnar"]["layout"] == "columnar"


class TestFingerprint:
    def test_row_layout_leaves_payload_untouched(self):
        with_default = spec_fingerprint("p", "dbms", layout="row")
        without = spec_fingerprint("p", "dbms")
        assert "layout" not in with_default
        assert fingerprint_hash(with_default) == fingerprint_hash(without)

    def test_columnar_layout_forks_the_series(self):
        row = spec_fingerprint("p", "dbms")
        columnar = spec_fingerprint("p", "dbms", layout="columnar")
        assert columnar["layout"] == "columnar"
        assert fingerprint_hash(row) != fingerprint_hash(columnar)

    def test_recorded_columnar_run_lands_in_its_own_series(self, tmp_path):
        series = {}
        for layout in ("row", "columnar"):
            spec = BenchmarkSpec(
                "database-aggregate-join", engines=["dbms"], volume=100,
                layout=layout, record=True, store_dir=str(tmp_path),
            )
            report = BenchmarkingProcess().execute(spec)
            assert report.record_ids
            from repro.analysis.store import RunStore

            record = RunStore(tmp_path).get(report.record_ids[-1])
            series[layout] = record.series
            if layout == "columnar":
                assert record.fingerprint["layout"] == "columnar"
            else:
                assert "layout" not in record.fingerprint
        assert series["row"] != series["columnar"]


class TestCli:
    def test_layout_flag_runs_columnar(self):
        code, output = run_cli(
            "run", "database-aggregate-join", "--engine", "dbms",
            "--volume", "100", "--layout", "columnar", "--json",
        )
        assert code == 0
        [payload] = json.loads(output)
        assert payload["extra"]["layout"] == "columnar"

    def test_layout_defaults_to_row(self):
        code, output = run_cli(
            "run", "database-aggregate-join", "--engine", "dbms",
            "--volume", "100", "--json",
        )
        assert code == 0
        [payload] = json.loads(output)
        assert payload["extra"]["layout"] == "row"

    def test_invalid_layout_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            run_cli(
                "run", "micro-wordcount", "--layout", "diagonal"
            )


class TestService:
    def test_submitted_columnar_job_runs_columnar(self, tmp_path):
        """The orchestrator applies layout options, not just the CLI.

        Regression: ``_execute`` built ``default_configurations()``
        without merging :func:`layout_options`, so a submitted columnar
        spec silently ran row and recorded into the row series.  A
        service-recorded columnar run must carry the layout in its
        fingerprint and land in the same series as the direct ``run``.
        """
        from repro import api
        from repro.analysis.store import RunStore

        spec = api.BenchmarkSpec(
            "database-aggregate-join", engines=["dbms"], volume=100,
            layout="columnar", record=True, store_dir=str(tmp_path),
        )
        with api.serve(store_dir=str(tmp_path)) as client:
            job = client.submit(spec).wait()
        assert job.state == "done"
        store = RunStore(tmp_path)
        [record_id] = job.record_ids
        via_service = store.get(record_id)
        assert via_service.fingerprint["layout"] == "columnar"

        report = BenchmarkingProcess().execute(spec)
        via_direct = store.get(report.record_ids[-1])
        assert via_direct.series == via_service.series


class TestApi:
    def test_sweep_threads_layout(self):
        from repro import api

        report = api.sweep(
            "database-aggregate-join", "dbms", volumes=[80, 160],
            layout="columnar",
        )
        for point in report.points:
            assert point.result.extra["layout"] == "columnar"

    def test_param_sweep_threads_layout(self):
        from repro import api

        report = api.sweep(
            "micro-wordcount", "mapreduce",
            parameter="num_reduce_tasks", values=[2, 4],
            layout="columnar", volume_override=60,
        )
        assert len(report.points) == 2

    def test_load_workload_target_layout(self):
        from repro.loadgen.targets import WorkloadTarget

        target = WorkloadTarget(
            "database-aggregate-join", engine="dbms", volume=80,
            layout="columnar",
        )
        target.setup()
        try:
            assert target._test.engine.execution_layout == "columnar"
        finally:
            target.teardown()

    def test_run_accepts_layout_option(self):
        from repro import api

        report = api.run(
            "database-aggregate-join", engines=["dbms"], volume=100,
            layout="columnar",
        )
        [result] = report.results
        assert result.extra["layout"] == "columnar"
