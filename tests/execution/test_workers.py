"""Tests for the warm process worker pool (``execution/workers.py``).

Covers the pool's lifetime contract (reuse across ``run_many`` calls,
invalidation when the options it was initialized from mutate, shutdown
on ``close``), the dataset-shipping strategies (shared-bytes export for
shared keys, fingerprint shipping with worker-side regeneration and
cache hits), payload-size observability on traced runs, and the cold
per-task-payload fallback.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.prescription import builtin_repository
from repro.execution.parallel import compute_chunksize
from repro.execution.runner import RunnerOptions, RunTask, TestRunner
from repro.execution.workers import (
    WorkerPool,
    shipped_prescription,
)
from repro.observability import Tracer

#: Two prescriptions that resolve to the *same* dataset-cache key (both
#: sample the random-text generator at the same seed and volume), so a
#: batch over them exercises the shared-key export path.
SHARED_DATA_TASKS = [
    RunTask("micro-wordcount", "mapreduce"),
    RunTask("micro-sort", "mapreduce"),
]

#: Two prescriptions with *distinct* dataset keys, neither generated in
#: the parent — each is a single-consumer key, so both ship as bare
#: fingerprints and the workers regenerate deterministically.
DISTINCT_DATA_TASKS = [
    RunTask("micro-wordcount", "mapreduce"),
    RunTask("database-aggregate-join", "mapreduce"),
]


def _process_runner(max_workers: int = 2, **options) -> TestRunner:
    return TestRunner(
        options=RunnerOptions(
            executor="process", max_workers=max_workers, **options
        )
    )


class TestPoolLifetime:
    def test_pool_reused_across_run_many_calls(self):
        with _process_runner() as runner:
            runner.run_many(SHARED_DATA_TASKS)
            pool = runner._worker_pool
            assert isinstance(pool, WorkerPool)
            assert pool.batches == 1
            runner.run_many(SHARED_DATA_TASKS)
            assert runner._worker_pool is pool
            assert pool.batches == 2

    def test_pool_invalidated_when_options_mutate(self):
        with _process_runner() as runner:
            runner.run_many(SHARED_DATA_TASKS)
            stale = runner._worker_pool
            runner.options.repeats = 2
            runner.run_many(SHARED_DATA_TASKS)
            fresh = runner._worker_pool
            assert fresh is not stale
            assert fresh.batches == 1

    def test_pool_invalidated_when_max_workers_mutate(self):
        with _process_runner(max_workers=2) as runner:
            runner.run_many(SHARED_DATA_TASKS)
            stale = runner._worker_pool
            runner.options.max_workers = 1
            runner.run_many(SHARED_DATA_TASKS)
            assert runner._worker_pool is not stale
            assert runner._worker_pool.max_workers == 1

    def test_close_releases_pool_and_exports(self):
        runner = _process_runner()
        runner.run_many(SHARED_DATA_TASKS)
        pool = runner._worker_pool
        assert pool.exports  # the shared key shipped as bytes
        runner.close()
        assert runner._worker_pool is None
        assert pool.exports == {}

    def test_warm_pool_disabled_uses_cold_path(self):
        with _process_runner(warm_pool=False) as runner:
            outcomes = runner.run_many(SHARED_DATA_TASKS)
            assert runner._worker_pool is None
            assert [outcome.test_name for outcome in outcomes] == [
                "micro-wordcount@mapreduce",
                "micro-sort@mapreduce",
            ]

    def test_warm_and_cold_paths_agree_on_deterministic_metrics(self):
        deterministic = [
            "throughput", "ops_per_second", "data_rate",
            "network_rate", "energy", "cost",
        ]
        with _process_runner() as warm:
            warm_out = warm.run_many(SHARED_DATA_TASKS)
        with _process_runner(warm_pool=False) as cold:
            cold_out = cold.run_many(SHARED_DATA_TASKS)
        for a, b in zip(warm_out, cold_out):
            for name in deterministic:
                assert a.mean(name) == b.mean(name)


class TestDatasetShipping:
    def test_shared_key_exports_bytes_once_workers_hit(self):
        with _process_runner() as runner:
            outcomes = runner.run_many(SHARED_DATA_TASKS)
            pool = runner._worker_pool
            # One dataset behind both tasks -> one export for the batch.
            assert len(pool.exports) == 1
            for outcome in outcomes:
                cache_delta = outcome.extra["worker_cache"]
                assert cache_delta["misses"] == 0
                assert cache_delta["hits"] == 1

    def test_fingerprint_ship_regenerates_then_hits_locally(self):
        with _process_runner(max_workers=1) as runner:
            first = runner.run_many(DISTINCT_DATA_TASKS)
            pool = runner._worker_pool
            # Single-consumer keys ship as fingerprints: no bytes exported.
            assert pool.exports == {}
            for outcome in first:
                assert outcome.extra["worker_cache"]["misses"] == 1
            # Same tasks again: the (single) worker's cache now holds
            # both data sets, so the second batch is all hits.
            second = runner.run_many(DISTINCT_DATA_TASKS)
            assert runner._worker_pool is pool
            for outcome in second:
                cache_delta = outcome.extra["worker_cache"]
                assert cache_delta["misses"] == 0
                assert cache_delta["hits"] == 1

    def test_worker_outcome_reports_pid_and_batch(self):
        with _process_runner() as runner:
            outcomes = runner.run_many(SHARED_DATA_TASKS)
            for outcome in outcomes:
                worker = outcome.extra["worker"]
                assert worker["pid"] > 0
                assert worker["pool_batch"] == 0
            outcomes = runner.run_many(SHARED_DATA_TASKS)
            for outcome in outcomes:
                assert outcome.extra["worker"]["pool_batch"] == 1


class TestTracedWarmPool:
    def test_task_spans_carry_payload_bytes_and_pool_batch(self):
        tracer = Tracer()
        with _process_runner() as runner, tracer.activate():
            with tracer.span("batch"):
                runner.run_many(SHARED_DATA_TASKS)
            with tracer.span("batch"):
                outcomes = runner.run_many(SHARED_DATA_TASKS)
        for outcome in outcomes:
            assert "trace" not in outcome.extra
            assert "trace_summary" in outcome.extra
        first_batch, second_batch = tracer.roots()
        for batch, expected_ordinal in ((first_batch, 0), (second_batch, 1)):
            task_spans = [
                child for child in batch.children if child.name == "task"
            ]
            assert len(task_spans) == len(SHARED_DATA_TASKS)
            for span in task_spans:
                assert span.attrs["payload_bytes"] > 0
                # Descriptors are a fraction of the old self-contained
                # payloads (~2KB of prescription+suite+configuration).
                assert span.attrs["payload_bytes"] < 2000
                assert span.attrs["pool_batch"] == expected_ordinal
                assert span.counters["task.payload_bytes"] == (
                    span.attrs["payload_bytes"]
                )


class TestShippedPrescription:
    def test_builtin_prescription_ships_by_name(self):
        prescription = builtin_repository().get("micro-wordcount")
        assert shipped_prescription(prescription) == "micro-wordcount"

    def test_modified_prescription_ships_by_value(self):
        prescription = builtin_repository().get("micro-wordcount")
        modified = dataclasses.replace(
            prescription, data=dataclasses.replace(prescription.data, volume=7)
        )
        shipped = shipped_prescription(modified)
        assert shipped is modified


class TestComputeChunksize:
    def test_small_batches_stay_unchunked(self):
        assert compute_chunksize(0, 4) == 1
        assert compute_chunksize(1, 4) == 1
        assert compute_chunksize(16, 4) == 1

    def test_large_batches_amortize_ipc(self):
        assert compute_chunksize(64, 4) == 4
        assert compute_chunksize(100, 1) == 25
        assert compute_chunksize(101, 1) == 26

    def test_respects_per_worker_target(self):
        assert compute_chunksize(100, 2, per_worker=1) == 50


class TestFailurePolicyOnWarmPool:
    def test_unknown_prescription_captured_under_continue(self):
        with _process_runner() as runner:
            outcomes = runner.run_many(
                [
                    RunTask("micro-wordcount", "mapreduce"),
                    RunTask("no-such-prescription", "mapreduce"),
                ],
                on_error="continue",
            )
            assert type(outcomes[0]).__name__ == "RunResult"
            failure = outcomes[1]
            assert type(failure).__name__ == "TaskFailure"
            assert failure.error_type == "TestGenerationError"

    def test_unknown_prescription_aborts_by_default(self):
        with _process_runner() as runner:
            with pytest.raises(Exception):
                runner.run_many(
                    [
                        RunTask("micro-wordcount", "mapreduce"),
                        RunTask("no-such-prescription", "mapreduce"),
                    ]
                )
