"""Data generators preserving the 4V properties of big data (Figure 3).

The sub-modules cover the representative data sources of Section 2.1 —
table, text, stream, and graph — plus the semi-structured derivatives
(web logs, reviews), the velocity controllers, scale-down sampling, the
veracity metrics, and format conversion.
"""

from repro.datagen.base import (
    DEFAULT_CHUNK_SIZE,
    DataGenerator,
    DataSet,
    DataType,
    RecordBatch,
    StructureClass,
    as_dataset,
    mix_seed,
)
from repro.datagen.cache import CacheStats, DatasetCache
from repro.datagen.formats import available_formats, convert, convert_batches
from repro.datagen.source import (
    DatasetSource,
    GeneratorSource,
    as_source,
    ensure_dataset,
)
from repro.datagen.graph import (
    ErdosRenyiGenerator,
    PreferentialAttachmentGenerator,
    RmatGraphGenerator,
)
from repro.datagen.media import SyntheticImageGenerator, image_features
from repro.datagen.resume import ResumeGenerator, cluster_cohesion
from repro.datagen.sampling import scale_down
from repro.datagen.stream import (
    BurstyArrivals,
    DiurnalArrivals,
    EmpiricalArrivals,
    EventKind,
    PoissonArrivals,
    StreamEvent,
    StreamGenerator,
    UniformArrivals,
)
from repro.datagen.table import (
    Categorical,
    FittedTableGenerator,
    ForeignKey,
    Gaussian,
    SequentialKey,
    TableGenerator,
    TableSchema,
    TextColumn,
    UniformFloat,
    UniformInt,
    Zipf,
    retail_star_schema,
)
from repro.datagen.text import (
    LdaModel,
    LdaTextGenerator,
    RandomTextGenerator,
    UnigramTextGenerator,
    tokenize,
    word_distribution,
)
from repro.datagen.velocity import (
    PacedStream,
    ParallelGenerationController,
    UpdateScheduler,
    VelocityReport,
)
from repro.datagen.veracity import (
    VeracityReport,
    chi_square_statistic,
    graph_veracity,
    jensen_shannon_divergence,
    kl_divergence,
    model_veracity,
    stream_veracity,
    table_veracity,
    text_veracity,
    topic_structure_veracity,
    total_variation,
)
from repro.datagen.weblog import ReviewGenerator, WebLogGenerator

__all__ = [
    "BurstyArrivals",
    "CacheStats",
    "Categorical",
    "DEFAULT_CHUNK_SIZE",
    "DataGenerator",
    "DataSet",
    "DataType",
    "DatasetCache",
    "DatasetSource",
    "DiurnalArrivals",
    "EmpiricalArrivals",
    "ErdosRenyiGenerator",
    "EventKind",
    "FittedTableGenerator",
    "ForeignKey",
    "Gaussian",
    "GeneratorSource",
    "LdaModel",
    "LdaTextGenerator",
    "PacedStream",
    "ParallelGenerationController",
    "PoissonArrivals",
    "PreferentialAttachmentGenerator",
    "RandomTextGenerator",
    "RecordBatch",
    "ResumeGenerator",
    "ReviewGenerator",
    "RmatGraphGenerator",
    "SequentialKey",
    "StreamEvent",
    "SyntheticImageGenerator",
    "StreamGenerator",
    "StructureClass",
    "TableGenerator",
    "TableSchema",
    "TextColumn",
    "UniformArrivals",
    "UniformFloat",
    "UniformInt",
    "UnigramTextGenerator",
    "UpdateScheduler",
    "VelocityReport",
    "VeracityReport",
    "WebLogGenerator",
    "Zipf",
    "as_dataset",
    "as_source",
    "available_formats",
    "cluster_cohesion",
    "convert",
    "convert_batches",
    "chi_square_statistic",
    "ensure_dataset",
    "graph_veracity",
    "image_features",
    "jensen_shannon_divergence",
    "kl_divergence",
    "mix_seed",
    "model_veracity",
    "retail_star_schema",
    "scale_down",
    "stream_veracity",
    "table_veracity",
    "text_veracity",
    "tokenize",
    "topic_structure_veracity",
    "total_variation",
    "word_distribution",
]
