"""Semi-structured resume generation.

Resumes are the paper's third semi-structured example ("web logs,
reviews, and resumes, where reviews and resumes contain both text and
graph data") and part of BigDataBench's variety row in Table 1.  A
generated resume combines:

* structured fields (name, experience, education level),
* a skill set drawn from correlated skill clusters (skills co-occur the
  way real ones do — a "graph" flavour: sampling a neighbourhood of a
  skill co-occurrence graph),
* free-text summaries from a fitted text model (veracity-preserving when
  an LDA/unigram generator is supplied).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.errors import GenerationError
from repro.datagen.base import DataGenerator, DataType
from repro.datagen.corpus import FIRST_NAMES

#: Skill clusters: skills within a cluster co-occur strongly.
SKILL_CLUSTERS: dict[str, tuple[str, ...]] = {
    "data-engineering": (
        "hadoop", "mapreduce", "hive", "spark", "kafka", "etl",
    ),
    "databases": (
        "sql", "mysql", "postgres", "query-optimization", "indexing",
        "transactions",
    ),
    "machine-learning": (
        "classification", "clustering", "regression", "neural-networks",
        "feature-engineering", "model-evaluation",
    ),
    "systems": (
        "linux", "networking", "c", "distributed-systems", "profiling",
        "concurrency",
    ),
}

EDUCATION_LEVELS: tuple[str, ...] = ("bsc", "msc", "phd")


class ResumeGenerator(DataGenerator):
    """Generates semi-structured resumes with clustered skills.

    ``text_generator`` (optional, must be fitted) supplies the free-text
    summary so text veracity chains from a real corpus; without one, the
    summary is a deterministic template.
    """

    data_type = DataType.RESUME
    veracity_aware = True

    def __init__(
        self,
        text_generator: DataGenerator | None = None,
        skills_per_resume: int = 5,
        cross_cluster_probability: float = 0.15,
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        if skills_per_resume <= 0:
            raise GenerationError(
                f"skills_per_resume must be positive, got {skills_per_resume}"
            )
        if not 0.0 <= cross_cluster_probability <= 1.0:
            raise GenerationError(
                "cross_cluster_probability must be in [0, 1], got "
                f"{cross_cluster_probability}"
            )
        if text_generator is not None and not text_generator.is_fitted:
            raise GenerationError(
                "the resume text generator must be fitted before use"
            )
        self.text_generator = text_generator
        self.skills_per_resume = skills_per_resume
        self.cross_cluster_probability = cross_cluster_probability
        self._fitted = True  # usable without a text model

    def _sample_skills(self, rng: np.random.Generator) -> list[str]:
        """A home cluster plus occasional cross-cluster skills."""
        clusters = sorted(SKILL_CLUSTERS)
        home = clusters[int(rng.integers(len(clusters)))]
        skills: set[str] = set()
        while len(skills) < self.skills_per_resume:
            if rng.random() < self.cross_cluster_probability:
                cluster = clusters[int(rng.integers(len(clusters)))]
            else:
                cluster = home
            pool = SKILL_CLUSTERS[cluster]
            skills.add(pool[int(rng.integers(len(pool)))])
        return sorted(skills)

    def iter_partition(
        self, volume: int, partition: int, num_partitions: int
    ):
        count = self.partition_volume(volume, partition, num_partitions)
        if count == 0:
            return
        rng = self.rng_for_partition(partition, num_partitions)
        start = sum(
            self.partition_volume(volume, p, num_partitions)
            for p in range(partition)
        )
        # Summaries stream from the text model's own partition iterator,
        # so a streaming text generator keeps this generator streaming.
        summaries = None
        if self.text_generator is not None:
            summaries = self.text_generator.iter_partition(
                volume, partition, num_partitions
            )
        for offset in range(count):
            person_id = start + offset
            skills = self._sample_skills(rng)
            if summaries is not None:
                summary = next(summaries)
            else:
                summary = (
                    f"experienced in {', '.join(skills[:3])} and related work"
                )
            yield {
                "person_id": person_id,
                "name": f"{FIRST_NAMES[person_id % len(FIRST_NAMES)]}"
                        f"_{person_id}",
                "education": EDUCATION_LEVELS[
                    int(rng.choice(3, p=[0.5, 0.35, 0.15]))
                ],
                "experience_years": int(rng.integers(0, 25)),
                "skills": skills,
                "summary": summary,
            }


def skill_cooccurrence(
    resumes: list[dict[str, Any]]
) -> dict[tuple[str, str], int]:
    """Pairwise skill co-occurrence counts over a resume set.

    The "graph data inside resumes" the paper mentions: the skill
    co-occurrence graph used to check that clustered structure survived
    generation.
    """
    counts: dict[tuple[str, str], int] = {}
    for resume in resumes:
        skills = resume["skills"]
        for index, left in enumerate(skills):
            for right in skills[index + 1 :]:
                pair = (left, right) if left < right else (right, left)
                counts[pair] = counts.get(pair, 0) + 1
    return counts


def cluster_cohesion(resumes: list[dict[str, Any]]) -> float:
    """Fraction of skill co-occurrences falling within one cluster.

    Near 1.0 when resumes respect the skill clusters; ~0.25 for random
    skill sets over four clusters.
    """
    cluster_of = {
        skill: cluster
        for cluster, skills in SKILL_CLUSTERS.items()
        for skill in skills
    }
    within = total = 0
    for (left, right), count in skill_cooccurrence(resumes).items():
        total += count
        if cluster_of[left] == cluster_of[right]:
            within += count
    if total == 0:
        return 0.0
    return within / total
