"""A content-addressed cache of deterministically generated data sets.

Figure 3's generation process is deterministic by construction: a
generator seeded with ``s`` always produces the same records for the same
volume and partitioning (see :func:`repro.datagen.base.mix_seed`).  That
makes the generated data *content-addressable* — the tuple (generator
name, seed, parameters, volume, partitions, fit source) fully determines
the output — so cross-engine comparisons, repeats, and sweep points that
prescribe identical data can share one in-memory data set instead of
regenerating it once per consumer (the BDGS scalable-generation
requirement, applied to the single-host simulator).

The cache is thread-safe: concurrent requests for the *same* key generate
once and share the result, while distinct keys generate concurrently.
Hit/miss counters are kept so run reports can surface how much generation
work was avoided.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

from repro.datagen.base import DataSet
from repro.observability import current_tracer

#: A fully-resolved cache key; see :meth:`DatasetCache.make_key`.
CacheKey = tuple


@dataclass(frozen=True)
class CacheStats:
    """A typed snapshot of the cache's hit/miss counters.

    Immutable by design: snapshots taken before and after an operation
    can be subtracted (:meth:`since`) to report what *that operation*
    cost, instead of process-lifetime totals that earlier unrelated
    runs inflate.
    """

    hits: int = 0
    misses: int = 0
    #: Entries resident at snapshot time (a gauge, not a counter).
    entries: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return (self.hits / self.requests) if self.requests else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta between this snapshot and an earlier one.

        Counters subtract; ``entries`` stays this snapshot's gauge.
        """
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            entries=self.entries,
        )

    def as_dict(self) -> dict[str, Any]:
        """The JSON-friendly form reports embed."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
        }


class DatasetCache:
    """An LRU cache of generated :class:`DataSet` objects.

    Entries are shared, not copied — callers must treat cached data sets
    as immutable, the same contract the runner already applies when it
    shares one data set across repeats and engines.
    """

    def __init__(self, max_entries: int | None = 32) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(
                f"max_entries must be positive or None, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: OrderedDict[CacheKey, DataSet] = OrderedDict()
        self._lock = threading.Lock()
        self._key_locks: dict[CacheKey, threading.Lock] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    @staticmethod
    def make_key(
        generator: str,
        seed: int,
        volume: int,
        num_partitions: int = 1,
        fit_on: str | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> CacheKey:
        """The content address of one deterministic generation request.

        Every field that can change the produced records participates:
        the registered generator name, its seed, the requested volume,
        the partition count (partitioned generation interleaves streams
        differently from single-partition generation), the veracity seed
        data, and any extra generator parameters.
        """
        frozen_params = (
            tuple(sorted(params.items())) if params else ()
        )
        return (
            str(generator),
            int(seed),
            int(volume),
            int(num_partitions),
            fit_on,
            frozen_params,
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get_or_generate(
        self, key: CacheKey, factory: Callable[[], DataSet]
    ) -> DataSet:
        """Return the cached data set for ``key``, generating on miss.

        Concurrent callers with the same key block on a per-key lock so
        the factory runs exactly once; callers with different keys
        generate concurrently.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                current_tracer().count("cache.hits")
                return cached
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            try:
                with self._lock:
                    cached = self._entries.get(key)
                    if cached is not None:
                        self._entries.move_to_end(key)
                        self.hits += 1
                        current_tracer().count("cache.hits")
                        return cached
                dataset = factory()
                self.put(key, dataset, _count_miss=True)
                current_tracer().count("cache.misses")
                return dataset
            finally:
                # Always retire the per-key lock — including when the
                # factory raises.  Leaking it would leave every later
                # caller of this key serializing on a dead lock forever.
                with self._lock:
                    self._key_locks.pop(key, None)


    def put(
        self, key: CacheKey, dataset: DataSet, _count_miss: bool = False
    ) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        with self._lock:
            if _count_miss:
                self.misses += 1
            self._entries[key] = dataset
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)

    def peek(self, key: CacheKey) -> DataSet | None:
        """The cached entry, without touching counters or LRU order."""
        with self._lock:
            return self._entries.get(key)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._key_locks.clear()
            self.hits = 0
            self.misses = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        """A typed snapshot of the hit/miss counters for run reports."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                entries=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatasetCache(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
