"""A content-addressed cache of deterministically generated data sets.

Figure 3's generation process is deterministic by construction: a
generator seeded with ``s`` always produces the same records for the same
volume and partitioning (see :func:`repro.datagen.base.mix_seed`).  That
makes the generated data *content-addressable* — the tuple (generator
name, seed, parameters, volume, partitions, fit source) fully determines
the output — so cross-engine comparisons, repeats, and sweep points that
prescribe identical data can share one in-memory data set instead of
regenerating it once per consumer (the BDGS scalable-generation
requirement, applied to the single-host simulator).

The cache is thread-safe: concurrent requests for the *same* key generate
once and share the result, while distinct keys generate concurrently.
Hit/miss counters are kept so run reports can surface how much generation
work was avoided.

When constructed with a byte budget (``max_resident_bytes``) and a
``spill_dir``, entries that would push the resident total past the budget
are spilled to disk as a chunked pickle stream instead of being dropped:
a spilled entry still counts as cached, its records can be re-streamed
chunk by chunk via :meth:`DatasetCache.get_source` without ever holding
the full list in memory, and a materializing hit loads it back and makes
it resident again.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.datagen.base import DataSet, DataType
from repro.datagen.handoff import (
    STREAM_CHUNK_RECORDS,
    FileStreamSource,
    write_stream,
)
from repro.observability import current_tracer

#: A fully-resolved cache key; see :meth:`DatasetCache.make_key`.
CacheKey = tuple

#: Records per pickled chunk in a spill file (the chunk-stream format is
#: shared with the process pool's dataset handoff — see
#: :mod:`repro.datagen.handoff`).
SPILL_CHUNK_RECORDS = STREAM_CHUNK_RECORDS


@dataclass(frozen=True)
class CacheStats:
    """A typed snapshot of the cache's hit/miss counters.

    Immutable by design: snapshots taken before and after an operation
    can be subtracted (:meth:`since`) to report what *that operation*
    cost, instead of process-lifetime totals that earlier unrelated
    runs inflate.
    """

    hits: int = 0
    misses: int = 0
    #: Entries resident at snapshot time (a gauge, not a counter).
    entries: int = 0
    #: Entries spilled to disk since construction (a counter).
    spills: int = 0
    #: Hits served from spilled entries (a counter).
    spill_hits: int = 0
    #: Entries currently living on disk (a gauge).
    spilled_entries: int = 0
    #: Estimated bytes of in-memory entries at snapshot time (a gauge).
    resident_bytes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return (self.hits / self.requests) if self.requests else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta between this snapshot and an earlier one.

        Counters subtract; gauges stay this snapshot's values.
        """
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            entries=self.entries,
            spills=self.spills - earlier.spills,
            spill_hits=self.spill_hits - earlier.spill_hits,
            spilled_entries=self.spilled_entries,
            resident_bytes=self.resident_bytes,
        )

    def as_dict(self) -> dict[str, Any]:
        """The JSON-friendly form reports embed.

        Spill fields appear only when spilling has happened, so reports
        from memory-unconstrained runs keep their historical shape.
        """
        payload: dict[str, Any] = {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
        }
        if self.spills or self.spill_hits or self.spilled_entries:
            payload["spills"] = self.spills
            payload["spill_hits"] = self.spill_hits
            payload["spilled_entries"] = self.spilled_entries
            payload["resident_bytes"] = self.resident_bytes
        return payload


@dataclass
class _Entry:
    """One cache slot: resident (``dataset``) or spilled (``path``)."""

    dataset: DataSet | None
    nbytes: int
    path: Path | None = None
    # Header fields preserved for spilled entries so the source protocol
    # works without touching the spill file.
    name: str = ""
    data_type: DataType = DataType.TEXT
    metadata: dict[str, Any] = field(default_factory=dict)
    num_records: int = 0

    @property
    def resident(self) -> bool:
        return self.dataset is not None


class SpilledDatasetSource(FileStreamSource):
    """A dataset source re-streaming a spilled cache entry from disk.

    Satisfies :class:`~repro.datagen.source.DatasetSource`: batches are
    read chunk by chunk from the pickle stream (the shared chunk-stream
    format of :mod:`repro.datagen.handoff`), so peak memory is one
    chunk regardless of how large the spilled data set is.
    """


class DatasetCache:
    """An LRU cache of generated :class:`DataSet` objects.

    Entries are shared, not copied — callers must treat cached data sets
    as immutable, the same contract the runner already applies when it
    shares one data set across repeats and engines.

    ``max_resident_bytes`` bounds the estimated in-memory footprint; when
    the budget is exceeded, least-recently-used entries are spilled to
    ``spill_dir`` (kept cached, re-streamable) if one is configured, or
    evicted outright if not.
    """

    def __init__(
        self,
        max_entries: int | None = 32,
        max_resident_bytes: int | None = None,
        spill_dir: str | Path | None = None,
    ) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(
                f"max_entries must be positive or None, got {max_entries}"
            )
        if max_resident_bytes is not None and max_resident_bytes <= 0:
            raise ValueError(
                "max_resident_bytes must be positive or None, got "
                f"{max_resident_bytes}"
            )
        self.max_entries = max_entries
        self.max_resident_bytes = max_resident_bytes
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._entries: OrderedDict[CacheKey, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self._key_locks: dict[CacheKey, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.spills = 0
        self.spill_hits = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    @staticmethod
    def make_key(
        generator: str,
        seed: int,
        volume: int,
        num_partitions: int = 1,
        fit_on: str | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> CacheKey:
        """The content address of one deterministic generation request.

        Every field that can change the produced records participates:
        the registered generator name, its seed, the requested volume,
        the partition count (partitioned generation interleaves streams
        differently from single-partition generation), the veracity seed
        data, and any extra generator parameters.
        """
        frozen_params = (
            tuple(sorted(params.items())) if params else ()
        )
        return (
            str(generator),
            int(seed),
            int(volume),
            int(num_partitions),
            fit_on,
            frozen_params,
        )

    @staticmethod
    def fingerprint(key: CacheKey) -> str:
        """The sha256 content address of one cache key.

        Stable across processes (keys are tuples of primitives), so a
        parent can ship the fingerprint to a pool worker and both sides
        agree on which deterministic generation it names.
        """
        return hashlib.sha256(repr(key).encode()).hexdigest()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get_or_generate(
        self, key: CacheKey, factory: Callable[[], DataSet]
    ) -> DataSet:
        """Return the cached data set for ``key``, generating on miss.

        Concurrent callers with the same key block on a per-key lock so
        the factory runs exactly once; callers with different keys
        generate concurrently.  A hit on a spilled entry loads it back
        into memory (and counts as a spill hit).
        """
        dataset = self._lookup(key, materialize=True)
        if dataset is not None:
            return dataset
        with self._lock:
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            try:
                dataset = self._lookup(key, materialize=True)
                if dataset is not None:
                    return dataset
                dataset = factory()
                self.put(key, dataset, _count_miss=True)
                current_tracer().count("cache.misses")
                return dataset
            finally:
                # Always retire the per-key lock — including when the
                # factory raises.  Leaking it would leave every later
                # caller of this key serializing on a dead lock forever.
                with self._lock:
                    self._key_locks.pop(key, None)

    def get_source(self, key: CacheKey):
        """The cached entry as a dataset source, or ``None`` on miss.

        A resident entry returns its :class:`DataSet`; a spilled entry
        returns a :class:`SpilledDatasetSource` that re-streams from disk
        *without* loading the records back into memory — the bounded-
        memory read path for consumers that iterate batches.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            current_tracer().count("cache.hits")
            if entry.resident:
                return entry.dataset
            self.spill_hits += 1
            current_tracer().count("cache.spill_hits")
            return SpilledDatasetSource(
                path=entry.path,
                name=entry.name,
                data_type=entry.data_type,
                metadata=entry.metadata,
                num_records=entry.num_records,
            )

    def _lookup(self, key: CacheKey, materialize: bool) -> DataSet | None:
        """A hit (restoring a spilled entry if needed), or None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            current_tracer().count("cache.hits")
            if entry.resident:
                return entry.dataset
            # Spilled: load it back and make it resident again.
            self.spill_hits += 1
            current_tracer().count("cache.spill_hits")
            source = SpilledDatasetSource(
                path=entry.path,
                name=entry.name,
                data_type=entry.data_type,
                metadata=entry.metadata,
                num_records=entry.num_records,
            )
            dataset = source.materialize()
            entry.path.unlink(missing_ok=True)
            entry.dataset = dataset
            entry.path = None
            self._enforce_budget_locked(keep=key)
            return dataset

    def put(
        self, key: CacheKey, dataset: DataSet, _count_miss: bool = False
    ) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        with self._lock:
            if _count_miss:
                self.misses += 1
            old = self._entries.pop(key, None)
            if old is not None and old.path is not None:
                old.path.unlink(missing_ok=True)
            self._entries[key] = _Entry(
                dataset=dataset,
                nbytes=dataset.estimated_bytes(),
                name=dataset.name,
                data_type=dataset.data_type,
                metadata=dict(dataset.metadata),
                num_records=dataset.num_records,
            )
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    _, evicted = self._entries.popitem(last=False)
                    if evicted.path is not None:
                        evicted.path.unlink(missing_ok=True)
            self._enforce_budget_locked(keep=None)

    def _enforce_budget_locked(self, keep: CacheKey | None) -> None:
        """Spill (or evict) LRU resident entries until under budget.

        ``keep`` protects one entry — the one a caller is about to return
        a reference to — from being chosen, unless it is the only
        resident entry left.
        """
        if self.max_resident_bytes is None:
            return
        while self._resident_bytes_locked() > self.max_resident_bytes:
            victim_key = None
            for candidate_key, candidate in self._entries.items():
                if candidate.resident and candidate_key != keep:
                    victim_key = candidate_key
                    break
            if victim_key is None:
                # Only `keep` (or nothing) is resident; over budget with a
                # single entry is accepted — the caller holds it anyway.
                return
            entry = self._entries[victim_key]
            if self.spill_dir is None:
                del self._entries[victim_key]
                continue
            self._spill_locked(victim_key, entry)

    def _resident_bytes_locked(self) -> int:
        return sum(e.nbytes for e in self._entries.values() if e.resident)

    def _spill_locked(self, key: CacheKey, entry: _Entry) -> None:
        """Write one resident entry to disk and drop its records."""
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        path = self.spill_dir / f"spill-{self.fingerprint(key)[:16]}.pkl"
        with path.open("wb") as handle:
            write_stream(handle, entry.dataset)
        entry.dataset = None
        entry.path = path
        self.spills += 1
        current_tracer().count("cache.spills")

    def export_source(self, key: CacheKey) -> Any:
        """The cached entry in its cheapest exportable shape, or ``None``.

        Used by the process pool's dataset handoff: a resident entry
        returns its :class:`DataSet` (to be serialized once into shared
        memory), a spilled entry its :class:`SpilledDatasetSource` (the
        spill file ships as a path — zero new bytes).  Unlike
        :meth:`get_source`, this touches neither the counters nor the
        LRU order: exporting is bookkeeping, not a consumer request, so
        it must not skew the hit/miss deltas reports attach to runs.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.resident:
                return entry.dataset
            return SpilledDatasetSource(
                path=entry.path,
                name=entry.name,
                data_type=entry.data_type,
                metadata=entry.metadata,
                num_records=entry.num_records,
            )

    def peek(self, key: CacheKey) -> DataSet | None:
        """The cached entry, without touching counters or LRU order.

        Spilled entries return ``None`` from here — peeking must not do
        disk I/O; use :meth:`get_source` to read one.
        """
        with self._lock:
            entry = self._entries.get(key)
            return entry.dataset if entry is not None else None

    def clear(self) -> None:
        """Drop every entry (and spill file) and reset the counters."""
        with self._lock:
            for entry in self._entries.values():
                if entry.path is not None:
                    entry.path.unlink(missing_ok=True)
            self._entries.clear()
            self._key_locks.clear()
            self.hits = 0
            self.misses = 0
            self.spills = 0
            self.spill_hits = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        """A typed snapshot of the hit/miss counters for run reports."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                entries=len(self._entries),
                spills=self.spills,
                spill_hits=self.spill_hits,
                spilled_entries=sum(
                    1 for e in self._entries.values() if not e.resident
                ),
                # Tracked only when a budget is set, so budget-free caches
                # keep their historical (all-zero-gauges) snapshot shape.
                resident_bytes=(
                    self._resident_bytes_locked()
                    if self.max_resident_bytes is not None
                    else 0
                ),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatasetCache(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, spills={self.spills})"
        )
