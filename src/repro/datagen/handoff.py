"""Zero-copy dataset handoff for process fan-out (BDGS-style scaling).

Shipping a generated data set to a worker process by pickling it into
every task payload is the single largest overhead of the process
executor backend: the same records cross the pool boundary once per
task.  This module makes the bytes cross **at most once** — or never:

* one **chunk-stream format** (a pickled header followed by pickled
  record chunks until EOF) shared with the dataset cache's disk-spill
  files, so a spilled cache entry *is already* in shipping shape;
* :class:`SharedMemoryStreamSource` / :class:`FileStreamSource` —
  :class:`~repro.datagen.source.DatasetSource` implementations that
  re-stream a chunk stream from a ``multiprocessing.shared_memory``
  segment (read in place, no per-worker copy of the serialized bytes)
  or from a disk file;
* :class:`DatasetHandle` — the tiny picklable descriptor that travels
  in a task instead of the records: a content fingerprint plus where
  (if anywhere) the serialized bytes live.  A ``fingerprint``-kind
  handle ships no bytes at all: generation is deterministic, so the
  worker regenerates the identical records from the seed and caches
  them locally (see :meth:`repro.datagen.cache.DatasetCache.make_key`).

The parent exports a data set once per pool (:func:`export_dataset`),
workers open the handle (:func:`open_handle`) and either re-stream the
shared bytes or regenerate — never receiving the records through the
task pipe.
"""

from __future__ import annotations

import io
import pickle
import tempfile
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO

from repro.core.errors import GenerationError
from repro.datagen.base import (
    DEFAULT_CHUNK_SIZE,
    DataSet,
    DataType,
    RecordBatch,
)

try:  # pragma: no cover - exercised implicitly on every import
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm
    _shared_memory = None

#: Records per pickled chunk in a serialized stream (and in the cache's
#: spill files, which use this module's writer).
STREAM_CHUNK_RECORDS = DEFAULT_CHUNK_SIZE

#: The ways a worker can obtain a dataset from a handle.
HANDLE_KINDS = ("shm", "file", "fingerprint")


# ---------------------------------------------------------------------------
# The chunk-stream format
# ---------------------------------------------------------------------------


def write_stream(
    handle: BinaryIO,
    dataset: DataSet,
    chunk_records: int = STREAM_CHUNK_RECORDS,
) -> None:
    """Serialize ``dataset`` as header + pickled record chunks.

    The reader never needs the full record list in memory: chunks are
    unpickled one at a time until EOF.  This is the dataset cache's
    disk-spill format — cache spills and pool exports are byte-compatible.
    """
    header = {
        "name": dataset.name,
        "data_type": dataset.data_type.name,
        "num_records": dataset.num_records,
        "metadata": dict(dataset.metadata),
    }
    pickle.dump(header, handle)
    records = dataset.records
    for start in range(0, len(records), chunk_records):
        pickle.dump(records[start : start + chunk_records], handle)


def read_header(handle: BinaryIO) -> dict[str, Any]:
    """The stream's header dict (leaves the handle at the first chunk)."""
    return pickle.load(handle)


def iter_chunks(handle: BinaryIO) -> Iterator[list[Any]]:
    """Yield record chunks from a stream positioned past its header."""
    while True:
        try:
            yield pickle.load(handle)
        except EOFError:
            return


def serialize_dataset(dataset: DataSet) -> bytes:
    """The full chunk stream as one bytes object (for shm export)."""
    buffer = io.BytesIO()
    write_stream(buffer, dataset)
    return buffer.getvalue()


class _MemoryviewReader(io.RawIOBase):
    """A read-only raw IO over a memoryview — no copy of the buffer.

    ``pickle.Unpickler`` reads through this directly, so unpickling a
    shared-memory chunk stream touches the segment in place; only the
    deserialized records themselves are allocated in the worker.
    """

    def __init__(self, view: memoryview) -> None:
        self._view = view
        self._pos = 0

    def readable(self) -> bool:  # pragma: no cover - io protocol
        return True

    def readinto(self, buffer: bytearray) -> int:
        count = min(len(buffer), len(self._view) - self._pos)
        buffer[:count] = self._view[self._pos : self._pos + count]
        self._pos += count
        return count


# ---------------------------------------------------------------------------
# Stream-backed dataset sources
# ---------------------------------------------------------------------------


class StreamSource:
    """Base for sources that re-stream a serialized chunk stream.

    Satisfies :class:`~repro.datagen.source.DatasetSource`: batches are
    re-chunked lazily from the stored chunks, so peak memory is one
    chunk regardless of the stream's total size.  Subclasses supply
    :meth:`_open_stream`.
    """

    def __init__(
        self,
        name: str,
        data_type: DataType,
        metadata: dict[str, Any],
        num_records: int,
    ) -> None:
        self.name = name
        self._data_type = data_type
        self.metadata = dict(metadata)
        self._num_records = num_records

    # -- subclass hook --------------------------------------------------

    def _open_stream(self) -> BinaryIO:
        """A fresh binary stream positioned at the header."""
        raise NotImplementedError

    # -- DatasetSource protocol -----------------------------------------

    @property
    def data_type(self) -> DataType:
        return self._data_type

    @property
    def num_records(self) -> int:
        return self._num_records

    def __len__(self) -> int:
        return self._num_records

    def _iter_chunks(self) -> Iterator[list[Any]]:
        with self._open_stream() as handle:
            read_header(handle)
            yield from iter_chunks(handle)

    def batches(self, chunk_size: int | None = None) -> Iterator[RecordBatch]:
        """Re-chunk the stored stream to the requested chunk size."""
        chunk_size = DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size
        if chunk_size <= 0:
            raise GenerationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        buffer: list[Any] = []
        index = 0
        offset = 0
        for chunk in self._iter_chunks():
            buffer.extend(chunk)
            while len(buffer) >= chunk_size:
                records, buffer = buffer[:chunk_size], buffer[chunk_size:]
                yield RecordBatch(
                    records=records, data_type=self._data_type,
                    index=index, offset=offset,
                )
                offset += len(records)
                index += 1
        if buffer:
            yield RecordBatch(
                records=buffer, data_type=self._data_type,
                index=index, offset=offset,
            )

    def __iter__(self) -> Iterator[Any]:
        for batch in self.batches():
            yield from batch

    def materialize(self) -> DataSet:
        """Load the full data set back into memory."""
        records: list[Any] = []
        for chunk in self._iter_chunks():
            records.extend(chunk)
        return DataSet(
            name=self.name,
            data_type=self._data_type,
            records=records,
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"records={self._num_records})"
        )


class FileStreamSource(StreamSource):
    """A dataset source re-streaming a chunk-stream file from disk."""

    def __init__(
        self,
        path: Path,
        name: str,
        data_type: DataType,
        metadata: dict[str, Any],
        num_records: int,
    ) -> None:
        super().__init__(name, data_type, metadata, num_records)
        self.path = Path(path)

    def _open_stream(self) -> BinaryIO:
        return self.path.open("rb")


class SharedMemoryStreamSource(StreamSource):
    """A dataset source reading a chunk stream out of a shm segment.

    Each stream pass attaches to the segment by name, unpickles in
    place through a :class:`_MemoryviewReader` (the serialized bytes
    are never copied into the worker), and detaches when the pass
    finishes — the parent owns the segment's lifetime.
    """

    def __init__(
        self,
        shm_name: str,
        nbytes: int,
        name: str,
        data_type: DataType,
        metadata: dict[str, Any],
        num_records: int,
    ) -> None:
        super().__init__(name, data_type, metadata, num_records)
        self.shm_name = shm_name
        self.nbytes = nbytes

    def _iter_chunks(self) -> Iterator[list[Any]]:
        if _shared_memory is None:  # pragma: no cover - platform gap
            raise GenerationError("shared memory is unavailable")
        segment = _shared_memory.SharedMemory(name=self.shm_name)
        try:
            view = segment.buf[: self.nbytes]
            raw = _MemoryviewReader(view)
            reader = io.BufferedReader(raw)
            try:
                read_header(reader)
                yield from iter_chunks(reader)
            finally:
                # Every exported view must be released before close(),
                # or the segment's mmap would refuse to detach.
                reader.detach()
                raw._view = None
                view.release()
        finally:
            segment.close()

    def _open_stream(self) -> BinaryIO:  # pragma: no cover - unused hook
        raise NotImplementedError("SharedMemoryStreamSource streams via _iter_chunks")


# ---------------------------------------------------------------------------
# Handles and exports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DatasetHandle:
    """The tiny picklable stand-in for a data set in a task descriptor.

    ``kind`` says how a worker obtains the records:

    * ``"shm"`` — re-stream from the named shared-memory segment;
    * ``"file"`` — re-stream from ``path`` (a cache spill file or a
      pool export file);
    * ``"fingerprint"`` — nothing shipped: regenerate deterministically
      from the cache key and keep the result in the worker's own cache.
    """

    key: tuple
    fingerprint: str
    kind: str
    shm_name: str | None = None
    path: str | None = None
    nbytes: int = 0
    name: str = ""
    data_type_name: str = DataType.TEXT.name
    metadata: tuple = ()
    num_records: int = 0

    def open(self) -> StreamSource:
        """The worker-side source for a byte-carrying handle."""
        data_type = DataType[self.data_type_name]
        metadata = dict(self.metadata)
        if self.kind == "shm":
            return SharedMemoryStreamSource(
                shm_name=self.shm_name,
                nbytes=self.nbytes,
                name=self.name,
                data_type=data_type,
                metadata=metadata,
                num_records=self.num_records,
            )
        if self.kind == "file":
            return FileStreamSource(
                path=Path(self.path),
                name=self.name,
                data_type=data_type,
                metadata=metadata,
                num_records=self.num_records,
            )
        raise GenerationError(
            f"handle kind {self.kind!r} carries no bytes to open"
        )


class ExportedDataset:
    """Parent-side owner of one exported data set's shared bytes.

    Created once per (pool, dataset) and reused for every batch the
    pool serves; :meth:`close` releases the shared-memory segment (or
    export file).  Cache spill files are referenced, not owned — the
    cache keeps managing their lifetime.
    """

    def __init__(
        self,
        handle: DatasetHandle,
        segment: Any = None,
        owned_path: Path | None = None,
    ) -> None:
        self.handle = handle
        self._segment = segment
        self._owned_path = owned_path
        self._closed = False

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    def close(self) -> None:
        """Release the shared bytes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._segment is not None:
            self._segment.close()
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        if self._owned_path is not None:
            self._owned_path.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExportedDataset(kind={self.handle.kind}, "
            f"nbytes={self.handle.nbytes})"
        )


def fingerprint_handle(key: tuple, fingerprint: str) -> DatasetHandle:
    """A byte-free handle: the worker regenerates from the seed."""
    return DatasetHandle(key=key, fingerprint=fingerprint, kind="fingerprint")


def export_dataset(
    key: tuple,
    fingerprint: str,
    source: Any,
    prefer_shm: bool = True,
    export_dir: str | Path | None = None,
) -> ExportedDataset:
    """Serialize a data set once into shared bytes and return its handle.

    ``source`` is a :class:`DataSet` (serialized into a shared-memory
    segment, with a temp-file fallback) or a :class:`FileStreamSource`
    (a cache spill file — already serialized on disk, shipped as a path
    without writing a single new byte).
    """
    if isinstance(source, FileStreamSource):
        return ExportedDataset(
            DatasetHandle(
                key=key,
                fingerprint=fingerprint,
                kind="file",
                path=str(source.path),
                nbytes=source.path.stat().st_size,
                name=source.name,
                data_type_name=source.data_type.name,
                metadata=tuple(sorted(source.metadata.items())),
                num_records=source.num_records,
            )
        )
    dataset: DataSet = source
    payload = serialize_dataset(dataset)
    metadata = tuple(sorted(dataset.metadata.items()))
    if prefer_shm and _shared_memory is not None and payload:
        try:
            segment = _shared_memory.SharedMemory(
                create=True, size=len(payload)
            )
        except OSError:
            segment = None
        if segment is not None:
            segment.buf[: len(payload)] = payload
            return ExportedDataset(
                DatasetHandle(
                    key=key,
                    fingerprint=fingerprint,
                    kind="shm",
                    shm_name=segment.name,
                    nbytes=len(payload),
                    name=dataset.name,
                    data_type_name=dataset.data_type.name,
                    metadata=metadata,
                    num_records=dataset.num_records,
                ),
                segment=segment,
            )
    directory = Path(export_dir) if export_dir is not None else None
    if directory is not None:
        directory.mkdir(parents=True, exist_ok=True)
    descriptor, raw_path = tempfile.mkstemp(
        prefix=f"export-{fingerprint[:16]}-",
        suffix=".pkl",
        dir=str(directory) if directory is not None else None,
    )
    path = Path(raw_path)
    with open(descriptor, "wb") as handle:
        handle.write(payload)
    return ExportedDataset(
        DatasetHandle(
            key=key,
            fingerprint=fingerprint,
            kind="file",
            path=str(path),
            nbytes=len(payload),
            name=dataset.name,
            data_type_name=dataset.data_type.name,
            metadata=metadata,
            num_records=dataset.num_records,
        ),
        owned_path=path,
    )
