"""Sampling tools for scaling data sets *down*.

Figure 3 (step 2) includes "sampling tools [that] enable the scaling down
of data set sizes".  Scaling down is harder than it looks: a uniform row
sample preserves marginal distributions but a uniform edge sample destroys
graph structure, so graph-specific samplers are provided too.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Hashable, Iterable, Sequence
from typing import Any, TypeVar

import numpy as np

from repro.core.errors import GenerationError
from repro.datagen.base import DataSet

T = TypeVar("T")

Edge = tuple[int, int]


def reservoir_sample(
    items: Iterable[T], sample_size: int, seed: int = 0
) -> list[T]:
    """Uniform sample of ``sample_size`` items in one pass (Algorithm R).

    Works on arbitrary iterables without knowing their length — the right
    tool when the "real" data set is a stream too large to hold.
    """
    if sample_size < 0:
        raise GenerationError(f"sample_size must be non-negative, got {sample_size}")
    rng = np.random.default_rng(seed)
    reservoir: list[T] = []
    for index, item in enumerate(items):
        if index < sample_size:
            reservoir.append(item)
        else:
            slot = int(rng.integers(0, index + 1))
            if slot < sample_size:
                reservoir[slot] = item
    return reservoir


def stratified_sample(
    items: Sequence[T],
    key: Callable[[T], Hashable],
    fraction: float,
    seed: int = 0,
) -> list[T]:
    """Sample ``fraction`` of each stratum, preserving group proportions.

    Every non-empty stratum keeps at least one item, so rare categories
    survive scale-down (a veracity concern for skewed data).
    """
    if not 0.0 < fraction <= 1.0:
        raise GenerationError(f"fraction must be in (0, 1], got {fraction}")
    strata: dict[Hashable, list[T]] = defaultdict(list)
    for item in items:
        strata[key(item)].append(item)
    rng = np.random.default_rng(seed)
    sampled: list[T] = []
    for stratum_key in sorted(strata, key=str):
        members = strata[stratum_key]
        keep = max(1, int(round(len(members) * fraction)))
        indexes = rng.choice(len(members), size=keep, replace=False)
        sampled.extend(members[int(i)] for i in sorted(indexes))
    return sampled


def random_node_sample(
    edges: Sequence[Edge], fraction: float, seed: int = 0
) -> list[Edge]:
    """Induced-subgraph sample: keep a vertex fraction, then both-end edges."""
    if not 0.0 < fraction <= 1.0:
        raise GenerationError(f"fraction must be in (0, 1], got {fraction}")
    vertices = sorted({v for edge in edges for v in edge})
    if not vertices:
        return []
    rng = np.random.default_rng(seed)
    keep_count = max(1, int(round(len(vertices) * fraction)))
    kept = set(
        vertices[int(i)]
        for i in rng.choice(len(vertices), size=keep_count, replace=False)
    )
    return [edge for edge in edges if edge[0] in kept and edge[1] in kept]


def random_edge_sample(
    edges: Sequence[Edge], fraction: float, seed: int = 0
) -> list[Edge]:
    """Keep a uniform fraction of edges (cheap, but thins the degree tail)."""
    if not 0.0 < fraction <= 1.0:
        raise GenerationError(f"fraction must be in (0, 1], got {fraction}")
    if not edges:
        return []
    rng = np.random.default_rng(seed)
    keep_count = max(1, int(round(len(edges) * fraction)))
    indexes = rng.choice(len(edges), size=keep_count, replace=False)
    return [edges[int(i)] for i in sorted(indexes)]


def forest_fire_sample(
    edges: Sequence[Edge],
    fraction: float,
    forward_probability: float = 0.7,
    seed: int = 0,
) -> list[Edge]:
    """Forest-fire sampling: burn outward from random seeds.

    Preserves community structure and degree skew better than uniform
    sampling (Leskovec & Faloutsos 2006), which is why it is the preferred
    scale-down tool for graph veracity.
    """
    if not 0.0 < fraction <= 1.0:
        raise GenerationError(f"fraction must be in (0, 1], got {fraction}")
    if not 0.0 < forward_probability < 1.0:
        raise GenerationError(
            f"forward_probability must be in (0, 1), got {forward_probability}"
        )
    adjacency: dict[int, list[int]] = defaultdict(list)
    for src, dst in edges:
        adjacency[src].append(dst)
        adjacency[dst].append(src)
    vertices = sorted(adjacency)
    if not vertices:
        return []
    target = max(1, int(round(len(vertices) * fraction)))
    rng = np.random.default_rng(seed)
    burned: set[int] = set()
    while len(burned) < target:
        start = vertices[int(rng.integers(len(vertices)))]
        frontier = [start]
        burned.add(start)
        while frontier and len(burned) < target:
            vertex = frontier.pop()
            neighbours = [n for n in adjacency[vertex] if n not in burned]
            if not neighbours:
                continue
            # Geometric number of neighbours to burn, mean p/(1-p).
            burn_count = int(
                rng.geometric(1.0 - forward_probability)
            )
            chosen = rng.choice(
                len(neighbours), size=min(burn_count, len(neighbours)), replace=False
            )
            for index in chosen:
                neighbour = neighbours[int(index)]
                burned.add(neighbour)
                frontier.append(neighbour)
    return [edge for edge in edges if edge[0] in burned and edge[1] in burned]


def scale_down(dataset: DataSet, fraction: float, seed: int = 0) -> DataSet:
    """Scale any data set down to ``fraction`` with a type-appropriate sampler."""
    from repro.datagen.base import DataType

    if dataset.data_type is DataType.GRAPH:
        records: list[Any] = forest_fire_sample(dataset.records, fraction, seed=seed)
    else:
        keep = max(1, int(round(dataset.num_records * fraction)))
        records = reservoir_sample(dataset.records, keep, seed=seed)
    return DataSet(
        name=f"{dataset.name}-scaled-{fraction:g}",
        data_type=dataset.data_type,
        records=records,
        metadata={**dataset.metadata, "scaled_from": dataset.num_records},
    )
