"""Velocity control for data generation.

Section 2.1 gives data velocity three meanings — generation rate,
updating frequency, and processing speed — and Section 5.1 demands *fully
controllable* velocity via two mechanisms: the number of parallel
generators, and the efficiency of the generation algorithm itself.  This
module implements the controller side:

* :class:`ParallelGenerationController` runs a generator's partitions
  serially or on a thread pool, measures per-partition times, and reports
  both the wall-clock rate and the *simulated distributed* rate (the rate
  N independent machines would achieve, i.e. ``volume / max(partition
  times)``) — the honest way to show the ×N velocity shape on a single
  host;
* :class:`UpdateScheduler` plans and applies update events to an existing
  data set at a target updating frequency;
* :class:`PacedStream` replays events no faster than a target rate against
  a real or virtual clock (processing-speed experiments).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.errors import GenerationError
from repro.datagen.base import DataGenerator, DataSet, mix_seed
from repro.datagen.stream import EventKind, StreamEvent


#: Durations below this are indistinguishable from timer noise: a
#: ``perf_counter`` delta can legitimately round to zero for trivially
#: small generations.  Rates clamp their denominator to this floor
#: instead of silently reporting 0.0 — a zero "rate" for an instant run
#: is the *opposite* of what happened, and it used to poison downstream
#: ratio plots (a ×N parallel run whose makespan rounded to zero showed
#: a speedup of 0.0, i.e. an infinite slowdown).
MIN_MEASURABLE_SECONDS = 1e-9


@dataclass
class VelocityReport:
    """Timing evidence from one controlled generation run."""

    volume: int
    num_partitions: int
    partition_seconds: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def serial_seconds(self) -> float:
        """Total work: what one machine doing everything would take."""
        return sum(self.partition_seconds)

    @property
    def simulated_parallel_seconds(self) -> float:
        """Makespan on N independent machines (the slowest partition)."""
        return max(self.partition_seconds) if self.partition_seconds else 0.0

    @property
    def below_timer_resolution(self) -> bool:
        """True when a timer rounded to ~zero and the rates are floors.

        Check this before quoting :attr:`wall_rate` /
        :attr:`simulated_rate` as measurements: a flagged report says
        "at least this fast", not "this fast"."""
        return (
            self.wall_seconds < MIN_MEASURABLE_SECONDS
            or self.simulated_parallel_seconds < MIN_MEASURABLE_SECONDS
        )

    @property
    def wall_rate(self) -> float:
        """Records/second actually observed on this host."""
        return self.volume / max(self.wall_seconds, MIN_MEASURABLE_SECONDS)

    @property
    def simulated_rate(self) -> float:
        """Records/second N distributed generators would achieve."""
        makespan = max(
            self.simulated_parallel_seconds, MIN_MEASURABLE_SECONDS
        )
        return self.volume / makespan

    @property
    def speedup(self) -> float:
        """Simulated distributed speedup over serial generation.

        A run where *both* timers rounded to zero carries no ratio
        evidence at all, so it reports the neutral 1.0 rather than
        0.0."""
        makespan = self.simulated_parallel_seconds
        if makespan < MIN_MEASURABLE_SECONDS:
            return max(self.serial_seconds / MIN_MEASURABLE_SECONDS, 1.0)
        return self.serial_seconds / makespan


class ParallelGenerationController:
    """Runs partitioned generation and measures the achieved velocity.

    This is mechanism 1 of Section 5.1: data velocity controlled "by
    deploying different numbers of parallel data generators".
    """

    def __init__(
        self,
        generator: DataGenerator,
        num_partitions: int = 1,
        use_threads: bool = False,
    ) -> None:
        if num_partitions <= 0:
            raise GenerationError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        self.generator = generator
        self.num_partitions = num_partitions
        self.use_threads = use_threads

    def run(self, volume: int, name: str | None = None) -> tuple[DataSet, VelocityReport]:
        """Generate ``volume`` records across the configured partitions."""
        report = VelocityReport(volume=volume, num_partitions=self.num_partitions)
        wall_start = time.perf_counter()

        def produce(partition: int) -> tuple[list[Any], float]:
            start = time.perf_counter()
            records = self.generator.generate_partition(
                volume, partition, self.num_partitions
            )
            return records, time.perf_counter() - start

        if self.use_threads and self.num_partitions > 1:
            with ThreadPoolExecutor(max_workers=self.num_partitions) as pool:
                outcomes = list(pool.map(produce, range(self.num_partitions)))
        else:
            outcomes = [produce(p) for p in range(self.num_partitions)]

        report.wall_seconds = time.perf_counter() - wall_start
        records: list[Any] = []
        for partition_records, seconds in outcomes:
            records.extend(partition_records)
            report.partition_seconds.append(seconds)
        dataset = DataSet(
            name=name or f"{self.generator.name.lower()}-parallel",
            data_type=self.generator.data_type,
            records=records,
            metadata={
                "generator": self.generator.name,
                "num_partitions": self.num_partitions,
            },
        )
        return dataset, report


class UpdateScheduler:
    """Plans update events against an existing data set at a target frequency.

    This is the "data updating frequency" facet of velocity that Table 1
    of the paper says existing benchmarks do not consider.
    """

    def __init__(
        self,
        updates_per_second: float,
        update_fraction: float = 0.8,
        delete_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        if updates_per_second <= 0:
            raise GenerationError(
                f"updates_per_second must be positive, got {updates_per_second}"
            )
        if update_fraction < 0 or delete_fraction < 0:
            raise GenerationError("fractions must be non-negative")
        if update_fraction + delete_fraction > 1.0:
            raise GenerationError("update + delete fractions must not exceed 1.0")
        self.updates_per_second = updates_per_second
        self.update_fraction = update_fraction
        self.delete_fraction = delete_fraction
        self.seed = seed

    def plan(
        self,
        duration_seconds: float,
        key_space: int,
        window: int = 0,
        start_offset: float = 0.0,
    ) -> list[StreamEvent]:
        """Plan the update events for one window of ``duration_seconds``.

        ``window`` is mixed into the seed so successive windows of a
        long-running update stream draw *different* events — seeding
        from ``(seed, key_space)`` alone replayed the identical sequence
        every window, which defeats the updating-frequency experiments
        (every window hit the same keys in the same order).  Plans stay
        deterministic: the same ``(seed, key_space, window)`` always
        yields the same events.

        ``start_offset`` shifts the timestamps, so a caller planning
        consecutive windows can lay them on one continuous timeline::

            events = [
                scheduler.plan(60.0, keys, window=w, start_offset=60.0 * w)
                for w in range(24)
            ]
        """
        if duration_seconds <= 0:
            raise GenerationError("duration must be positive")
        if key_space <= 0:
            raise GenerationError("key_space must be positive")
        if window < 0:
            raise GenerationError(f"window must be non-negative, got {window}")
        rng = np.random.default_rng(mix_seed(self.seed, key_space, window))
        count = int(round(self.updates_per_second * duration_seconds))
        timestamps = (
            np.sort(rng.uniform(0.0, duration_seconds, size=count))
            + start_offset
        )
        keys = rng.integers(0, key_space, size=count)
        values = rng.normal(0.0, 1.0, size=count)
        draws = rng.random(count)
        events = []
        for index in range(count):
            if draws[index] < self.update_fraction:
                kind = EventKind.UPDATE
            elif draws[index] < self.update_fraction + self.delete_fraction:
                kind = EventKind.DELETE
            else:
                kind = EventKind.INSERT
            events.append(
                StreamEvent(
                    timestamp=float(timestamps[index]),
                    key=int(keys[index]),
                    value=float(values[index]),
                    kind=kind,
                )
            )
        return events

    @staticmethod
    def apply(state: dict[int, float], events: Sequence[StreamEvent]) -> dict[str, int]:
        """Apply planned events to a key→value state; returns op counts."""
        counts = {"insert": 0, "update": 0, "delete": 0}
        for event in events:
            if event.kind is EventKind.DELETE:
                state.pop(event.key, None)
                counts["delete"] += 1
            elif event.kind is EventKind.UPDATE:
                if event.key in state:
                    state[event.key] = event.value
                    counts["update"] += 1
                else:
                    state[event.key] = event.value
                    counts["insert"] += 1
            else:
                state[event.key] = event.value
                counts["insert"] += 1
        return counts


class PacedStream:
    """Replays events no faster than a target rate.

    With ``real_time=False`` (the default for tests and benchmarks) the
    pacing is tracked against a virtual clock, so replay is instantaneous
    but the delivery timestamps are exactly what a real-time replay would
    produce.
    """

    def __init__(
        self,
        events: Sequence[StreamEvent],
        target_rate: float,
        real_time: bool = False,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if target_rate <= 0:
            raise GenerationError(f"target_rate must be positive, got {target_rate}")
        self.events = list(events)
        self.target_rate = target_rate
        self.real_time = real_time
        self._sleep = sleep

    def schedule(self) -> list[tuple[float, StreamEvent]]:
        """The (delivery_time, event) schedule pacing will produce.

        Pure computation against the virtual clock — never sleeps, even
        when the stream is configured ``real_time=True``.  Iterating the
        stream yields exactly these pairs.
        """
        interval = 1.0 / self.target_rate
        paced: list[tuple[float, StreamEvent]] = []
        for index, event in enumerate(self.events):
            earliest = index * interval
            paced.append((max(event.timestamp, earliest), event))
        return paced

    def __iter__(self) -> Iterator[tuple[float, StreamEvent]]:
        """Yield (delivery_time, event) pairs under the pacing constraint."""
        virtual_clock = 0.0
        for delivery, event in self.schedule():
            if self.real_time and delivery > virtual_clock:
                self._sleep(delivery - virtual_clock)
            virtual_clock = delivery
            yield delivery, event

    def delivered_rate(self) -> float:
        """The average delivery rate after pacing (events/second).

        Computed from :meth:`schedule`, so asking a ``real_time`` stream
        for its rate is instantaneous — it used to iterate the stream
        itself and sleep through the entire replay just to report a
        number the virtual schedule already knew.
        """
        deliveries = [delivery for delivery, _ in self.schedule()]
        if len(deliveries) < 2:
            raise GenerationError("need at least two events to measure a rate")
        span = deliveries[-1] - deliveries[0]
        if span <= 0:
            raise GenerationError("paced deliveries have no extent")
        return (len(deliveries) - 1) / span
