"""Key-value record generation (the input of OLTP / cloud-serving tests).

YCSB-style workloads operate on rows of named fields addressed by string
keys.  :class:`KeyValueGenerator` produces such records purely
synthetically (the paper accepts purely synthetic data for basic database
operations, Section 3.2 step 1).
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import GenerationError
from repro.datagen.base import DataGenerator, DataType, PurelySyntheticMixin


class KeyValueGenerator(PurelySyntheticMixin, DataGenerator):
    """Generates (key, fields) records with fixed-size string payloads."""

    data_type = DataType.KEY_VALUE

    def __init__(
        self,
        field_count: int = 10,
        field_length: int = 100,
        key_prefix: str = "user",
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        if field_count <= 0:
            raise GenerationError(f"field_count must be positive, got {field_count}")
        if field_length <= 0:
            raise GenerationError(
                f"field_length must be positive, got {field_length}"
            )
        self.field_count = field_count
        self.field_length = field_length
        self.key_prefix = key_prefix

    def iter_partition(
        self, volume: int, partition: int, num_partitions: int
    ):
        # Streamed record-by-record: the RNG is consumed in the same
        # order as the materialized loop, so chunked and materialized
        # generation are bit-identical.
        count = self.partition_volume(volume, partition, num_partitions)
        start = sum(
            self.partition_volume(volume, p, num_partitions) for p in range(partition)
        )
        rng = self.rng_for_partition(partition, num_partitions)
        for offset in range(count):
            key = f"{self.key_prefix}{start + offset:012d}"
            fields = {}
            for field_index in range(self.field_count):
                letters = rng.integers(0, 26, size=self.field_length)
                fields[f"field{field_index}"] = "".join(
                    chr(97 + int(letter)) for letter in letters
                )
            yield (key, fields)
