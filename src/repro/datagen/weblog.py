"""Semi-structured data generation: web logs and product reviews.

The paper (Section 4.1) describes BigBench's approach: "web logs and
reviews are generated on the basis of the table data, hence [their]
veracity relies on the table data".  This module implements that chaining:
both generators take already-generated (or real) customer and product
tables, so every log line and review references an entity that actually
exists in the structured data.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.errors import GenerationError
from repro.datagen.base import DataGenerator, DataSet, DataType
from repro.datagen.corpus import (
    HTTP_METHODS,
    STATUS_CODES,
    USER_AGENTS,
    WEB_PATHS,
)


def _key_column(dataset: DataSet, column_suffix: str) -> list[Any]:
    """Extract the id column (``*_id``) from a table data set."""
    schema = dataset.metadata.get("schema")
    if schema is None:
        raise GenerationError(
            f"table {dataset.name!r} has no schema metadata; cannot chain veracity"
        )
    try:
        index = [name.endswith(column_suffix) for name in schema].index(True)
    except ValueError:
        raise GenerationError(
            f"table {dataset.name!r} has no column ending in {column_suffix!r}"
        ) from None
    return [row[index] for row in dataset.records]


class WebLogGenerator(DataGenerator):
    """Generates click-stream web logs referencing real table entities.

    Veracity is *chained* from the table data (the BigBench design): each
    log record's customer and product ids are drawn from the supplied
    tables, with Zipf skew so a few customers/products dominate traffic.
    """

    data_type = DataType.WEB_LOG
    veracity_aware = True

    def __init__(
        self,
        customers: DataSet,
        products: DataSet,
        requests_per_second: float = 200.0,
        skew: float = 1.3,
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        if requests_per_second <= 0:
            raise GenerationError(
                f"requests_per_second must be positive, got {requests_per_second}"
            )
        self._customer_ids = _key_column(customers, "customer_id")
        self._product_ids = _key_column(products, "product_id")
        if not self._customer_ids or not self._product_ids:
            raise GenerationError("customer and product tables must be non-empty")
        self.requests_per_second = requests_per_second
        self.skew = skew
        self._fitted = True  # veracity comes from the tables at construction

    def _pick_skewed(
        self, rng: np.random.Generator, population: list[Any], count: int
    ) -> list[Any]:
        if self.skew > 1.0:
            ranks = np.minimum(rng.zipf(self.skew, size=count) - 1, len(population) - 1)
        else:
            ranks = rng.integers(0, len(population), size=count)
        return [population[int(rank)] for rank in ranks]

    def generate_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> list[dict[str, Any]]:
        count = self.partition_volume(volume, partition, num_partitions)
        if count == 0:
            return []
        rng = self.rng_for_partition(partition, num_partitions)
        timestamps = np.cumsum(
            rng.exponential(1.0 / self.requests_per_second, size=count)
        )
        customers = self._pick_skewed(rng, self._customer_ids, count)
        products = self._pick_skewed(rng, self._product_ids, count)
        records: list[dict[str, Any]] = []
        for index in range(count):
            path = WEB_PATHS[int(rng.integers(len(WEB_PATHS)))]
            if path == "/product":
                path = f"/product/{products[index]}"
            records.append(
                {
                    "timestamp": float(timestamps[index]),
                    "customer_id": customers[index],
                    "method": HTTP_METHODS[int(rng.integers(len(HTTP_METHODS)))],
                    "path": path,
                    "status": STATUS_CODES[int(rng.integers(len(STATUS_CODES)))],
                    "bytes": int(rng.lognormal(7.0, 1.0)),
                    "user_agent": USER_AGENTS[int(rng.integers(len(USER_AGENTS)))],
                }
            )
        return records


class ReviewGenerator(DataGenerator):
    """Generates product reviews: table references plus model-generated text.

    Review text comes from a fitted text generator (normally the LDA
    generator), so text veracity is preserved while the structured fields
    chain to the table data — reviews are the paper's example of
    semi-structured data containing both text and references.
    """

    data_type = DataType.REVIEW
    veracity_aware = True

    RATING_WEIGHTS = (0.06, 0.07, 0.12, 0.30, 0.45)  # skew towards 4-5 stars

    def __init__(
        self,
        customers: DataSet,
        products: DataSet,
        text_generator: DataGenerator,
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        self._customer_ids = _key_column(customers, "customer_id")
        self._product_ids = _key_column(products, "product_id")
        if not self._customer_ids or not self._product_ids:
            raise GenerationError("customer and product tables must be non-empty")
        if not text_generator.is_fitted:
            raise GenerationError(
                "the review text generator must be fitted before use"
            )
        self.text_generator = text_generator
        self._fitted = True

    def generate_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> list[dict[str, Any]]:
        count = self.partition_volume(volume, partition, num_partitions)
        if count == 0:
            return []
        rng = self.rng_for_partition(partition, num_partitions)
        texts = self.text_generator.generate_partition(
            volume, partition, num_partitions
        )
        ratings = rng.choice(
            (1, 2, 3, 4, 5), size=count, p=np.asarray(self.RATING_WEIGHTS)
        )
        customer_ranks = rng.integers(0, len(self._customer_ids), size=count)
        product_ranks = np.minimum(
            rng.zipf(1.3, size=count) - 1, len(self._product_ids) - 1
        )
        start = sum(
            self.partition_volume(volume, p, num_partitions) for p in range(partition)
        )
        return [
            {
                "review_id": start + index,
                "customer_id": self._customer_ids[int(customer_ranks[index])],
                "product_id": self._product_ids[int(product_ranks[index])],
                "rating": int(ratings[index]),
                "text": texts[index],
            }
            for index in range(count)
        ]
