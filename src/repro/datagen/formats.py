"""Format-conversion tools (Figure 3 step 4, Section 2.3).

"Since the same type of data can be stored in multiple formats … big data
benchmarks need to provide format conversion, which can transfer a data
set into an appropriate format capable of being used as the input of a
test running on a specific system."

Converters are record-stream transformers: each maps an iterator of
records to an iterator of converted records, so the same converter serves
both :func:`convert` (materialize the whole payload at once) and
:func:`convert_batches` (transform a :class:`~repro.datagen.source.DatasetSource`
chunk by chunk with bounded memory).  Cross-record state — the CSV header
row, the global key-value index — lives inside one generator that spans
the full stream, so chunking never changes the output.

The only non-streaming format is ``adjacency-list``: its payload is a
dict keyed by vertex, which inherently needs every edge before it is
complete.
"""

from __future__ import annotations

import itertools
import json
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.core.errors import FormatConversionError
from repro.datagen.base import DEFAULT_CHUNK_SIZE, DataSet, DataType


@dataclass
class ConversionContext:
    """What a converter may inspect besides the record stream itself."""

    data_type: DataType
    metadata: dict[str, Any]
    source_name: str


@dataclass
class ConvertedData:
    """The output of a format conversion: a payload plus its format name."""

    format_name: str
    payload: Any
    source_name: str
    num_records: int | None = None

    def __len__(self) -> int:
        try:
            return len(self.payload)
        except TypeError:
            # Lazy payloads (iterators) report the record count when known
            # instead of consuming the stream.
            return self.num_records or 0


@dataclass(frozen=True)
class _Converter:
    name: str
    transform: Callable[[Iterator[Any], ConversionContext], Any]
    streaming: bool
    requires: DataType | None


_CONVERTERS: dict[str, _Converter] = {}

_SENTINEL = object()


def register_format(
    name: str,
    *,
    streaming: bool = True,
    requires: DataType | None = None,
) -> Callable[[Callable[[Iterator[Any], ConversionContext], Any]], Any]:
    """Decorator registering a record-stream transformer under a name.

    ``streaming`` converters are generator functions yielding converted
    records one at a time; non-streaming ones return a complete payload.
    ``requires`` restricts the converter to one data type, checked eagerly
    before any record is consumed.
    """

    def wrap(function: Callable[[Iterator[Any], ConversionContext], Any]):
        if name in _CONVERTERS:
            raise FormatConversionError(f"format {name!r} is already registered")
        _CONVERTERS[name] = _Converter(
            name=name, transform=function, streaming=streaming, requires=requires
        )
        return function

    return wrap


def available_formats() -> list[str]:
    """All registered format names."""
    return sorted(_CONVERTERS)


def is_streaming_format(name: str) -> bool:
    """Whether the named format can convert chunk by chunk."""
    return _lookup(name).streaming


def _lookup(format_name: str) -> _Converter:
    converter = _CONVERTERS.get(format_name)
    if converter is None:
        raise FormatConversionError(
            f"unknown format {format_name!r}; available: {available_formats()}"
        )
    return converter


def _context_of(data: Any) -> ConversionContext:
    return ConversionContext(
        data_type=data.data_type,
        metadata=dict(getattr(data, "metadata", {}) or {}),
        source_name=data.name,
    )


def _iter_records(data: Any) -> Iterator[Any]:
    if isinstance(data, DataSet):
        return iter(data.records)
    batches = getattr(data, "batches", None)
    if batches is not None:
        return (record for batch in batches() for record in batch)
    return iter(data)


def _check_type(converter: _Converter, ctx: ConversionContext) -> None:
    if converter.requires is not None and ctx.data_type is not converter.requires:
        raise FormatConversionError(
            f"{converter.name} requires a {converter.requires.label} data set, "
            f"got {ctx.data_type.label}"
        )


def convert(data: Any, format_name: str) -> ConvertedData:
    """Convert a data set (or any dataset source) to the named format.

    The record stream passes through the converter exactly once and the
    result is collected into a single payload list (dict for
    non-streaming formats) — no intermediate record copy is built.
    """
    converter = _lookup(format_name)
    ctx = _context_of(data)
    _check_type(converter, ctx)
    try:
        payload = converter.transform(_iter_records(data), ctx)
        if converter.streaming:
            payload = list(payload)
    except FormatConversionError:
        raise
    except Exception as exc:
        raise FormatConversionError(
            f"converting {ctx.source_name!r} to {format_name!r} failed: {exc}"
        ) from exc
    num_records = len(payload) if hasattr(payload, "__len__") else None
    return ConvertedData(
        format_name=format_name,
        payload=payload,
        source_name=ctx.source_name,
        num_records=num_records,
    )


def convert_batches(
    data: Any, format_name: str, chunk_size: int | None = None
) -> Iterator[list[Any]]:
    """Convert a dataset source chunk by chunk with bounded memory.

    Yields lists of at most ``chunk_size`` converted records.  The
    converter runs as one generator over the whole stream, so formats
    with cross-record state (CSV headers, global indexes) produce output
    identical to :func:`convert` — chunking is re-slicing, not
    re-converting.
    """
    converter = _lookup(format_name)
    if not converter.streaming:
        raise FormatConversionError(
            f"format {format_name!r} cannot be converted incrementally; "
            "use convert() to materialize it"
        )
    ctx = _context_of(data)
    _check_type(converter, ctx)
    chunk_size = DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size
    if chunk_size <= 0:
        raise FormatConversionError(
            f"chunk_size must be positive, got {chunk_size}"
        )

    # Validation above is eager (this is a plain function returning a
    # generator, not a generator function), so a bad format or data type
    # fails at the call, before anything pulls from the stream.
    def _stream() -> Iterator[list[Any]]:
        try:
            transformed = converter.transform(_iter_records(data), ctx)
            while True:
                chunk = list(itertools.islice(transformed, chunk_size))
                if not chunk:
                    return
                yield chunk
        except FormatConversionError:
            raise
        except Exception as exc:
            raise FormatConversionError(
                f"converting {ctx.source_name!r} to {format_name!r} "
                f"failed: {exc}"
            ) from exc

    return _stream()


@register_format("records")
def _records(records: Iterator[Any], ctx: ConversionContext) -> Iterator[Any]:
    """The identity format: raw records."""
    yield from records


@register_format("text-lines")
def _text_lines(records: Iterator[Any], ctx: ConversionContext) -> Iterator[str]:
    """One line per record; structured records are tab-separated."""
    for record in records:
        if isinstance(record, str):
            yield record
        elif isinstance(record, dict):
            yield "\t".join(str(value) for value in record.values())
        elif isinstance(record, (tuple, list)):
            yield "\t".join(str(value) for value in record)
        else:
            yield str(record)


@register_format("csv")
def _csv(records: Iterator[Any], ctx: ConversionContext) -> Iterator[str]:
    """Comma-separated lines with a header derived from the schema."""
    schema = ctx.metadata.get("schema")
    first = next(records, _SENTINEL)
    if schema is not None:
        yield ",".join(schema)
    elif first is not _SENTINEL and isinstance(first, dict):
        yield ",".join(first.keys())
    if first is _SENTINEL:
        return
    for record in itertools.chain([first], records):
        if isinstance(record, dict):
            values = record.values()
        elif isinstance(record, (tuple, list)):
            values = record
        else:
            values = (record,)
        yield ",".join(_csv_cell(value) for value in values)


def _csv_cell(value: Any) -> str:
    text = str(value)
    if "," in text or '"' in text:
        escaped = text.replace('"', '""')
        return f'"{escaped}"'
    return text


@register_format("jsonl")
def _jsonl(records: Iterator[Any], ctx: ConversionContext) -> Iterator[str]:
    """One JSON object per record (semi-structured interchange)."""
    schema = ctx.metadata.get("schema")
    for record in records:
        if isinstance(record, dict):
            obj: Any = record
        elif isinstance(record, (tuple, list)) and schema is not None:
            obj = dict(zip(schema, record))
        else:
            obj = {"value": _jsonable(record)}
        yield json.dumps(obj, default=_jsonable, sort_keys=True)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "__dict__"):
        return {k: _jsonable(v) for k, v in vars(value).items()}
    return str(value)


@register_format("key-value")
def _key_value(
    records: Iterator[Any], ctx: ConversionContext
) -> Iterator[tuple[Any, Any]]:
    """(key, value) pairs: the input format of KV stores and MapReduce."""
    for index, record in enumerate(records):
        if isinstance(record, tuple) and len(record) == 2:
            yield record
        elif isinstance(record, tuple) and len(record) > 2:
            yield (record[0], record[1:])
        elif isinstance(record, dict):
            yield (record.get("key", index), record)
        else:
            yield (index, record)


@register_format("adjacency-list", streaming=False, requires=DataType.GRAPH)
def _adjacency_list(
    records: Iterator[Any], ctx: ConversionContext
) -> dict[int, list[int]]:
    """vertex → neighbour list, for graph workloads.

    Inherently materializing: the payload is complete only after every
    edge has been seen.
    """
    adjacency: dict[int, list[int]] = {}
    for src, dst in records:
        adjacency.setdefault(src, []).append(dst)
        adjacency.setdefault(dst, []).append(src)
    return adjacency


@register_format("edge-list-lines", requires=DataType.GRAPH)
def _edge_list_lines(
    records: Iterator[Any], ctx: ConversionContext
) -> Iterator[str]:
    """"src<TAB>dst" lines, the common on-disk graph exchange format."""
    for src, dst in records:
        yield f"{src}\t{dst}"


@register_format("common-log", requires=DataType.WEB_LOG)
def _common_log(records: Iterator[Any], ctx: ConversionContext) -> Iterator[str]:
    """Apache common-log-style lines for web-log data sets."""
    for record in records:
        yield (
            f'{record["customer_id"]} - - [{record["timestamp"]:.3f}] '
            f'"{record["method"]} {record["path"]}" {record["status"]} '
            f'{record["bytes"]} "{record["user_agent"]}"'
        )
