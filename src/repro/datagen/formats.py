"""Format-conversion tools (Figure 3 step 4, Section 2.3).

"Since the same type of data can be stored in multiple formats … big data
benchmarks need to provide format conversion, which can transfer a data
set into an appropriate format capable of being used as the input of a
test running on a specific system."

Every converter maps a :class:`~repro.datagen.base.DataSet` to a concrete
input representation; engines declare which format they consume and the
execution layer calls :func:`convert` before running a test.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.core.errors import FormatConversionError
from repro.datagen.base import DataSet, DataType


@dataclass
class ConvertedData:
    """The output of a format conversion: a payload plus its format name."""

    format_name: str
    payload: Any
    source_name: str

    def __len__(self) -> int:
        try:
            return len(self.payload)
        except TypeError:  # pragma: no cover - defensive
            return 0


_CONVERTERS: dict[str, Callable[[DataSet], Any]] = {}


def register_format(name: str) -> Callable[[Callable[[DataSet], Any]], Callable[[DataSet], Any]]:
    """Decorator registering a converter under a format name."""

    def wrap(function: Callable[[DataSet], Any]) -> Callable[[DataSet], Any]:
        if name in _CONVERTERS:
            raise FormatConversionError(f"format {name!r} is already registered")
        _CONVERTERS[name] = function
        return function

    return wrap


def available_formats() -> list[str]:
    """All registered format names."""
    return sorted(_CONVERTERS)


def convert(dataset: DataSet, format_name: str) -> ConvertedData:
    """Convert a data set to the named format."""
    converter = _CONVERTERS.get(format_name)
    if converter is None:
        raise FormatConversionError(
            f"unknown format {format_name!r}; available: {available_formats()}"
        )
    try:
        payload = converter(dataset)
    except FormatConversionError:
        raise
    except Exception as exc:
        raise FormatConversionError(
            f"converting {dataset.name!r} to {format_name!r} failed: {exc}"
        ) from exc
    return ConvertedData(
        format_name=format_name, payload=payload, source_name=dataset.name
    )


@register_format("records")
def _records(dataset: DataSet) -> list[Any]:
    """The identity format: raw records."""
    return list(dataset.records)


@register_format("text-lines")
def _text_lines(dataset: DataSet) -> list[str]:
    """One line per record; structured records are tab-separated."""
    lines: list[str] = []
    for record in dataset.records:
        if isinstance(record, str):
            lines.append(record)
        elif isinstance(record, dict):
            lines.append("\t".join(str(value) for value in record.values()))
        elif isinstance(record, (tuple, list)):
            lines.append("\t".join(str(value) for value in record))
        else:
            lines.append(str(record))
    return lines


@register_format("csv")
def _csv(dataset: DataSet) -> list[str]:
    """Comma-separated lines with a header derived from the schema."""
    schema = dataset.metadata.get("schema")
    lines: list[str] = []
    if schema is not None:
        lines.append(",".join(schema))
    elif dataset.records and isinstance(dataset.records[0], dict):
        lines.append(",".join(dataset.records[0].keys()))
    for record in dataset.records:
        if isinstance(record, dict):
            values = record.values()
        elif isinstance(record, (tuple, list)):
            values = record
        else:
            values = (record,)
        lines.append(",".join(_csv_cell(value) for value in values))
    return lines


def _csv_cell(value: Any) -> str:
    text = str(value)
    if "," in text or '"' in text:
        escaped = text.replace('"', '""')
        return f'"{escaped}"'
    return text


@register_format("jsonl")
def _jsonl(dataset: DataSet) -> list[str]:
    """One JSON object per record (semi-structured interchange)."""
    schema = dataset.metadata.get("schema")
    lines: list[str] = []
    for record in dataset.records:
        if isinstance(record, dict):
            obj: Any = record
        elif isinstance(record, (tuple, list)) and schema is not None:
            obj = dict(zip(schema, record))
        else:
            obj = {"value": _jsonable(record)}
        lines.append(json.dumps(obj, default=_jsonable, sort_keys=True))
    return lines


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "__dict__"):
        return {k: _jsonable(v) for k, v in vars(value).items()}
    return str(value)


@register_format("key-value")
def _key_value(dataset: DataSet) -> list[tuple[Any, Any]]:
    """(key, value) pairs: the input format of KV stores and MapReduce."""
    pairs: list[tuple[Any, Any]] = []
    for index, record in enumerate(dataset.records):
        if isinstance(record, tuple) and len(record) == 2:
            pairs.append(record)
        elif isinstance(record, tuple) and len(record) > 2:
            pairs.append((record[0], record[1:]))
        elif isinstance(record, dict):
            key = record.get("key", index)
            pairs.append((key, record))
        else:
            pairs.append((index, record))
    return pairs


@register_format("adjacency-list")
def _adjacency_list(dataset: DataSet) -> dict[int, list[int]]:
    """vertex → neighbour list, for graph workloads."""
    if dataset.data_type is not DataType.GRAPH:
        raise FormatConversionError(
            f"adjacency-list requires a graph data set, got {dataset.data_type.label}"
        )
    adjacency: dict[int, list[int]] = {}
    for src, dst in dataset.records:
        adjacency.setdefault(src, []).append(dst)
        adjacency.setdefault(dst, []).append(src)
    return adjacency


@register_format("edge-list-lines")
def _edge_list_lines(dataset: DataSet) -> list[str]:
    """"src<TAB>dst" lines, the common on-disk graph exchange format."""
    if dataset.data_type is not DataType.GRAPH:
        raise FormatConversionError(
            f"edge-list requires a graph data set, got {dataset.data_type.label}"
        )
    return [f"{src}\t{dst}" for src, dst in dataset.records]


@register_format("common-log")
def _common_log(dataset: DataSet) -> list[str]:
    """Apache common-log-style lines for web-log data sets."""
    if dataset.data_type is not DataType.WEB_LOG:
        raise FormatConversionError(
            f"common-log requires a web-log data set, got {dataset.data_type.label}"
        )
    lines = []
    for record in dataset.records:
        lines.append(
            f'{record["customer_id"]} - - [{record["timestamp"]:.3f}] '
            f'"{record["method"]} {record["path"]}" {record["status"]} '
            f'{record["bytes"]} "{record["user_agent"]}"'
        )
    return lines
