"""Embedded "real" seed data sets.

The paper's veracity pipeline (Figure 3, step 2) learns data models from
*real* data sets.  Real web-scale corpora (Wikipedia text, the Facebook
social graph, retail transaction logs) cannot be shipped inside this
repository, so this module provides small embedded proxies with the
structural properties the models must capture:

* a **text corpus** with genuine multi-topic structure (distinct topical
  vocabularies mixed per document) so an LDA model has topics to discover;
* a **social graph** with a heavy-tailed degree distribution, grown by
  preferential attachment from a deterministic seed;
* **retail tables** (customers, products, orders) with skewed categorical
  and numeric columns;
* **web-log templates** (paths, status codes, user agents) used by the
  semi-structured generators.

Every construction here is deterministic: calling a ``load_*`` function
twice returns identical data, which keeps tests and benchmarks stable.
The substitution is documented in DESIGN.md (Section 2).
"""

from __future__ import annotations

import numpy as np

from repro.datagen.base import DataSet, DataType

# ---------------------------------------------------------------------------
# Text corpus: four topical vocabularies.
# ---------------------------------------------------------------------------

TOPIC_VOCABULARIES: dict[str, list[str]] = {
    "sports": [
        "game", "team", "season", "player", "coach", "score", "league",
        "match", "win", "championship", "goal", "tournament", "stadium",
        "defense", "offense", "playoff", "referee", "trophy", "fans",
        "training", "injury", "transfer", "captain", "striker", "keeper",
        "penalty", "derby", "fixture", "substitute", "victory",
    ],
    "technology": [
        "software", "data", "system", "network", "computer", "algorithm",
        "cloud", "server", "database", "storage", "processor", "memory",
        "code", "platform", "hardware", "internet", "security", "protocol",
        "compiler", "kernel", "latency", "throughput", "cluster", "query",
        "benchmark", "cache", "thread", "binary", "encryption", "bandwidth",
    ],
    "finance": [
        "market", "stock", "price", "investor", "bank", "fund", "trade",
        "profit", "revenue", "shares", "economy", "inflation", "interest",
        "bond", "currency", "dividend", "portfolio", "asset", "credit",
        "loan", "capital", "earnings", "merger", "hedge", "equity",
        "futures", "broker", "exchange", "deficit", "liquidity",
    ],
    "science": [
        "research", "study", "experiment", "theory", "cell", "energy",
        "species", "climate", "laboratory", "hypothesis", "molecule",
        "protein", "gene", "particle", "quantum", "evolution", "neuron",
        "telescope", "fossil", "bacteria", "chemistry", "physics",
        "biology", "astronomy", "vaccine", "enzyme", "galaxy", "isotope",
        "catalyst", "genome",
    ],
}

#: Connective words shared across all topics (stop-word-like background).
BACKGROUND_WORDS: list[str] = [
    "the", "of", "and", "to", "in", "that", "for", "with", "was", "on",
    "new", "more", "has", "this", "first", "after", "also", "its",
]

_CORPUS_SEED = 20140404  # deterministic; proxies a fixed "real" corpus


def load_text_corpus(num_documents: int = 240, words_per_document: int = 80) -> DataSet:
    """The embedded multi-topic text corpus.

    Each document draws a topic mixture concentrated on one dominant topic
    (as real news articles do), then samples words from topic vocabularies
    with a Zipf-like within-topic rank bias plus background connectives.
    """
    rng = np.random.default_rng(_CORPUS_SEED)
    topics = list(TOPIC_VOCABULARIES)
    documents: list[str] = []
    for doc_index in range(num_documents):
        dominant = topics[doc_index % len(topics)]
        mixture = np.full(len(topics), 0.1 / (len(topics) - 1))
        mixture[topics.index(dominant)] = 0.9
        words: list[str] = []
        for _ in range(words_per_document):
            if rng.random() < 0.25:
                words.append(BACKGROUND_WORDS[int(rng.integers(len(BACKGROUND_WORDS)))])
                continue
            topic = topics[int(rng.choice(len(topics), p=mixture))]
            vocabulary = TOPIC_VOCABULARIES[topic]
            # Zipf-like bias towards low-rank (frequent) words in the topic.
            rank = int(min(rng.zipf(1.6) - 1, len(vocabulary) - 1))
            words.append(vocabulary[rank])
        documents.append(" ".join(words))
    return DataSet(
        name="embedded-text-corpus",
        data_type=DataType.TEXT,
        records=documents,
        metadata={"topics": topics, "source": "embedded proxy corpus"},
    )


# ---------------------------------------------------------------------------
# Social graph: preferential attachment from a deterministic seed clique.
# ---------------------------------------------------------------------------

_GRAPH_SEED = 19980904


def load_social_graph(num_vertices: int = 400, edges_per_vertex: int = 3) -> DataSet:
    """The embedded social-graph proxy (heavy-tailed degree distribution).

    Grown by preferential attachment (Barabási–Albert) from a 5-clique,
    which yields the power-law-like degree distribution that real social
    graphs (e.g. the Facebook graph behind LinkBench) exhibit.
    """
    rng = np.random.default_rng(_GRAPH_SEED)
    edges: list[tuple[int, int]] = []
    attachment: list[int] = []  # vertex repeated once per incident edge
    clique = 5
    for u in range(clique):
        for v in range(u + 1, clique):
            edges.append((u, v))
            attachment.extend((u, v))
    for new_vertex in range(clique, num_vertices):
        targets: set[int] = set()
        while len(targets) < min(edges_per_vertex, new_vertex):
            targets.add(attachment[int(rng.integers(len(attachment)))])
        for target in sorted(targets):
            edges.append((new_vertex, target))
            attachment.extend((new_vertex, target))
    return DataSet(
        name="embedded-social-graph",
        data_type=DataType.GRAPH,
        records=edges,
        metadata={
            "num_vertices": num_vertices,
            "model": "preferential attachment",
            "source": "embedded proxy graph",
        },
    )


# ---------------------------------------------------------------------------
# Retail tables.
# ---------------------------------------------------------------------------

FIRST_NAMES = [
    "alice", "bob", "carol", "david", "erin", "frank", "grace", "henry",
    "irene", "jack", "karen", "liam", "mona", "nolan", "olivia", "peter",
    "quinn", "rosa", "sam", "tina", "umar", "vera", "wade", "xena",
    "yusuf", "zoe",
]

PRODUCT_CATEGORIES = [
    "electronics", "books", "clothing", "home", "sports", "toys",
    "grocery", "beauty", "automotive", "garden",
]

COUNTRIES = ["us", "uk", "de", "cn", "in", "br", "jp", "fr", "ca", "au"]

_TABLE_SEED = 20091207


def load_retail_tables(
    num_customers: int = 200, num_products: int = 100, num_orders: int = 600
) -> dict[str, DataSet]:
    """The embedded retail tables: customers, products, and orders.

    Order quantities are Zipf-skewed across products and customers, the
    skew a MUDD-style table generator must learn to reproduce.
    """
    rng = np.random.default_rng(_TABLE_SEED)
    customers = [
        (
            cid,
            f"{FIRST_NAMES[cid % len(FIRST_NAMES)]}_{cid}",
            COUNTRIES[int(rng.integers(len(COUNTRIES)))],
            int(rng.integers(18, 80)),
        )
        for cid in range(num_customers)
    ]
    products = [
        (
            pid,
            f"product_{pid}",
            PRODUCT_CATEGORIES[pid % len(PRODUCT_CATEGORIES)],
            round(float(rng.lognormal(3.0, 1.0)), 2),
        )
        for pid in range(num_products)
    ]
    orders = []
    for oid in range(num_orders):
        customer = int(min(rng.zipf(1.4) - 1, num_customers - 1))
        product = int(min(rng.zipf(1.3) - 1, num_products - 1))
        quantity = int(rng.integers(1, 6))
        day = int(rng.integers(0, 365))
        orders.append((oid, customer, product, quantity, day))
    schemas = {
        "customers": ("customer_id", "name", "country", "age"),
        "products": ("product_id", "name", "category", "price"),
        "orders": ("order_id", "customer_id", "product_id", "quantity", "day"),
    }
    rows = {"customers": customers, "products": products, "orders": orders}
    return {
        table: DataSet(
            name=f"embedded-retail-{table}",
            data_type=DataType.TABLE,
            records=rows[table],
            metadata={"schema": schemas[table], "source": "embedded proxy tables"},
        )
        for table in schemas
    }


# ---------------------------------------------------------------------------
# Web-log templates.
# ---------------------------------------------------------------------------

WEB_PATHS = [
    "/", "/index.html", "/search", "/product", "/cart", "/checkout",
    "/login", "/logout", "/profile", "/api/v1/items", "/api/v1/orders",
    "/static/site.css", "/static/app.js", "/help", "/about",
]

HTTP_METHODS = ["GET", "GET", "GET", "GET", "POST", "PUT", "DELETE"]

STATUS_CODES = [200, 200, 200, 200, 200, 301, 304, 404, 500]

USER_AGENTS = [
    "Mozilla/5.0 (X11; Linux x86_64)",
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64)",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15)",
    "curl/7.88.1",
    "python-requests/2.31",
    "Googlebot/2.1",
]
