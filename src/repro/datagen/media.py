"""Synthetic image generation (multimedia data, Section 5.2).

The paper lists "important big data systems such as multimedia systems"
among the workload gaps of existing benchmarks, and Table 1 credits only
CloudSuite with video data.  This generator produces small grayscale
images drawn from distinct texture classes (gradients, checkerboards,
stripes, blobs), so multimedia workloads have labelled inputs with real
visual structure — the image-domain analogue of the embedded corpora.

Records are ``(image, label)`` pairs where ``image`` is a float32 numpy
array in [0, 1] of shape ``(size, size)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import GenerationError
from repro.datagen.base import (
    DataGenerator,
    DataSet,
    DataType,
    PurelySyntheticMixin,
)

#: The texture classes, in label order.
TEXTURE_CLASSES: tuple[str, ...] = (
    "gradient", "checkerboard", "stripes", "blob",
)


def _gradient(rng: np.random.Generator, size: int) -> np.ndarray:
    angle = rng.uniform(0, 2 * np.pi)
    xs, ys = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size))
    image = xs * np.cos(angle) + ys * np.sin(angle)
    image = (image - image.min()) / max(float(np.ptp(image)), 1e-9)
    return image


def _checkerboard(rng: np.random.Generator, size: int) -> np.ndarray:
    cell = int(rng.integers(2, max(3, size // 4)))
    xs, ys = np.meshgrid(np.arange(size), np.arange(size))
    return (((xs // cell) + (ys // cell)) % 2).astype(np.float64)


def _stripes(rng: np.random.Generator, size: int) -> np.ndarray:
    period = float(rng.uniform(2.0, size / 2))
    phase = float(rng.uniform(0, 2 * np.pi))
    vertical = rng.random() < 0.5
    axis = np.arange(size)
    wave = 0.5 + 0.5 * np.sin(2 * np.pi * axis / period + phase)
    if vertical:
        return np.tile(wave, (size, 1))
    return np.tile(wave[:, None], (1, size))


def _blob(rng: np.random.Generator, size: int) -> np.ndarray:
    centre_x = rng.uniform(0.25, 0.75) * size
    centre_y = rng.uniform(0.25, 0.75) * size
    radius = rng.uniform(0.15, 0.35) * size
    xs, ys = np.meshgrid(np.arange(size), np.arange(size))
    distance = np.sqrt((xs - centre_x) ** 2 + (ys - centre_y) ** 2)
    return np.exp(-((distance / radius) ** 2))


_TEXTURE_BUILDERS = {
    "gradient": _gradient,
    "checkerboard": _checkerboard,
    "stripes": _stripes,
    "blob": _blob,
}


class SyntheticImageGenerator(PurelySyntheticMixin, DataGenerator):
    """Generates labelled grayscale texture images."""

    data_type = DataType.IMAGE

    def __init__(
        self, size: int = 16, noise: float = 0.05, seed: int = 0
    ) -> None:
        super().__init__(seed=seed)
        if size < 4:
            raise GenerationError(f"image size must be >= 4, got {size}")
        if noise < 0:
            raise GenerationError(f"noise must be non-negative, got {noise}")
        self.size = size
        self.noise = noise

    def iter_partition(
        self, volume: int, partition: int, num_partitions: int
    ):
        count = self.partition_volume(volume, partition, num_partitions)
        rng = self.rng_for_partition(partition, num_partitions)
        for _ in range(count):
            label = int(rng.integers(len(TEXTURE_CLASSES)))
            builder = _TEXTURE_BUILDERS[TEXTURE_CLASSES[label]]
            image = builder(rng, self.size)
            if self.noise > 0:
                image = image + rng.normal(0.0, self.noise, image.shape)
            image = np.clip(image, 0.0, 1.0).astype(np.float32)
            yield (image, label)

    def _wrap(self, records: list, name: str | None) -> DataSet:
        dataset = super()._wrap(records, name)
        dataset.metadata["classes"] = TEXTURE_CLASSES
        dataset.metadata["image_size"] = self.size
        return dataset


def image_features(image: np.ndarray, histogram_bins: int = 8) -> np.ndarray:
    """A compact feature vector: intensity histogram + edge energies.

    The classic hand-crafted descriptor a multimedia micro benchmark
    extracts in its map phase: ``histogram_bins`` intensity frequencies,
    plus mean horizontal/vertical gradient magnitudes and the overall
    variance.
    """
    histogram, _ = np.histogram(image, bins=histogram_bins, range=(0.0, 1.0))
    histogram = histogram.astype(np.float64) / image.size
    horizontal = float(np.abs(np.diff(image, axis=1)).mean())
    vertical = float(np.abs(np.diff(image, axis=0)).mean())
    variance = float(image.var())
    return np.concatenate([histogram, [horizontal, vertical, variance]])
