"""Structured (table) data generation.

Implements a MUDD/PDGF-style multi-dimensional table generator (the tools
the paper cites for TPC-DS and BigBench): a table is described by a schema
whose columns carry value distributions, and rows are produced in
deterministic, independent partitions so generation can be parallelised.

Two generators are provided:

* :class:`TableGenerator` — purely synthetic, driven by an explicit schema
  (the paper's "traditional synthetic distributions such as a Gaussian");
* :class:`FittedTableGenerator` — veracity-aware: learns per-column
  empirical distributions from a real table (the BigDataBench approach the
  paper classifies as "considered" veracity).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.errors import GenerationError
from repro.datagen.base import (
    DataGenerator,
    DataSet,
    DataType,
    PurelySyntheticMixin,
)


class ColumnDistribution(ABC):
    """Distribution of values within one table column."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, count: int, start_row: int) -> list[Any]:
        """Draw ``count`` values; ``start_row`` is the global row offset.

        ``start_row`` lets row-dependent distributions (sequential keys)
        stay deterministic under partitioned generation.
        """


@dataclass(frozen=True)
class SequentialKey(ColumnDistribution):
    """A dense integer primary key: start, start+1, ..."""

    start: int = 0

    def sample(self, rng: np.random.Generator, count: int, start_row: int) -> list[int]:
        first = self.start + start_row
        return list(range(first, first + count))


@dataclass(frozen=True)
class UniformInt(ColumnDistribution):
    """Integers uniform in [low, high)."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise GenerationError(
                f"UniformInt requires high > low, got [{self.low}, {self.high})"
            )

    def sample(self, rng: np.random.Generator, count: int, start_row: int) -> list[int]:
        return [int(v) for v in rng.integers(self.low, self.high, size=count)]


@dataclass(frozen=True)
class UniformFloat(ColumnDistribution):
    """Floats uniform in [low, high)."""

    low: float
    high: float

    def sample(self, rng: np.random.Generator, count: int, start_row: int) -> list[float]:
        return [float(v) for v in rng.uniform(self.low, self.high, size=count)]


@dataclass(frozen=True)
class Gaussian(ColumnDistribution):
    """Normally distributed floats (MUDD's default for most columns)."""

    mean: float = 0.0
    std: float = 1.0

    def __post_init__(self) -> None:
        if self.std < 0:
            raise GenerationError(f"Gaussian std must be non-negative, got {self.std}")

    def sample(self, rng: np.random.Generator, count: int, start_row: int) -> list[float]:
        return [float(v) for v in rng.normal(self.mean, self.std, size=count)]


@dataclass(frozen=True)
class Zipf(ColumnDistribution):
    """Zipf-skewed integers in [0, size) — skewed reference keys.

    ``exponent`` must be > 1 (numpy's zipf sampler requirement); higher
    values concentrate mass on the first few ranks.
    """

    size: int
    exponent: float = 1.5

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise GenerationError(f"Zipf size must be positive, got {self.size}")
        if self.exponent <= 1.0:
            raise GenerationError(
                f"Zipf exponent must be > 1, got {self.exponent}"
            )

    def sample(self, rng: np.random.Generator, count: int, start_row: int) -> list[int]:
        raw = rng.zipf(self.exponent, size=count)
        return [int(min(v - 1, self.size - 1)) for v in raw]


@dataclass(frozen=True)
class Categorical(ColumnDistribution):
    """Values drawn from a finite set with optional weights."""

    values: tuple[Any, ...]
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.values:
            raise GenerationError("Categorical requires at least one value")
        if self.weights is not None and len(self.weights) != len(self.values):
            raise GenerationError(
                f"Categorical got {len(self.weights)} weights for "
                f"{len(self.values)} values"
            )

    def sample(self, rng: np.random.Generator, count: int, start_row: int) -> list[Any]:
        if self.weights is None:
            indexes = rng.integers(len(self.values), size=count)
        else:
            probabilities = np.asarray(self.weights, dtype=np.float64)
            probabilities = probabilities / probabilities.sum()
            indexes = rng.choice(len(self.values), size=count, p=probabilities)
        return [self.values[int(i)] for i in indexes]


@dataclass(frozen=True)
class ForeignKey(ColumnDistribution):
    """A reference into another table of ``ref_size`` rows.

    ``skew`` > 1 draws Zipf-skewed references (hot rows); ``skew`` of 0 or
    1 draws uniformly.
    """

    ref_size: int
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.ref_size <= 0:
            raise GenerationError(
                f"ForeignKey ref_size must be positive, got {self.ref_size}"
            )

    def sample(self, rng: np.random.Generator, count: int, start_row: int) -> list[int]:
        if self.skew > 1.0:
            raw = rng.zipf(self.skew, size=count)
            return [int(min(v - 1, self.ref_size - 1)) for v in raw]
        return [int(v) for v in rng.integers(0, self.ref_size, size=count)]


@dataclass(frozen=True)
class TextColumn(ColumnDistribution):
    """Short synthetic strings with a common prefix (names, labels)."""

    prefix: str = "value"
    cardinality: int = 1000

    def sample(self, rng: np.random.Generator, count: int, start_row: int) -> list[str]:
        indexes = rng.integers(self.cardinality, size=count)
        return [f"{self.prefix}_{int(i)}" for i in indexes]


@dataclass
class TableSchema:
    """A named table schema: ordered (column name → distribution) pairs."""

    name: str
    columns: dict[str, ColumnDistribution] = field(default_factory=dict)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self.columns)

    def add(self, column: str, distribution: ColumnDistribution) -> "TableSchema":
        if column in self.columns:
            raise GenerationError(f"duplicate column {column!r} in {self.name!r}")
        self.columns[column] = distribution
        return self


class TableGenerator(PurelySyntheticMixin, DataGenerator):
    """Schema-driven synthetic table generator (MUDD/PDGF style)."""

    data_type = DataType.TABLE

    def __init__(self, schema: TableSchema, seed: int = 0) -> None:
        super().__init__(seed=seed)
        if not schema.columns:
            raise GenerationError(f"schema {schema.name!r} has no columns")
        self.schema = schema

    def generate_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> list[tuple[Any, ...]]:
        count = self.partition_volume(volume, partition, num_partitions)
        # Global row offset of this partition, for row-dependent columns.
        start_row = sum(
            self.partition_volume(volume, p, num_partitions) for p in range(partition)
        )
        rng = self.rng_for_partition(partition, num_partitions)
        column_values = [
            distribution.sample(rng, count, start_row)
            for distribution in self.schema.columns.values()
        ]
        return [tuple(values) for values in zip(*column_values)] if count else []

    def _wrap(self, records: list[Any], name: str | None) -> DataSet:
        dataset = super()._wrap(records, name or self.schema.name)
        dataset.metadata["schema"] = self.schema.column_names
        return dataset


class FittedTableGenerator(DataGenerator):
    """Learns per-column empirical distributions from a real table.

    Numeric columns are modelled by their empirical quantile function
    (inverse-CDF sampling), categorical columns by their empirical
    frequencies — so skew in the real table survives into the synthetic
    one, which is exactly the veracity property Table 1 of the paper
    credits BigDataBench for.
    """

    data_type = DataType.TABLE
    veracity_aware = True

    def __init__(self, seed: int = 0, max_categories: int = 1000) -> None:
        super().__init__(seed=seed)
        self.max_categories = max_categories
        self._columns: list[ColumnDistribution] = []
        self._schema: tuple[str, ...] = ()

    def fit(self, real_data: DataSet) -> "FittedTableGenerator":
        rows = real_data.records
        if not rows:
            raise GenerationError("cannot fit a table generator on an empty table")
        schema = real_data.metadata.get("schema")
        width = len(rows[0])
        if schema is None:
            schema = tuple(f"col_{i}" for i in range(width))
        self._schema = tuple(schema)
        self._columns = [
            self._fit_column([row[index] for row in rows]) for index in range(width)
        ]
        self._fitted = True
        return self

    def _fit_column(self, values: list[Any]) -> ColumnDistribution:
        if all(isinstance(value, (int, float)) and not isinstance(value, bool)
               for value in values):
            distinct = set(values)
            if len(distinct) <= min(self.max_categories, max(10, len(values) // 20)):
                # Low-cardinality numeric: keep the exact empirical pmf.
                return _empirical_categorical(values)
            return _EmpiricalQuantile(values)
        return _empirical_categorical(values)

    def generate_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> list[tuple[Any, ...]]:
        self._require_fitted()
        count = self.partition_volume(volume, partition, num_partitions)
        rng = self.rng_for_partition(partition, num_partitions)
        column_values = [
            distribution.sample(rng, count, 0) for distribution in self._columns
        ]
        return [tuple(values) for values in zip(*column_values)] if count else []

    def _wrap(self, records: list[Any], name: str | None) -> DataSet:
        dataset = super()._wrap(records, name)
        dataset.metadata["schema"] = self._schema
        return dataset


def _empirical_categorical(values: list[Any]) -> Categorical:
    counts = Counter(values)
    items = sorted(counts.items(), key=lambda pair: (str(pair[0])))
    return Categorical(
        values=tuple(value for value, _ in items),
        weights=tuple(float(count) for _, count in items),
    )


class _EmpiricalQuantile(ColumnDistribution):
    """Inverse-CDF sampling from the empirical distribution of a column."""

    def __init__(self, values: Sequence[float]) -> None:
        self._sorted = np.sort(np.asarray(values, dtype=np.float64))
        self._integral = all(float(v).is_integer() for v in values)

    def sample(self, rng: np.random.Generator, count: int, start_row: int) -> list[Any]:
        quantiles = rng.uniform(0.0, 1.0, size=count)
        sampled = np.quantile(self._sorted, quantiles, method="linear")
        if self._integral:
            return [int(round(float(v))) for v in sampled]
        return [float(v) for v in sampled]


def retail_star_schema(
    num_customers: int = 1000, num_products: int = 200
) -> dict[str, TableSchema]:
    """A ready-made retail star schema mirroring the embedded corpus tables."""
    from repro.datagen.corpus import COUNTRIES, PRODUCT_CATEGORIES

    customers = TableSchema("customers")
    customers.add("customer_id", SequentialKey())
    customers.add("name", TextColumn(prefix="customer", cardinality=num_customers))
    customers.add("country", Categorical(tuple(COUNTRIES)))
    customers.add("age", UniformInt(18, 80))

    products = TableSchema("products")
    products.add("product_id", SequentialKey())
    products.add("name", TextColumn(prefix="product", cardinality=num_products))
    products.add("category", Categorical(tuple(PRODUCT_CATEGORIES)))
    products.add("price", Gaussian(mean=40.0, std=15.0))

    orders = TableSchema("orders")
    orders.add("order_id", SequentialKey())
    orders.add("customer_id", ForeignKey(num_customers, skew=1.4))
    orders.add("product_id", ForeignKey(num_products, skew=1.3))
    orders.add("quantity", UniformInt(1, 6))
    orders.add("day", UniformInt(0, 365))

    return {"customers": customers, "products": products, "orders": orders}
