"""Dataset sources: the chunk-iterable abstraction of the data path.

The paper's volume axis (Section 2.1) and its fully-controllable
velocity requirement (Section 5.1) presume data sets that scale past
what one machine holds, so the framework's data path moves *sources* —
objects that yield :class:`~repro.datagen.base.RecordBatch` chunks
lazily — rather than fully materialized record lists.

:class:`DatasetSource` is a structural protocol; anything with a name,
a data type, metadata, a known record count, ``batches()`` and
``materialize()`` qualifies.  Two concrete shapes exist:

* :class:`~repro.datagen.base.DataSet` — the materialized source: its
  batches re-slice an in-memory list, so every historical call site
  keeps working unchanged;
* :class:`GeneratorSource` — the streaming source: batches come straight
  out of a :meth:`~repro.datagen.base.DataGenerator.iter_batches`
  stream, so peak memory is one chunk regardless of volume.

Generation is deterministic (same seed ⇒ same records), so the two
shapes are interchangeable evidence-wise: materializing a streaming
source yields bit-identical records to the equivalent ``generate()``
call, and workloads produce identical results either way.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any, Protocol, runtime_checkable

from repro.core.errors import GenerationError
from repro.datagen.base import DataGenerator, DataSet, DataType, RecordBatch


@runtime_checkable
class DatasetSource(Protocol):
    """What every layer of the data path accepts: a chunk-iterable data set.

    ``num_records`` is known up front (generators are volume-driven), so
    consumers can size output structures and report records-in without
    consuming the stream.
    """

    name: str
    metadata: dict[str, Any]

    @property
    def data_type(self) -> DataType: ...  # noqa: E704 - protocol stub

    @property
    def num_records(self) -> int: ...  # noqa: E704 - protocol stub

    def batches(self, chunk_size: int | None = None) -> Iterator[RecordBatch]:
        """Yield the records as successive :class:`RecordBatch` chunks."""
        ...

    def materialize(self) -> DataSet:
        """The fully-materialized form (bit-identical to the stream)."""
        ...


class GeneratorSource:
    """A lazy source over a fitted generator: records exist only per-chunk.

    ``batches()`` can be consumed any number of times — generation is
    deterministic, so every pass yields the same records.  ``iter_records``
    flattens the stream for record-at-a-time consumers.  ``materialize()``
    builds (and caches) the full :class:`DataSet` for call sites that
    genuinely need random access; the result is bit-identical to
    ``generator.generate(volume)`` (or ``generate_parallel`` for multiple
    partitions) at the same seed.
    """

    def __init__(
        self,
        generator: DataGenerator,
        volume: int,
        chunk_size: int | None = None,
        num_partitions: int = 1,
        name: str | None = None,
    ) -> None:
        if volume < 0:
            raise GenerationError(f"volume must be non-negative, got {volume}")
        if chunk_size is not None and chunk_size <= 0:
            raise GenerationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        if num_partitions <= 0:
            raise GenerationError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        generator._require_fitted()
        self.generator = generator
        self.volume = volume
        self.chunk_size = chunk_size
        self.num_partitions = num_partitions
        self.name = name or f"{generator.name.lower()}-stream"
        # An empty _wrap carries the generator's type-specific metadata
        # (a table's schema, an image set's classes) without generating
        # anything, so schema-driven consumers (e.g. the DBMS loader)
        # work off the stream alone.
        self.metadata: dict[str, Any] = dict(
            generator._wrap([], self.name).metadata
        )
        self.metadata["streamed"] = True
        self._materialized: DataSet | None = None

    @property
    def data_type(self) -> DataType:
        return self.generator.data_type

    @property
    def num_records(self) -> int:
        return self.volume

    def __len__(self) -> int:
        return self.volume

    def batches(self, chunk_size: int | None = None) -> Iterator[RecordBatch]:
        """Stream the generation as chunks (re-iterable, deterministic)."""
        if self._materialized is not None:
            # Already paid for the full list — re-slice it instead of
            # regenerating.
            yield from self._materialized.batches(
                chunk_size if chunk_size is not None else self.chunk_size
            )
            return
        yield from self.generator.iter_batches(
            self.volume,
            chunk_size if chunk_size is not None else self.chunk_size,
            self.num_partitions,
        )

    def iter_records(self) -> Iterator[Any]:
        """The flattened record stream (one record in memory at a time
        for streaming generators)."""
        for batch in self.batches():
            yield from batch

    def __iter__(self) -> Iterator[Any]:
        return self.iter_records()

    def materialize(self) -> DataSet:
        """Concatenate the stream into a full DataSet (cached).

        The result is exactly what ``generate()`` / ``generate_parallel()``
        would have produced — including type-specific metadata such as a
        table's schema, which generators attach in ``_wrap``.
        """
        if self._materialized is None:
            records: list[Any] = []
            for batch in self.batches():
                records.extend(batch.records)
            dataset = self.generator._wrap(records, self.name)
            dataset.metadata.setdefault("streamed", True)
            self._materialized = dataset
        return self._materialized

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GeneratorSource(generator={self.generator.name}, "
            f"volume={self.volume}, chunk_size={self.chunk_size}, "
            f"partitions={self.num_partitions})"
        )


def as_source(data: DataSet | DatasetSource) -> DatasetSource:
    """Coerce a DataSet or source to the source protocol (no copying)."""
    if isinstance(data, DatasetSource):
        return data
    raise GenerationError(
        f"expected a DataSet or DatasetSource, got {type(data).__name__}"
    )


def ensure_dataset(data: DataSet | DatasetSource) -> DataSet:
    """The materialized form of ``data`` (identity for a DataSet)."""
    if isinstance(data, DataSet):
        return data
    if isinstance(data, DatasetSource):
        return data.materialize()
    raise GenerationError(
        f"expected a DataSet or DatasetSource, got {type(data).__name__}"
    )
