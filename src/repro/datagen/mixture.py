"""Gaussian-mixture feature tables (inputs for clustering workloads).

K-means-style offline-analytics workloads need numeric feature vectors
with latent cluster structure.  :class:`GaussianMixtureGenerator` draws
rows from a mixture of spherical Gaussians; the true component of each
row is recorded in the last column so tests can measure clustering
quality against ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import GenerationError
from repro.datagen.base import (
    DataGenerator,
    DataSet,
    DataType,
    PurelySyntheticMixin,
    mix_seed,
)


class GaussianMixtureGenerator(PurelySyntheticMixin, DataGenerator):
    """Rows of ``dimensions`` floats drawn from ``num_components`` Gaussians.

    Schema: ``(x0, .., x{d-1}, true_component)``.
    """

    data_type = DataType.TABLE

    def __init__(
        self,
        num_components: int = 4,
        dimensions: int = 2,
        spread: float = 8.0,
        cluster_std: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        if num_components <= 0:
            raise GenerationError(
                f"num_components must be positive, got {num_components}"
            )
        if dimensions <= 0:
            raise GenerationError(f"dimensions must be positive, got {dimensions}")
        if cluster_std <= 0:
            raise GenerationError(f"cluster_std must be positive, got {cluster_std}")
        self.num_components = num_components
        self.dimensions = dimensions
        self.spread = spread
        self.cluster_std = cluster_std
        # Component centres are a deterministic function of the seed, so
        # every partition places points around the same centres.
        centre_rng = np.random.default_rng(mix_seed(seed, 0xC3))
        self.centres = centre_rng.uniform(
            -spread, spread, size=(num_components, dimensions)
        )

    def generate_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> list[tuple]:
        count = self.partition_volume(volume, partition, num_partitions)
        if count == 0:
            return []
        rng = self.rng_for_partition(partition, num_partitions)
        components = rng.integers(0, self.num_components, size=count)
        noise = rng.normal(0.0, self.cluster_std, size=(count, self.dimensions))
        points = self.centres[components] + noise
        return [
            tuple(float(value) for value in points[index]) + (int(components[index]),)
            for index in range(count)
        ]

    def _wrap(self, records: list, name: str | None) -> DataSet:
        dataset = super()._wrap(records, name)
        dataset.metadata["schema"] = tuple(
            f"x{i}" for i in range(self.dimensions)
        ) + ("true_component",)
        dataset.metadata["num_components"] = self.num_components
        return dataset
