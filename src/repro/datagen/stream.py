"""Stream data generation.

Section 2.1 of the paper gives data velocity a third meaning for streaming
systems: events arrive continuously and must be processed at their arrival
speed.  This module generates timestamped event streams with controllable
arrival processes:

* :class:`PoissonArrivals` — memoryless arrivals at a fixed rate;
* :class:`BurstyArrivals` — a two-state modulated process (quiet/burst),
  modelling the bursty traffic of real services;
* :class:`UniformArrivals` — fixed inter-arrival gaps (a paced source);
* :class:`EmpiricalArrivals` — bootstrap-resamples the inter-arrival gaps
  of a real stream (the veracity-preserving option).

:class:`StreamGenerator` combines an arrival process with a key
distribution and an operation mix (insert/update/delete) — the *update
frequency* facet of velocity that Section 5.1 says existing benchmarks
ignore.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.errors import GenerationError
from repro.datagen.base import DataGenerator, DataSet, DataType


class EventKind(enum.Enum):
    """The kind of state change an event carries."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class StreamEvent:
    """One timestamped event in a data stream."""

    timestamp: float
    key: int
    value: float
    kind: EventKind = EventKind.INSERT


class ArrivalProcess(ABC):
    """Produces inter-arrival gaps (seconds) between consecutive events."""

    @abstractmethod
    def gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` inter-arrival gaps."""

    def timestamps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Cumulative event timestamps starting from the first gap."""
        if count <= 0:
            return np.zeros(0)
        return np.cumsum(self.gaps(rng, count))


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival gaps at ``rate`` events/second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise GenerationError(f"rate must be positive, got {self.rate}")

    def gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=count)


@dataclass(frozen=True)
class UniformArrivals(ArrivalProcess):
    """Constant inter-arrival gaps (a perfectly paced source)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise GenerationError(f"rate must be positive, got {self.rate}")

    def gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.full(count, 1.0 / self.rate)


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (quiet ↔ burst).

    The process alternates between a quiet state emitting at ``low_rate``
    and a burst state emitting at ``high_rate``; after each event it
    switches state with probability ``switch_probability``.
    """

    low_rate: float
    high_rate: float
    switch_probability: float = 0.05

    def __post_init__(self) -> None:
        if self.low_rate <= 0 or self.high_rate <= 0:
            raise GenerationError("rates must be positive")
        if not 0.0 < self.switch_probability <= 1.0:
            raise GenerationError(
                f"switch_probability must be in (0, 1], got {self.switch_probability}"
            )

    def gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        gaps = np.empty(count)
        bursting = False
        for index in range(count):
            rate = self.high_rate if bursting else self.low_rate
            gaps[index] = rng.exponential(1.0 / rate)
            if rng.random() < self.switch_probability:
                bursting = not bursting
        return gaps


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally rate-modulated arrivals (a synthetic "day").

    The instantaneous rate follows ``rate * (1 + amplitude * sin(2πt /
    period))``, so a schedule longer than one period shows a peak and a
    trough around the base rate.  Each gap is drawn exponentially at the
    rate in effect at the current cumulative time (a stepwise
    approximation of the non-homogeneous Poisson process) — state lives
    inside one :meth:`gaps` call, so a schedule must be drawn in a
    single call to keep the phase continuous.
    """

    rate: float
    period: float = 60.0
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise GenerationError(f"rate must be positive, got {self.rate}")
        if self.period <= 0:
            raise GenerationError(
                f"period must be positive, got {self.period}"
            )
        if not 0.0 <= self.amplitude < 1.0:
            raise GenerationError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )

    def gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        gaps = np.empty(count)
        elapsed = 0.0
        two_pi = 2.0 * np.pi
        for index in range(count):
            instantaneous = self.rate * (
                1.0 + self.amplitude * np.sin(two_pi * elapsed / self.period)
            )
            gap = rng.exponential(1.0 / instantaneous)
            gaps[index] = gap
            elapsed += gap
        return gaps


class EmpiricalArrivals(ArrivalProcess):
    """Bootstrap-resamples the inter-arrival gaps of a real stream."""

    def __init__(self, real_timestamps: Sequence[float]) -> None:
        ordered = np.sort(np.asarray(real_timestamps, dtype=np.float64))
        gaps = np.diff(ordered)
        gaps = gaps[gaps > 0]
        if len(gaps) == 0:
            raise GenerationError(
                "need at least two distinct timestamps to learn arrivals"
            )
        self._gaps = gaps

    def gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.choice(self._gaps, size=count, replace=True)


class StreamGenerator(DataGenerator):
    """Generates timestamped event streams with a controllable update mix.

    ``update_fraction`` and ``delete_fraction`` control the *data updating
    frequency* (Section 2.1's second meaning of velocity); keys are
    Zipf-skewed over ``key_space`` so updates concentrate on hot keys.
    """

    data_type = DataType.STREAM

    def __init__(
        self,
        arrivals: ArrivalProcess | None = None,
        key_space: int = 1000,
        key_skew: float = 1.3,
        update_fraction: float = 0.0,
        delete_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        self.arrivals = arrivals or PoissonArrivals(rate=1000.0)
        if key_space <= 0:
            raise GenerationError(f"key_space must be positive, got {key_space}")
        if update_fraction < 0 or delete_fraction < 0:
            raise GenerationError("fractions must be non-negative")
        if update_fraction + delete_fraction > 1.0:
            raise GenerationError(
                "update_fraction + delete_fraction must not exceed 1.0"
            )
        self.key_space = key_space
        self.key_skew = key_skew
        self.update_fraction = update_fraction
        self.delete_fraction = delete_fraction

    def fit(self, real_data: DataSet) -> "StreamGenerator":
        """Learn the arrival process and update mix from a real stream."""
        events = list(real_data.records)
        if len(events) < 2:
            raise GenerationError("need at least two events to fit a stream model")
        timestamps = [event.timestamp for event in events]
        self.arrivals = EmpiricalArrivals(timestamps)
        kinds = [event.kind for event in events]
        total = len(kinds)
        self.update_fraction = kinds.count(EventKind.UPDATE) / total
        self.delete_fraction = kinds.count(EventKind.DELETE) / total
        keys = {event.key for event in events}
        self.key_space = max(keys) + 1 if keys else 1
        self._fitted = True
        return self

    def generate_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> list[StreamEvent]:
        count = self.partition_volume(volume, partition, num_partitions)
        if count == 0:
            return []
        rng = self.rng_for_partition(partition, num_partitions)
        timestamps = self.arrivals.timestamps(rng, count)
        if self.key_skew > 1.0:
            keys = np.minimum(
                rng.zipf(self.key_skew, size=count) - 1, self.key_space - 1
            )
        else:
            keys = rng.integers(0, self.key_space, size=count)
        values = rng.normal(0.0, 1.0, size=count)
        kind_draws = rng.random(count)
        events: list[StreamEvent] = []
        for index in range(count):
            draw = kind_draws[index]
            if draw < self.update_fraction:
                kind = EventKind.UPDATE
            elif draw < self.update_fraction + self.delete_fraction:
                kind = EventKind.DELETE
            else:
                kind = EventKind.INSERT
            events.append(
                StreamEvent(
                    timestamp=float(timestamps[index]),
                    key=int(keys[index]),
                    value=float(values[index]),
                    kind=kind,
                )
            )
        return events

    def measured_rate(self, events: Sequence[StreamEvent]) -> float:
        """Events per second implied by a generated stream's timestamps."""
        if len(events) < 2:
            raise GenerationError("need at least two events to measure a rate")
        span = max(event.timestamp for event in events) - min(
            event.timestamp for event in events
        )
        if span <= 0:
            raise GenerationError("stream timestamps have no extent")
        return (len(events) - 1) / span
