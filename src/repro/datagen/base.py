"""Data set abstraction and the data-generator base class.

This module implements the skeleton of the data-generation process of the
paper (Figure 3): a generator may optionally *fit* a model on a real data
set (step 2, veracity), then *generate* synthetic data at a requested
volume (step 3, volume), possibly split into deterministic partitions so
that generation can be parallelised (step 3, velocity).  Format conversion
(step 4) lives in :mod:`repro.datagen.formats`.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.errors import GenerationError, ModelNotFittedError


class StructureClass(enum.Enum):
    """The paper's three structure classes of big data (Section 2.1)."""

    STRUCTURED = "structured"
    SEMI_STRUCTURED = "semi-structured"
    UNSTRUCTURED = "unstructured"


class DataType(enum.Enum):
    """Representative data sources called out in Section 2.1 of the paper."""

    TEXT = ("text", StructureClass.UNSTRUCTURED)
    TABLE = ("table", StructureClass.STRUCTURED)
    GRAPH = ("graph", StructureClass.UNSTRUCTURED)
    STREAM = ("stream", StructureClass.SEMI_STRUCTURED)
    WEB_LOG = ("web log", StructureClass.SEMI_STRUCTURED)
    REVIEW = ("review", StructureClass.SEMI_STRUCTURED)
    RESUME = ("resume", StructureClass.SEMI_STRUCTURED)
    KEY_VALUE = ("key-value", StructureClass.STRUCTURED)
    IMAGE = ("image", StructureClass.UNSTRUCTURED)

    def __init__(self, label: str, structure: StructureClass) -> None:
        self.label = label
        self.structure = structure


@dataclass
class DataSet:
    """An in-memory data set flowing through the benchmark framework.

    ``records`` is a list whose element type depends on ``data_type``:

    * TEXT — ``str`` documents,
    * TABLE — ``tuple`` rows (with a ``schema`` entry in ``metadata``),
    * GRAPH — ``(src, dst)`` edge tuples,
    * STREAM — :class:`repro.datagen.stream.StreamEvent`,
    * WEB_LOG / REVIEW — ``dict`` records,
    * KEY_VALUE — ``(key, fields_dict)`` pairs.
    """

    name: str
    data_type: DataType
    records: list[Any]
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def structure(self) -> StructureClass:
        return self.data_type.structure

    def estimated_bytes(self) -> int:
        """A cheap, deterministic estimate of the serialized data volume."""
        total = 0
        for record in self.records:
            total += _record_size(record)
        return total

    def head(self, count: int = 5) -> list[Any]:
        """The first ``count`` records, for inspection and reporting."""
        return self.records[:count]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataSet(name={self.name!r}, type={self.data_type.label}, "
            f"records={self.num_records})"
        )


def _record_size(record: Any) -> int:
    """Estimate the serialized size of one record in bytes."""
    if isinstance(record, np.ndarray):
        return int(record.nbytes)
    if isinstance(record, str):
        return len(record)
    if isinstance(record, bytes):
        return len(record)
    if isinstance(record, (int, float)):
        return 8
    if isinstance(record, dict):
        return sum(_record_size(key) + _record_size(value) for key, value in record.items())
    if isinstance(record, (tuple, list)):
        return sum(_record_size(item) for item in record)
    return len(str(record))


def mix_seed(seed: int, *streams: int) -> int:
    """Derive an independent child seed from ``seed`` and stream indexes.

    Used to make partitioned generation deterministic: partition ``i`` of a
    generator seeded with ``s`` always produces the same records, regardless
    of how many other partitions run or in which order.
    """
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=tuple(streams))
    return int(sequence.generate_state(1)[0])


class DataGenerator(ABC):
    """Base class for all synthetic data generators (Figure 3).

    Sub-classes must implement :meth:`generate_partition`; the default
    :meth:`generate` produces a single partition covering the full volume.
    Generators that preserve veracity additionally implement :meth:`fit`
    and must be fitted before generating.
    """

    #: The data type this generator produces.
    data_type: DataType = DataType.TEXT
    #: Whether this generator learns a model from real data (veracity).
    veracity_aware: bool = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._fitted = not self.veracity_aware

    @property
    def name(self) -> str:
        return type(self).__name__

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, real_data: DataSet) -> "DataGenerator":
        """Learn a data model from a real data set (Figure 3, step 2).

        Veracity-unaware generators accept the call but ignore the data.
        """
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ModelNotFittedError(
                f"{self.name} must be fitted on real data before generating; "
                "call fit(real_data) first"
            )

    @abstractmethod
    def generate_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> list[Any]:
        """Generate the records for one partition of a ``volume``-sized set.

        ``volume`` is the *total* requested volume (the generator divides it
        among partitions); the unit is type-specific — documents for text,
        rows for tables, vertices for graphs, events for streams.
        """

    def generate(self, volume: int, name: str | None = None) -> DataSet:
        """Generate a complete synthetic data set of the requested volume."""
        self._require_fitted()
        if volume < 0:
            raise GenerationError(f"volume must be non-negative, got {volume}")
        records = self.generate_partition(volume, partition=0, num_partitions=1)
        return self._wrap(records, name)

    def generate_parallel(
        self, volume: int, num_partitions: int, name: str | None = None
    ) -> DataSet:
        """Generate ``volume`` records split deterministically into partitions.

        The result is identical in distribution to :meth:`generate`; the
        point of partitioning is that each partition is independent, so a
        velocity controller can run partitions concurrently or on multiple
        machines (Section 3.2, step 3).
        """
        self._require_fitted()
        if num_partitions <= 0:
            raise GenerationError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        records: list[Any] = []
        for partition in range(num_partitions):
            records.extend(
                self.generate_partition(volume, partition, num_partitions)
            )
        return self._wrap(records, name)

    def partition_volume(self, volume: int, partition: int, num_partitions: int) -> int:
        """The number of records partition ``partition`` must produce."""
        base, extra = divmod(volume, num_partitions)
        return base + (1 if partition < extra else 0)

    def rng_for_partition(self, partition: int, num_partitions: int) -> np.random.Generator:
        """A deterministic, partition-independent random generator."""
        return np.random.default_rng(mix_seed(self.seed, num_partitions, partition))

    def _wrap(self, records: list[Any], name: str | None) -> DataSet:
        return DataSet(
            name=name or f"{self.name.lower()}-output",
            data_type=self.data_type,
            records=records,
            metadata={"generator": self.name, "seed": self.seed},
        )


class PurelySyntheticMixin:
    """Marker mixin for generators whose output is independent of real data.

    The paper (Section 3.2, step 1) notes purely synthetic data is accepted
    for micro workloads (Sort/WordCount) and basic database operations.
    """

    veracity_aware = False


def as_dataset(
    records: Sequence[Any], data_type: DataType, name: str = "adhoc", **metadata: Any
) -> DataSet:
    """Convenience wrapper turning a plain record sequence into a DataSet."""
    return DataSet(name=name, data_type=data_type, records=list(records), metadata=dict(metadata))
