"""Data set abstraction and the data-generator base class.

This module implements the skeleton of the data-generation process of the
paper (Figure 3): a generator may optionally *fit* a model on a real data
set (step 2, veracity), then *generate* synthetic data at a requested
volume (step 3, volume), possibly split into deterministic partitions so
that generation can be parallelised (step 3, velocity).  Format conversion
(step 4) lives in :mod:`repro.datagen.formats`.
"""

from __future__ import annotations

import enum
from abc import ABC
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.errors import GenerationError, ModelNotFittedError
from repro.observability import current_tracer

#: Default records per batch on the chunked data path.  Chosen so a batch
#: of typical records stays in the megabyte range: small enough to bound
#: memory, large enough to amortise per-batch overhead.
DEFAULT_CHUNK_SIZE = 1024


class StructureClass(enum.Enum):
    """The paper's three structure classes of big data (Section 2.1)."""

    STRUCTURED = "structured"
    SEMI_STRUCTURED = "semi-structured"
    UNSTRUCTURED = "unstructured"


class DataType(enum.Enum):
    """Representative data sources called out in Section 2.1 of the paper."""

    TEXT = ("text", StructureClass.UNSTRUCTURED)
    TABLE = ("table", StructureClass.STRUCTURED)
    GRAPH = ("graph", StructureClass.UNSTRUCTURED)
    STREAM = ("stream", StructureClass.SEMI_STRUCTURED)
    WEB_LOG = ("web log", StructureClass.SEMI_STRUCTURED)
    REVIEW = ("review", StructureClass.SEMI_STRUCTURED)
    RESUME = ("resume", StructureClass.SEMI_STRUCTURED)
    KEY_VALUE = ("key-value", StructureClass.STRUCTURED)
    IMAGE = ("image", StructureClass.UNSTRUCTURED)

    def __init__(self, label: str, structure: StructureClass) -> None:
        self.label = label
        self.structure = structure


@dataclass
class RecordBatch:
    """A typed, sized slice of a record stream (the chunked-path unit).

    The data path moves ``RecordBatch`` objects, not whole record lists:
    a generator yields them one at a time, format converters transform
    them chunk by chunk, and engines ingest them incrementally — so peak
    memory is bounded by the batch size, not the data volume.

    ``index`` is the zero-based position of the batch in its stream and
    ``offset`` the global index of its first record, so consumers can
    reconstruct global record positions without counting.
    """

    records: list[Any]
    data_type: DataType
    index: int = 0
    offset: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    def estimated_bytes(self) -> int:
        """A cheap, deterministic estimate of the batch's serialized size."""
        return sum(_record_size(record) for record in self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecordBatch(index={self.index}, offset={self.offset}, "
            f"records={len(self.records)}, type={self.data_type.label})"
        )


@dataclass
class DataSet:
    """An in-memory data set flowing through the benchmark framework.

    ``records`` is a list whose element type depends on ``data_type``:

    * TEXT — ``str`` documents,
    * TABLE — ``tuple`` rows (with a ``schema`` entry in ``metadata``),
    * GRAPH — ``(src, dst)`` edge tuples,
    * STREAM — :class:`repro.datagen.stream.StreamEvent`,
    * WEB_LOG / REVIEW — ``dict`` records,
    * KEY_VALUE — ``(key, fields_dict)`` pairs.
    """

    name: str
    data_type: DataType
    records: list[Any]
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def structure(self) -> StructureClass:
        return self.data_type.structure

    def estimated_bytes(self) -> int:
        """A cheap, deterministic estimate of the serialized data volume."""
        total = 0
        for record in self.records:
            total += _record_size(record)
        return total

    def head(self, count: int = 5) -> list[Any]:
        """The first ``count`` records, for inspection and reporting."""
        return self.records[:count]

    # ------------------------------------------------------------------
    # DatasetSource protocol — a DataSet is the materialized source, so
    # every call site that accepts a source keeps working with the
    # historical fully-materialized lists.
    # ------------------------------------------------------------------

    def batches(self, chunk_size: int | None = None) -> Iterator[RecordBatch]:
        """The records re-sliced as :class:`RecordBatch` chunks."""
        chunk_size = DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size
        if chunk_size <= 0:
            raise GenerationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        for index, offset in enumerate(range(0, len(self.records), chunk_size)):
            yield RecordBatch(
                records=self.records[offset : offset + chunk_size],
                data_type=self.data_type,
                index=index,
                offset=offset,
            )

    def materialize(self) -> "DataSet":
        """A DataSet is already materialized; returns itself."""
        return self

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataSet(name={self.name!r}, type={self.data_type.label}, "
            f"records={self.num_records})"
        )


def _record_size(record: Any) -> int:
    """Estimate the serialized size of one record in bytes."""
    if isinstance(record, np.ndarray):
        return int(record.nbytes)
    if isinstance(record, str):
        return len(record)
    if isinstance(record, bytes):
        return len(record)
    if isinstance(record, (int, float)):
        return 8
    if isinstance(record, dict):
        return sum(_record_size(key) + _record_size(value) for key, value in record.items())
    if isinstance(record, (tuple, list)):
        return sum(_record_size(item) for item in record)
    return len(str(record))


def mix_seed(seed: int, *streams: int) -> int:
    """Derive an independent child seed from ``seed`` and stream indexes.

    Used to make partitioned generation deterministic: partition ``i`` of a
    generator seeded with ``s`` always produces the same records, regardless
    of how many other partitions run or in which order.
    """
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=tuple(streams))
    return int(sequence.generate_state(1)[0])


class DataGenerator(ABC):
    """Base class for all synthetic data generators (Figure 3).

    Sub-classes implement either :meth:`generate_partition` (materialized:
    the records of one partition as a list) or :meth:`iter_partition`
    (streamed: the same records, yielded one at a time) — each default
    implementation is defined in terms of the other, so one suffices.
    Streaming overrides must consume their random generator in the same
    order as the materialized loop would, which keeps the two paths
    bit-identical: ``generate(v)`` and the concatenation of
    ``iter_batches(v, chunk_size)`` produce the same records for the same
    seed, at every chunk size.

    The default :meth:`generate` produces a single partition covering the
    full volume.  Generators that preserve veracity additionally implement
    :meth:`fit` and must be fitted before generating.
    """

    #: The data type this generator produces.
    data_type: DataType = DataType.TEXT
    #: Whether this generator learns a model from real data (veracity).
    veracity_aware: bool = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._fitted = not self.veracity_aware

    @property
    def name(self) -> str:
        return type(self).__name__

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, real_data: DataSet) -> "DataGenerator":
        """Learn a data model from a real data set (Figure 3, step 2).

        Veracity-unaware generators accept the call but ignore the data.
        """
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ModelNotFittedError(
                f"{self.name} must be fitted on real data before generating; "
                "call fit(real_data) first"
            )

    def generate_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> list[Any]:
        """Generate the records for one partition of a ``volume``-sized set.

        ``volume`` is the *total* requested volume (the generator divides it
        among partitions); the unit is type-specific — documents for text,
        rows for tables, vertices for graphs, events for streams.

        The default materializes :meth:`iter_partition`; generators whose
        sampling is vectorised over the whole partition override this
        method instead.
        """
        return list(self.iter_partition(volume, partition, num_partitions))

    def iter_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> Iterator[Any]:
        """Yield the records of one partition, one at a time.

        Streaming generators override this; the default falls back to the
        subclass's materialized :meth:`generate_partition` (bit-identical,
        but peak memory is one partition instead of one record).
        """
        if type(self).generate_partition is DataGenerator.generate_partition:
            raise GenerationError(
                f"{self.name} implements neither generate_partition nor "
                "iter_partition"
            )
        yield from self.generate_partition(volume, partition, num_partitions)

    @property
    def streams_records(self) -> bool:
        """Whether this generator yields records without materializing.

        True when :meth:`iter_partition` is overridden — the generator's
        peak memory is then one record (plus the consumer's chunk), not
        one partition.
        """
        return type(self).iter_partition is not DataGenerator.iter_partition

    def iter_batches(
        self,
        volume: int,
        chunk_size: int | None = None,
        num_partitions: int = 1,
    ) -> Iterator[RecordBatch]:
        """Stream a ``volume``-sized generation as :class:`RecordBatch` chunks.

        The concatenated batches are bit-identical to :meth:`generate`
        (or :meth:`generate_parallel` when ``num_partitions > 1``) at the
        same seed, for every chunk size — chunking is re-slicing, not
        re-sampling.  Batches cross partition boundaries so every batch
        except the last holds exactly ``chunk_size`` records.

        When tracing is active, each batch bumps the ``batches`` counter
        and the running ``peak_batch_bytes`` maximum on the current span,
        so the bounded-memory claim is observable in span trees.
        """
        self._require_fitted()
        if volume < 0:
            raise GenerationError(f"volume must be non-negative, got {volume}")
        chunk_size = DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size
        if chunk_size <= 0:
            raise GenerationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        if num_partitions <= 0:
            raise GenerationError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        tracer = current_tracer()
        index = 0
        offset = 0
        buffer: list[Any] = []
        for partition in range(num_partitions):
            for record in self.iter_partition(volume, partition, num_partitions):
                buffer.append(record)
                if len(buffer) == chunk_size:
                    batch = RecordBatch(
                        records=buffer, data_type=self.data_type,
                        index=index, offset=offset,
                    )
                    tracer.count("batches")
                    tracer.count_max("peak_batch_bytes", batch.estimated_bytes())
                    yield batch
                    offset += len(buffer)
                    index += 1
                    buffer = []
        if buffer:
            batch = RecordBatch(
                records=buffer, data_type=self.data_type,
                index=index, offset=offset,
            )
            tracer.count("batches")
            tracer.count_max("peak_batch_bytes", batch.estimated_bytes())
            yield batch

    def generate(self, volume: int, name: str | None = None) -> DataSet:
        """Generate a complete synthetic data set of the requested volume."""
        self._require_fitted()
        if volume < 0:
            raise GenerationError(f"volume must be non-negative, got {volume}")
        records = self.generate_partition(volume, partition=0, num_partitions=1)
        return self._wrap(records, name)

    def generate_parallel(
        self,
        volume: int,
        num_partitions: int,
        name: str | None = None,
        executor: Any = None,
    ) -> DataSet:
        """Generate ``volume`` records split deterministically into partitions.

        The result is identical in distribution to :meth:`generate`; the
        point of partitioning is that each partition is independent, so a
        velocity controller can run partitions concurrently or on multiple
        machines (Section 3.2, step 3).

        ``executor`` makes that concurrency real: a backend name or
        :class:`~repro.execution.parallel.ParallelExecutor` fans the
        partitions out (each seeded independently via
        :meth:`rng_for_partition`) and merges them in partition order —
        bit-identical to the serial loop, on every backend.  The process
        backend requires the generator itself to be picklable; each
        worker receives the generator once per partition and samples
        only its own partition's seeded stream.
        """
        self._require_fitted()
        if num_partitions <= 0:
            raise GenerationError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        if executor is not None and num_partitions > 1:
            from repro.execution.parallel import resolve_executor

            partitions = resolve_executor(executor).map(
                _generate_partition_payload,
                [
                    (self, volume, partition, num_partitions)
                    for partition in range(num_partitions)
                ],
            )
            records = [
                record for partition in partitions for record in partition
            ]
            return self._wrap(records, name)
        records = []
        for partition in range(num_partitions):
            records.extend(
                self.generate_partition(volume, partition, num_partitions)
            )
        return self._wrap(records, name)

    def partition_volume(self, volume: int, partition: int, num_partitions: int) -> int:
        """The number of records partition ``partition`` must produce."""
        base, extra = divmod(volume, num_partitions)
        return base + (1 if partition < extra else 0)

    def rng_for_partition(self, partition: int, num_partitions: int) -> np.random.Generator:
        """A deterministic, partition-independent random generator."""
        return np.random.default_rng(mix_seed(self.seed, num_partitions, partition))

    def _wrap(self, records: list[Any], name: str | None) -> DataSet:
        return DataSet(
            name=name or f"{self.name.lower()}-output",
            data_type=self.data_type,
            records=records,
            metadata={"generator": self.name, "seed": self.seed},
        )


def _generate_partition_payload(payload: tuple) -> list[Any]:
    """Module-level partition task (picklable for the process backend)."""
    generator, volume, partition, num_partitions = payload
    return generator.generate_partition(volume, partition, num_partitions)


class PurelySyntheticMixin:
    """Marker mixin for generators whose output is independent of real data.

    The paper (Section 3.2, step 1) notes purely synthetic data is accepted
    for micro workloads (Sort/WordCount) and basic database operations.
    """

    veracity_aware = False


def as_dataset(
    records: Sequence[Any], data_type: DataType, name: str = "adhoc", **metadata: Any
) -> DataSet:
    """Convenience wrapper turning a plain record sequence into a DataSet."""
    return DataSet(name=name, data_type=data_type, records=list(records), metadata=dict(metadata))
