"""Veracity-preserving text generation via Latent Dirichlet Allocation.

Section 3.2 of the paper describes the reference design this module
implements: a text generator that (1) learns a word dictionary from a real
text data set, (2) trains the parameters of an LDA model [Blei et al. 2003]
on that data set, and (3) generates synthetic text from the trained model.

The LDA trainer is a from-scratch collapsed Gibbs sampler (numpy only).
Two baseline generators are provided for veracity ablations:

* :class:`UnigramTextGenerator` — learns only the marginal word frequency
  (no topic structure), and
* :class:`RandomTextGenerator` — purely synthetic, HiBench-style uniform
  random words, independent of any real data ("un-considered" veracity in
  Table 1 of the paper).
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.errors import GenerationError
from repro.datagen.base import (
    DataGenerator,
    DataSet,
    DataType,
    PurelySyntheticMixin,
)

_TOKEN_PATTERN = re.compile(r"[a-z0-9']+")


def tokenize(document: str) -> list[str]:
    """Lower-case alphanumeric tokenization used throughout the framework."""
    return _TOKEN_PATTERN.findall(document.lower())


class Vocabulary:
    """A bidirectional word ↔ integer-id mapping learned from a corpus."""

    def __init__(self, words: Iterable[str] = ()) -> None:
        self._word_to_id: dict[str, int] = {}
        self._words: list[str] = []
        for word in words:
            self.add(word)

    def add(self, word: str) -> int:
        if word not in self._word_to_id:
            self._word_to_id[word] = len(self._words)
            self._words.append(word)
        return self._word_to_id[word]

    def id_of(self, word: str) -> int:
        return self._word_to_id[word]

    def word_of(self, word_id: int) -> str:
        return self._words[word_id]

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __len__(self) -> int:
        return len(self._words)

    @property
    def words(self) -> list[str]:
        return list(self._words)


class LdaModel:
    """Latent Dirichlet Allocation fitted with collapsed Gibbs sampling.

    Exposes the fitted topic-word matrix ``phi`` (topics × vocabulary) and
    the document-topic prior ``alpha``; both are what the generator needs
    to sample new documents.
    """

    def __init__(
        self,
        num_topics: int = 4,
        alpha: float = 0.1,
        beta: float = 0.01,
        iterations: int = 60,
        seed: int = 0,
    ) -> None:
        if num_topics <= 0:
            raise ValueError(f"num_topics must be positive, got {num_topics}")
        self.num_topics = num_topics
        self.alpha = alpha
        self.beta = beta
        self.iterations = iterations
        self.seed = seed
        self.vocabulary: Vocabulary | None = None
        self.phi: np.ndarray | None = None  # topics x vocab
        self.mean_document_length: float = 0.0

    @property
    def is_fitted(self) -> bool:
        return self.phi is not None

    def fit(self, documents: Sequence[Sequence[str]]) -> "LdaModel":
        """Fit the model on tokenized documents via collapsed Gibbs sampling."""
        if not documents:
            raise GenerationError("cannot fit an LDA model on an empty corpus")
        vocabulary = Vocabulary()
        doc_tokens = [
            np.array([vocabulary.add(word) for word in doc], dtype=np.int64)
            for doc in documents
        ]
        vocab_size = len(vocabulary)
        if vocab_size == 0:
            raise GenerationError("corpus contains no tokens")
        rng = np.random.default_rng(self.seed)
        num_topics = self.num_topics

        topic_word = np.zeros((num_topics, vocab_size), dtype=np.float64)
        doc_topic = np.zeros((len(doc_tokens), num_topics), dtype=np.float64)
        topic_totals = np.zeros(num_topics, dtype=np.float64)
        assignments: list[np.ndarray] = []

        for doc_index, tokens in enumerate(doc_tokens):
            topics = rng.integers(num_topics, size=len(tokens))
            assignments.append(topics)
            for word_id, topic in zip(tokens, topics):
                topic_word[topic, word_id] += 1
                doc_topic[doc_index, topic] += 1
                topic_totals[topic] += 1

        for _ in range(self.iterations):
            for doc_index, tokens in enumerate(doc_tokens):
                topics = assignments[doc_index]
                for position, word_id in enumerate(tokens):
                    old_topic = topics[position]
                    topic_word[old_topic, word_id] -= 1
                    doc_topic[doc_index, old_topic] -= 1
                    topic_totals[old_topic] -= 1

                    weights = (
                        (topic_word[:, word_id] + self.beta)
                        / (topic_totals + self.beta * vocab_size)
                        * (doc_topic[doc_index] + self.alpha)
                    )
                    weights /= weights.sum()
                    new_topic = int(rng.choice(num_topics, p=weights))

                    topics[position] = new_topic
                    topic_word[new_topic, word_id] += 1
                    doc_topic[doc_index, new_topic] += 1
                    topic_totals[new_topic] += 1

        phi = topic_word + self.beta
        phi /= phi.sum(axis=1, keepdims=True)
        self.phi = phi
        self.vocabulary = vocabulary
        self.mean_document_length = float(
            np.mean([len(tokens) for tokens in doc_tokens])
        )
        return self

    def topic_distribution(self) -> np.ndarray:
        """The corpus-level word distribution implied by the fitted model."""
        if self.phi is None:
            raise GenerationError("LDA model is not fitted")
        return self.phi.mean(axis=0)

    def sample_document(self, rng: np.random.Generator, length: int | None = None) -> list[str]:
        """Sample one synthetic document from the fitted model."""
        if self.phi is None or self.vocabulary is None:
            raise GenerationError("LDA model is not fitted")
        if length is None:
            length = max(1, int(rng.poisson(self.mean_document_length)))
        theta = rng.dirichlet(np.full(self.num_topics, max(self.alpha, 1e-6)))
        topics = rng.choice(self.num_topics, size=length, p=theta)
        words: list[str] = []
        for topic in topics:
            word_id = int(rng.choice(self.phi.shape[1], p=self.phi[topic]))
            words.append(self.vocabulary.word_of(word_id))
        return words

    def infer_document_mixture(
        self, tokens: Sequence[str], iterations: int = 30
    ) -> np.ndarray:
        """Infer a document's topic mixture under the fitted model.

        A fixed-point iteration on the topic responsibilities (a cheap
        variational E-step); unknown words are ignored.  Used by the
        topic-structure veracity metric.
        """
        if self.phi is None or self.vocabulary is None:
            raise GenerationError("LDA model is not fitted")
        word_ids = [
            self.vocabulary.id_of(word) for word in tokens
            if word in self.vocabulary
        ]
        theta = np.full(self.num_topics, 1.0 / self.num_topics)
        if not word_ids:
            return theta
        word_probabilities = self.phi[:, word_ids]  # topics x words
        for _ in range(iterations):
            responsibilities = word_probabilities * theta[:, None]
            totals = responsibilities.sum(axis=0, keepdims=True)
            totals[totals == 0] = 1.0
            responsibilities /= totals
            theta = responsibilities.sum(axis=1) + self.alpha
            theta /= theta.sum()
        return theta

    def top_words(self, topic: int, count: int = 10) -> list[str]:
        """The highest-probability words of one topic, for inspection."""
        if self.phi is None or self.vocabulary is None:
            raise GenerationError("LDA model is not fitted")
        order = np.argsort(self.phi[topic])[::-1][:count]
        return [self.vocabulary.word_of(int(word_id)) for word_id in order]


class LdaTextGenerator(DataGenerator):
    """The paper's reference veracity-preserving text generator.

    ``fit`` learns a dictionary and LDA parameters from real text;
    ``generate`` samples synthetic documents from the trained model.
    """

    data_type = DataType.TEXT
    veracity_aware = True

    def __init__(
        self,
        num_topics: int = 4,
        alpha: float = 0.1,
        beta: float = 0.01,
        iterations: int = 60,
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        self.model = LdaModel(
            num_topics=num_topics, alpha=alpha, beta=beta,
            iterations=iterations, seed=seed,
        )

    def fit(self, real_data: DataSet) -> "LdaTextGenerator":
        documents = [tokenize(doc) for doc in real_data.records]
        documents = [doc for doc in documents if doc]
        self.model.fit(documents)
        self._fitted = True
        return self

    def iter_partition(
        self, volume: int, partition: int, num_partitions: int
    ):
        # Streamed: one sampled document at a time, same RNG consumption
        # order as the materialized list — bit-identical at every chunk
        # size.
        self._require_fitted()
        count = self.partition_volume(volume, partition, num_partitions)
        rng = self.rng_for_partition(partition, num_partitions)
        for _ in range(count):
            yield " ".join(self.model.sample_document(rng))


class UnigramTextGenerator(DataGenerator):
    """Baseline: learns only the marginal word frequencies (no topics)."""

    data_type = DataType.TEXT
    veracity_aware = True

    def __init__(self, seed: int = 0, document_length: int | None = None) -> None:
        super().__init__(seed=seed)
        self.document_length = document_length
        self._words: list[str] = []
        self._probabilities: np.ndarray | None = None
        self._mean_length = 0.0

    def fit(self, real_data: DataSet) -> "UnigramTextGenerator":
        counts: Counter[str] = Counter()
        lengths: list[int] = []
        for document in real_data.records:
            tokens = tokenize(document)
            counts.update(tokens)
            lengths.append(len(tokens))
        if not counts:
            raise GenerationError("corpus contains no tokens")
        self._words = sorted(counts)
        frequencies = np.array([counts[word] for word in self._words], dtype=np.float64)
        self._probabilities = frequencies / frequencies.sum()
        self._mean_length = float(np.mean(lengths))
        self._fitted = True
        return self

    def iter_partition(
        self, volume: int, partition: int, num_partitions: int
    ):
        self._require_fitted()
        count = self.partition_volume(volume, partition, num_partitions)
        rng = self.rng_for_partition(partition, num_partitions)
        for _ in range(count):
            length = self.document_length or max(1, int(rng.poisson(self._mean_length)))
            indexes = rng.choice(len(self._words), size=length, p=self._probabilities)
            yield " ".join(self._words[int(i)] for i in indexes)


class RandomTextGenerator(PurelySyntheticMixin, DataGenerator):
    """Purely synthetic text: uniform random words from a fixed word list.

    Mirrors the HiBench/Hadoop ``randomtextwriter`` approach the paper
    classifies as "un-considered" veracity (Table 1).
    """

    data_type = DataType.TEXT

    #: Default word list when none is supplied (a small English sample).
    DEFAULT_WORDS = [
        "apple", "river", "stone", "cloud", "light", "forest", "window",
        "bridge", "silver", "garden", "mountain", "ocean", "paper", "candle",
        "mirror", "shadow", "thunder", "velvet", "whisper", "yellow",
    ]

    def __init__(
        self, words: Sequence[str] | None = None,
        document_length: int = 50, seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        self.words = list(words) if words is not None else list(self.DEFAULT_WORDS)
        if not self.words:
            raise GenerationError("word list must not be empty")
        if document_length <= 0:
            raise GenerationError(
                f"document_length must be positive, got {document_length}"
            )
        self.document_length = document_length

    def iter_partition(
        self, volume: int, partition: int, num_partitions: int
    ):
        count = self.partition_volume(volume, partition, num_partitions)
        rng = self.rng_for_partition(partition, num_partitions)
        for _ in range(count):
            indexes = rng.integers(len(self.words), size=self.document_length)
            yield " ".join(self.words[int(i)] for i in indexes)


def word_distribution(documents: Iterable[str]) -> dict[str, float]:
    """The empirical word distribution of a set of documents.

    Used by the veracity metrics (Section 5.1) to compare real and
    synthetic corpora.
    """
    counts: Counter[str] = Counter()
    for document in documents:
        counts.update(tokenize(document))
    total = sum(counts.values())
    if total == 0:
        return {}
    return {word: count / total for word, count in counts.items()}
