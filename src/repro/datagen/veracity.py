"""Veracity metrics: how close is synthetic data to the real data?

Section 5.1 of the paper calls for two kinds of veracity metrics —
comparing the raw data against (1) the constructed data model and (2) the
generated synthetic data — and names Kullback–Leibler divergence as the
statistical tool for text.  This module implements that proposal for every
data type in the framework:

* divergence primitives (KL, Jensen–Shannon, total variation, chi-square)
  over aligned discrete distributions,
* per-type comparison functions: word distributions for text, log-binned
  degree distributions for graphs, per-column distributions for tables,
  inter-arrival histograms for streams,
* a :class:`VeracityReport` summarising the scores.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.errors import MetricError

#: Smoothing mass assigned to unseen outcomes when aligning supports.
_SMOOTHING = 1e-9


def align_distributions(
    p: Mapping[Any, float], q: Mapping[Any, float]
) -> tuple[np.ndarray, np.ndarray]:
    """Align two discrete distributions onto their union support.

    Missing outcomes get smoothing mass so divergences stay finite; both
    vectors are renormalised to sum to one.
    """
    support = sorted(set(p) | set(q), key=str)
    if not support:
        raise MetricError("cannot align two empty distributions")
    p_vector = np.array([p.get(key, 0.0) + _SMOOTHING for key in support])
    q_vector = np.array([q.get(key, 0.0) + _SMOOTHING for key in support])
    return p_vector / p_vector.sum(), q_vector / q_vector.sum()


def _as_vectors(
    p: Mapping[Any, float] | Sequence[float] | np.ndarray,
    q: Mapping[Any, float] | Sequence[float] | np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(p, Mapping) or isinstance(q, Mapping):
        if not (isinstance(p, Mapping) and isinstance(q, Mapping)):
            raise MetricError("cannot mix mapping and vector distributions")
        return align_distributions(p, q)
    p_vector = np.asarray(p, dtype=np.float64) + _SMOOTHING
    q_vector = np.asarray(q, dtype=np.float64) + _SMOOTHING
    if p_vector.shape != q_vector.shape:
        raise MetricError(
            f"distribution shapes differ: {p_vector.shape} vs {q_vector.shape}"
        )
    return p_vector / p_vector.sum(), q_vector / q_vector.sum()


def kl_divergence(
    p: Mapping[Any, float] | Sequence[float] | np.ndarray,
    q: Mapping[Any, float] | Sequence[float] | np.ndarray,
) -> float:
    """Kullback–Leibler divergence D(p ‖ q) in nats; non-negative."""
    p_vector, q_vector = _as_vectors(p, q)
    return float(np.sum(p_vector * np.log(p_vector / q_vector)))


def jensen_shannon_divergence(
    p: Mapping[Any, float] | Sequence[float] | np.ndarray,
    q: Mapping[Any, float] | Sequence[float] | np.ndarray,
) -> float:
    """Jensen–Shannon divergence: symmetric, bounded by ln 2."""
    p_vector, q_vector = _as_vectors(p, q)
    mixture = 0.5 * (p_vector + q_vector)
    return float(
        0.5 * np.sum(p_vector * np.log(p_vector / mixture))
        + 0.5 * np.sum(q_vector * np.log(q_vector / mixture))
    )


def total_variation(
    p: Mapping[Any, float] | Sequence[float] | np.ndarray,
    q: Mapping[Any, float] | Sequence[float] | np.ndarray,
) -> float:
    """Total-variation distance: half the L1 distance, in [0, 1]."""
    p_vector, q_vector = _as_vectors(p, q)
    return float(0.5 * np.sum(np.abs(p_vector - q_vector)))


def chi_square_statistic(
    observed: Mapping[Any, float] | Sequence[float] | np.ndarray,
    expected: Mapping[Any, float] | Sequence[float] | np.ndarray,
) -> float:
    """Pearson's chi-square statistic between two aligned distributions."""
    observed_vector, expected_vector = _as_vectors(observed, expected)
    return float(
        np.sum((observed_vector - expected_vector) ** 2 / expected_vector)
    )


@dataclass
class VeracityReport:
    """Scores from comparing a synthetic data set against the real one.

    ``score`` is the headline Jensen–Shannon divergence (lower is better,
    0 = identical, ln 2 ≈ 0.693 = disjoint); ``metrics`` carries every
    computed statistic.
    """

    data_type: str
    score: float
    metrics: dict[str, float] = field(default_factory=dict)

    #: JS-divergence threshold under which synthetic data is considered
    #: faithful; half the maximum possible divergence.
    FAITHFUL_THRESHOLD = 0.5 * math.log(2)

    @property
    def is_faithful(self) -> bool:
        return self.score <= self.FAITHFUL_THRESHOLD

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "faithful" if self.is_faithful else "NOT faithful"
        return f"VeracityReport({self.data_type}: JS={self.score:.4f}, {verdict})"


def text_veracity(
    real_documents: Iterable[str], synthetic_documents: Iterable[str]
) -> VeracityReport:
    """Compare word distributions of a real and a synthetic corpus.

    This is the paper's worked example: derive the word distributions from
    both corpora, then apply statistical divergences.
    """
    from repro.datagen.text import word_distribution

    real = word_distribution(real_documents)
    synthetic = word_distribution(synthetic_documents)
    if not real or not synthetic:
        raise MetricError("both corpora must contain at least one token")
    real_support = set(real)
    synthetic_support = set(synthetic)
    overlap = len(real_support & synthetic_support) / len(
        real_support | synthetic_support
    )
    js = jensen_shannon_divergence(real, synthetic)
    return VeracityReport(
        data_type="text",
        score=js,
        metrics={
            "kl_real_vs_synthetic": kl_divergence(real, synthetic),
            "js_divergence": js,
            "total_variation": total_variation(real, synthetic),
            "vocabulary_jaccard": overlap,
        },
    )


def topic_structure_veracity(
    real_documents: Sequence[str],
    synthetic_documents: Sequence[str],
    model,
    num_bins: int = 10,
) -> VeracityReport:
    """Compare *topic* structure, the paper's second text dimension.

    The marginal word distribution cannot distinguish an LDA corpus from
    a unigram one; topical concentration can.  Under the fitted LDA
    ``model`` (a :class:`repro.datagen.text.LdaModel`), infer each
    document's topic mixture and compare the distributions of the
    dominant topic's share: real documents concentrate on one topic, and
    faithful synthetic documents must do the same.
    """
    from repro.datagen.text import tokenize

    def dominant_shares(documents: Sequence[str]) -> list[float]:
        shares = []
        for document in documents:
            mixture = model.infer_document_mixture(tokenize(document))
            shares.append(float(mixture.max()))
        return shares

    real_shares = dominant_shares(real_documents)
    synthetic_shares = dominant_shares(synthetic_documents)
    if not real_shares or not synthetic_shares:
        raise MetricError("both corpora must contain documents")
    bins = np.linspace(0.0, 1.0, num_bins + 1)
    real_histogram, _ = np.histogram(real_shares, bins=bins)
    synthetic_histogram, _ = np.histogram(synthetic_shares, bins=bins)
    js = jensen_shannon_divergence(real_histogram, synthetic_histogram)
    return VeracityReport(
        data_type="text-topics",
        score=js,
        metrics={
            "js_dominant_topic_share": js,
            "mean_share_real": float(np.mean(real_shares)),
            "mean_share_synthetic": float(np.mean(synthetic_shares)),
        },
    )


def graph_veracity(
    real_edges: Sequence[tuple[int, int]],
    synthetic_edges: Sequence[tuple[int, int]],
    num_bins: int = 12,
) -> VeracityReport:
    """Compare log-binned degree distributions of two graphs."""
    from repro.datagen.graph import average_degree, log_binned_degree_distribution

    if not real_edges or not synthetic_edges:
        raise MetricError("both graphs must contain at least one edge")
    real = log_binned_degree_distribution(real_edges, num_bins)
    synthetic = log_binned_degree_distribution(synthetic_edges, num_bins)
    js = jensen_shannon_divergence(real, synthetic)
    return VeracityReport(
        data_type="graph",
        score=js,
        metrics={
            "js_degree_distribution": js,
            "kl_degree_distribution": kl_divergence(real, synthetic),
            "total_variation": total_variation(real, synthetic),
            "avg_degree_real": average_degree(real_edges),
            "avg_degree_synthetic": average_degree(synthetic_edges),
        },
    )


def table_veracity(
    real_rows: Sequence[tuple],
    synthetic_rows: Sequence[tuple],
    num_bins: int = 16,
) -> VeracityReport:
    """Compare two tables column by column.

    Numeric columns are histogrammed over the real column's range;
    categorical columns are compared by value frequency.  The headline
    score is the mean per-column JS divergence.
    """
    if not real_rows or not synthetic_rows:
        raise MetricError("both tables must contain at least one row")
    width = min(len(real_rows[0]), len(synthetic_rows[0]))
    per_column: dict[str, float] = {}
    for index in range(width):
        real_values = [row[index] for row in real_rows]
        synthetic_values = [row[index] for row in synthetic_rows]
        per_column[f"js_col_{index}"] = _column_divergence(
            real_values, synthetic_values, num_bins
        )
    score = float(np.mean(list(per_column.values())))
    per_column["js_mean"] = score
    return VeracityReport(data_type="table", score=score, metrics=per_column)


def _column_divergence(
    real_values: list[Any], synthetic_values: list[Any], num_bins: int
) -> float:
    numeric = all(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        for value in real_values + synthetic_values
    )
    if numeric:
        low = min(real_values)
        high = max(real_values)
        if low == high:
            high = low + 1.0
        bins = np.linspace(low, high, num_bins + 1)
        real_histogram, _ = np.histogram(real_values, bins=bins)
        synthetic_histogram, _ = np.histogram(
            np.clip(synthetic_values, low, high), bins=bins
        )
        return jensen_shannon_divergence(real_histogram, synthetic_histogram)
    real_frequency = _frequencies(real_values)
    synthetic_frequency = _frequencies(synthetic_values)
    return jensen_shannon_divergence(real_frequency, synthetic_frequency)


def _frequencies(values: list[Any]) -> dict[Any, float]:
    total = len(values)
    counts: dict[Any, float] = {}
    for value in values:
        counts[value] = counts.get(value, 0.0) + 1.0
    return {value: count / total for value, count in counts.items()}


def stream_veracity(
    real_timestamps: Sequence[float],
    synthetic_timestamps: Sequence[float],
    num_bins: int = 16,
) -> VeracityReport:
    """Compare the inter-arrival-time distributions of two event streams."""
    real_gaps = np.diff(np.sort(np.asarray(real_timestamps, dtype=np.float64)))
    synthetic_gaps = np.diff(
        np.sort(np.asarray(synthetic_timestamps, dtype=np.float64))
    )
    if len(real_gaps) == 0 or len(synthetic_gaps) == 0:
        raise MetricError("both streams must contain at least two events")
    high = max(float(real_gaps.max()), 1e-9)
    bins = np.linspace(0.0, high, num_bins + 1)
    real_histogram, _ = np.histogram(real_gaps, bins=bins)
    synthetic_histogram, _ = np.histogram(
        np.clip(synthetic_gaps, 0.0, high), bins=bins
    )
    js = jensen_shannon_divergence(real_histogram, synthetic_histogram)
    return VeracityReport(
        data_type="stream",
        score=js,
        metrics={
            "js_interarrival": js,
            "mean_gap_real": float(real_gaps.mean()),
            "mean_gap_synthetic": float(synthetic_gaps.mean()),
        },
    )


def model_veracity(
    real_distribution: Mapping[Any, float] | Sequence[float] | np.ndarray,
    model_distribution: Mapping[Any, float] | Sequence[float] | np.ndarray,
    data_type: str = "model",
) -> VeracityReport:
    """Metric type (1) of Section 5.1: raw data vs the constructed model."""
    js = jensen_shannon_divergence(real_distribution, model_distribution)
    return VeracityReport(
        data_type=data_type,
        score=js,
        metrics={
            "js_divergence": js,
            "kl_divergence": kl_divergence(real_distribution, model_distribution),
        },
    )
