"""Graph data generation.

Social-network benchmarks (LinkBench, BigDataBench's graph workloads)
need synthetic graphs whose degree distribution matches a real seed graph.
This module provides:

* :class:`RmatGraphGenerator` — a recursive-matrix (R-MAT) sampler, the
  practical form of the stochastic Kronecker model BigDataBench uses; its
  ``fit`` learns the average degree and skew parameters from a seed graph
  by a small grid search minimising degree-distribution divergence;
* :class:`PreferentialAttachmentGenerator` — Barabási–Albert growth,
  fitted from the seed graph's average degree;
* :class:`ErdosRenyiGenerator` — a veracity-unaware uniform-random
  baseline used in the veracity ablation (E9 in DESIGN.md).

Volume for graph generators is the **number of vertices** (the paper's
example: "2^20 vertices" for social-graph workloads).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.errors import GenerationError
from repro.datagen.base import (
    DataGenerator,
    DataSet,
    DataType,
    PurelySyntheticMixin,
)

Edge = tuple[int, int]


def degree_counts(edges: Iterable[Edge]) -> Counter[int]:
    """Vertex → degree over an undirected edge list."""
    degrees: Counter[int] = Counter()
    for src, dst in edges:
        degrees[src] += 1
        degrees[dst] += 1
    return degrees


def degree_distribution(edges: Iterable[Edge]) -> dict[int, float]:
    """Empirical distribution of vertex degrees (degree → probability)."""
    degrees = degree_counts(edges)
    histogram: Counter[int] = Counter(degrees.values())
    total = sum(histogram.values())
    if total == 0:
        return {}
    return {degree: count / total for degree, count in sorted(histogram.items())}


def average_degree(edges: Sequence[Edge]) -> float:
    """Mean vertex degree of an undirected edge list."""
    degrees = degree_counts(edges)
    if not degrees:
        return 0.0
    return 2.0 * len(edges) / len(degrees)


def log_binned_degree_distribution(
    edges: Iterable[Edge], num_bins: int = 12
) -> np.ndarray:
    """Degree distribution aggregated into logarithmic bins.

    Log-binning makes heavy-tailed distributions comparable across graph
    sizes; the veracity metrics compare these vectors.
    """
    degrees = list(degree_counts(edges).values())
    if not degrees:
        return np.zeros(num_bins)
    max_degree = max(degrees)
    edges_of_bins = np.logspace(0, math.log10(max_degree + 1), num_bins + 1)
    histogram, _ = np.histogram(degrees, bins=edges_of_bins)
    total = histogram.sum()
    if total == 0:
        return np.zeros(num_bins)
    return histogram / total


class RmatGraphGenerator(DataGenerator):
    """R-MAT / stochastic-Kronecker edge sampler.

    Each edge picks a quadrant of the adjacency matrix recursively with
    probabilities ``(a, b, c, d)``; high ``a`` concentrates edges among
    low-id vertices, producing the heavy-tailed degree distributions of
    real social graphs.
    """

    data_type = DataType.GRAPH
    veracity_aware = True

    #: (a, d) candidates explored by ``fit``; b = c = (1 - a - d) / 2.
    FIT_CANDIDATES: tuple[tuple[float, float], ...] = (
        (0.45, 0.15), (0.55, 0.10), (0.65, 0.08), (0.75, 0.05), (0.85, 0.03),
    )

    def __init__(
        self,
        a: float = 0.57,
        b: float = 0.19,
        c: float = 0.19,
        edges_per_vertex: float = 4.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        self.set_parameters(a, b, c)
        if edges_per_vertex <= 0:
            raise GenerationError(
                f"edges_per_vertex must be positive, got {edges_per_vertex}"
            )
        self.edges_per_vertex = edges_per_vertex
        # Parameters have defaults, so the generator is usable unfitted.
        self._fitted = True

    def set_parameters(self, a: float, b: float, c: float) -> None:
        d = 1.0 - a - b - c
        if min(a, b, c, d) < 0 or a <= 0:
            raise GenerationError(
                f"invalid R-MAT parameters a={a}, b={b}, c={c} (d={d:.3f})"
            )
        self.a, self.b, self.c, self.d = a, b, c, d

    def fit(self, real_data: DataSet) -> "RmatGraphGenerator":
        """Learn average degree and skew parameters from a seed graph."""
        from repro.datagen.veracity import jensen_shannon_divergence

        edges = list(real_data.records)
        if not edges:
            raise GenerationError("cannot fit a graph generator on an empty graph")
        self.edges_per_vertex = max(average_degree(edges) / 2.0, 0.5)
        num_vertices = len(degree_counts(edges))
        sample_vertices = min(max(num_vertices, 64), 512)
        target = log_binned_degree_distribution(edges)
        best: tuple[float, tuple[float, float]] | None = None
        for a, d in self.FIT_CANDIDATES:
            b = c = (1.0 - a - d) / 2.0
            trial = RmatGraphGenerator(
                a=a, b=b, c=c,
                edges_per_vertex=self.edges_per_vertex, seed=self.seed,
            )
            sample = trial.generate(sample_vertices)
            candidate = log_binned_degree_distribution(sample.records)
            divergence = jensen_shannon_divergence(target, candidate)
            if best is None or divergence < best[0]:
                best = (divergence, (a, d))
        assert best is not None
        a, d = best[1]
        b = c = (1.0 - a - d) / 2.0
        self.set_parameters(a, b, c)
        self._fitted = True
        return self

    def generate_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> list[Edge]:
        if volume == 0:
            return []
        levels = max(1, math.ceil(math.log2(volume)))
        size = 2**levels
        total_edges = int(round(self.edges_per_vertex * volume))
        count = self.partition_volume(total_edges, partition, num_partitions)
        rng = self.rng_for_partition(partition, num_partitions)
        probabilities = np.array([self.a, self.b, self.c, self.d])
        probabilities = probabilities / probabilities.sum()
        edges: list[Edge] = []
        quadrants = rng.choice(4, size=(count, levels), p=probabilities)
        for row in quadrants:
            src = dst = 0
            for quadrant in row:
                src = (src << 1) | (int(quadrant) >> 1)
                dst = (dst << 1) | (int(quadrant) & 1)
            edges.append((src % size, dst % size))
        return edges


class PreferentialAttachmentGenerator(DataGenerator):
    """Barabási–Albert growth: new vertices attach to high-degree vertices."""

    data_type = DataType.GRAPH
    veracity_aware = True

    def __init__(self, edges_per_vertex: int = 3, seed: int = 0) -> None:
        super().__init__(seed=seed)
        if edges_per_vertex <= 0:
            raise GenerationError(
                f"edges_per_vertex must be positive, got {edges_per_vertex}"
            )
        self.edges_per_vertex = edges_per_vertex
        self._fitted = True  # usable with the default attachment count

    def fit(self, real_data: DataSet) -> "PreferentialAttachmentGenerator":
        edges = list(real_data.records)
        if not edges:
            raise GenerationError("cannot fit a graph generator on an empty graph")
        self.edges_per_vertex = max(1, round(average_degree(edges) / 2.0))
        self._fitted = True
        return self

    def generate_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> list[Edge]:
        """Generate one partition of a preferential-attachment graph.

        Growth is inherently sequential, so partitions are produced by
        growing the full graph deterministically and slicing its edges;
        this keeps the parallel API while preserving the growth process.
        """
        full = self._grow(volume)
        base, extra = divmod(len(full), num_partitions)
        start = partition * base + min(partition, extra)
        size = base + (1 if partition < extra else 0)
        return full[start : start + size]

    def _grow(self, volume: int) -> list[Edge]:
        if volume <= 1:
            return []
        rng = np.random.default_rng(self.seed)
        clique = min(self.edges_per_vertex + 1, volume)
        edges: list[Edge] = []
        attachment: list[int] = []
        for u in range(clique):
            for v in range(u + 1, clique):
                edges.append((u, v))
                attachment.extend((u, v))
        for new_vertex in range(clique, volume):
            targets: set[int] = set()
            limit = min(self.edges_per_vertex, new_vertex)
            while len(targets) < limit:
                targets.add(attachment[int(rng.integers(len(attachment)))])
            for target in sorted(targets):
                edges.append((new_vertex, target))
                attachment.extend((new_vertex, target))
        return edges


class ErdosRenyiGenerator(PurelySyntheticMixin, DataGenerator):
    """Uniform random graph G(n, m): the veracity-unaware baseline."""

    data_type = DataType.GRAPH

    def __init__(self, edges_per_vertex: float = 4.0, seed: int = 0) -> None:
        super().__init__(seed=seed)
        if edges_per_vertex <= 0:
            raise GenerationError(
                f"edges_per_vertex must be positive, got {edges_per_vertex}"
            )
        self.edges_per_vertex = edges_per_vertex

    def generate_partition(
        self, volume: int, partition: int, num_partitions: int
    ) -> list[Edge]:
        if volume == 0:
            return []
        total_edges = int(round(self.edges_per_vertex * volume))
        count = self.partition_volume(total_edges, partition, num_partitions)
        rng = self.rng_for_partition(partition, num_partitions)
        sources = rng.integers(0, volume, size=count)
        targets = rng.integers(0, volume, size=count)
        return [(int(s), int(t)) for s, t in zip(sources, targets)]
