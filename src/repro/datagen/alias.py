"""Walker alias-method sampling.

Used as the "spend memory to gain speed" knob of Section 5.1: the alias
table takes O(V) extra memory but draws samples in O(1), whereas naive
inverse-CDF search draws in O(V).  The velocity benchmarks compare both to
demonstrate controlling data-generation velocity by changing the
generation *algorithm* rather than the degree of parallelism.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.errors import GenerationError


class AliasSampler:
    """O(1) discrete sampling via Walker's alias method."""

    def __init__(self, probabilities: Sequence[float]) -> None:
        weights = np.asarray(probabilities, dtype=np.float64)
        if weights.ndim != 1 or len(weights) == 0:
            raise GenerationError("probabilities must be a non-empty 1-D sequence")
        if np.any(weights < 0):
            raise GenerationError("probabilities must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise GenerationError("probabilities must sum to a positive value")
        size = len(weights)
        scaled = weights * (size / total)
        self._probability = np.zeros(size)
        self._alias = np.zeros(size, dtype=np.int64)
        small = [i for i, w in enumerate(scaled) if w < 1.0]
        large = [i for i, w in enumerate(scaled) if w >= 1.0]
        scaled = scaled.copy()
        while small and large:
            lo = small.pop()
            hi = large.pop()
            self._probability[lo] = scaled[lo]
            self._alias[lo] = hi
            scaled[hi] = scaled[hi] - (1.0 - scaled[lo])
            if scaled[hi] < 1.0:
                small.append(hi)
            else:
                large.append(hi)
        for remaining in large + small:
            self._probability[remaining] = 1.0
            self._alias[remaining] = remaining

    def __len__(self) -> int:
        return len(self._probability)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` indexes distributed per the constructor weights."""
        columns = rng.integers(0, len(self._probability), size=count)
        coins = rng.random(count)
        keep = coins < self._probability[columns]
        return np.where(keep, columns, self._alias[columns])


def naive_sample(
    rng: np.random.Generator, cumulative: np.ndarray, count: int
) -> np.ndarray:
    """O(V)-per-draw linear inverse-CDF sampling (the slow baseline).

    ``cumulative`` is the cumulative probability vector.  Deliberately a
    Python-level loop with linear scan: this is the inefficient algorithm
    whose replacement demonstrates the Section 5.1 velocity knob.
    """
    draws = np.empty(count, dtype=np.int64)
    for index in range(count):
        needle = rng.random()
        position = 0
        while position < len(cumulative) - 1 and cumulative[position] < needle:
            position += 1
        draws[index] = position
    return draws
