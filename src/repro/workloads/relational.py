"""Relational-query workloads, runnable on a DBMS *and* on MapReduce.

This is the Pavlo et al. comparison the paper surveys ([15]: "data
loading, select, aggregate, join, count URL links" across "DBMS and
Hadoop"): the same abstract select→join→aggregate test implemented on
both system types, which is exactly what the paper's functional view
exists to allow.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import ExecutionError
from repro.core.operations import operations
from repro.core.patterns import MultiOperationPattern
from repro.datagen.base import DataSet, DataType
from repro.datagen.corpus import PRODUCT_CATEGORIES
from repro.engines.base import CostCounters
from repro.engines.dbms import DbmsEngine, col, lit
from repro.engines.mapreduce import JobConf, MapReduceEngine, MapReduceJob
from repro.engines.nosql import NoSqlStore
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


def _order_columns(dataset: DataSet) -> tuple[int, int, tuple[str, ...]]:
    """(product position, quantity position, schema) of an orders table."""
    schema = dataset.metadata.get("schema")
    if schema is None:
        raise ExecutionError(f"data set {dataset.name!r} has no schema metadata")
    try:
        product_position = list(schema).index("product_id")
        quantity_position = list(schema).index("quantity")
    except ValueError as exc:
        raise ExecutionError(
            f"orders table must have product_id and quantity columns, "
            f"got {schema}"
        ) from exc
    return product_position, quantity_position, tuple(schema)


def derive_products(dataset: DataSet) -> list[tuple[int, str, float]]:
    """A deterministic products dimension from the order foreign keys.

    Category and price are functions of the product id, so DBMS and
    MapReduce runs join against identical dimension data.
    """
    product_position, _, _ = _order_columns(dataset)
    product_ids = sorted({row[product_position] for row in dataset.records})
    return [
        (
            product_id,
            PRODUCT_CATEGORIES[product_id % len(PRODUCT_CATEGORIES)],
            round(10.0 + (product_id * 7919) % 90, 2),
        )
        for product_id in product_ids
    ]


class RelationalQueryWorkload(Workload):
    """select(quantity ≥ q) → join(products) → aggregate sum per category.

    ``run_dbms`` plans it through the relational engine;
    ``run_mapreduce`` implements the classic repartition join plus an
    aggregation job; ``run_nosql`` runs it as a KV-store client with the
    dimension joined client-side.  Outputs are identical up to row
    order, which the integration tests assert.
    """

    name = "relational-query"
    domain = ApplicationDomain.BASIC_DATABASE
    category = WorkloadCategory.REALTIME_ANALYTICS
    data_type = DataType.TABLE
    abstract_operations = tuple(operations("select", "join", "aggregate"))
    pattern = MultiOperationPattern(operations("select", "join", "aggregate"))

    def run_dbms(
        self,
        engine: DbmsEngine,
        dataset: DataSet,
        min_quantity: int = 2,
        **params: Any,
    ) -> WorkloadResult:
        _, _, schema = _order_columns(dataset)
        if not engine.catalog.has_table("orders"):
            engine.create_table("orders", schema)
            engine.insert("orders", dataset.records)
            engine.create_table("products", ("product_id", "category", "price"))
            engine.insert("products", derive_products(dataset))
            engine.create_index("products", "product_id")
        result = engine.execute(
            engine.query("orders")
            .where(col("quantity") >= lit(min_quantity))
            .join("products", "product_id", "product_id")
            .group_by("category")
            .aggregate("sum", "quantity", "total_quantity")
            .order_by("category")
        )
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=result.rows,
            records_in=dataset.num_records,
            records_out=len(result.rows),
            duration_seconds=result.wall_seconds,
            cost=result.cost,
            extra={"plan": result.plan},
        )

    def run_mapreduce(
        self,
        engine: MapReduceEngine,
        dataset: DataSet,
        min_quantity: int = 2,
        **params: Any,
    ) -> WorkloadResult:
        product_position, quantity_position, _ = _order_columns(dataset)
        products = derive_products(dataset)

        # Job 1: repartition join, with the selection pushed into the map.
        def join_map(row_id: int, record: tuple):
            tag, row = record
            if tag == "O":
                if row[quantity_position] >= min_quantity:
                    yield row[product_position], ("O", row[quantity_position])
            else:
                yield row[0], ("P", row[1])

        def join_reduce(product_id: Any, tagged: list[tuple]):
            quantities = [value for tag, value in tagged if tag == "O"]
            categories = [value for tag, value in tagged if tag == "P"]
            for category in categories:
                for quantity in quantities:
                    yield category, quantity

        tagged_input = [(i, ("O", row)) for i, row in enumerate(dataset.records)]
        tagged_input += [
            (len(tagged_input) + i, ("P", row)) for i, row in enumerate(products)
        ]
        join_job = MapReduceJob(
            "relational-join", join_map, join_reduce, conf=JobConf(sort_keys=False)
        )
        joined = engine.run(join_job, tagged_input)

        # Job 2: aggregate sum(quantity) per category.
        def agg_map(category: str, quantity: Any):
            yield category, quantity

        def agg_reduce(category: str, quantities: list):
            yield category, float(sum(quantities))

        agg_job = MapReduceJob(
            "relational-aggregate", agg_map, agg_reduce, combiner=agg_reduce
        )
        aggregated = engine.run(agg_job, joined.output)

        total_cost = joined.cost.merge(aggregated.cost)
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=sorted(aggregated.output),
            records_in=dataset.num_records,
            records_out=len(aggregated.output),
            duration_seconds=joined.wall_seconds + aggregated.wall_seconds,
            cost=total_cost,
            simulated_seconds=joined.simulated_seconds
            + aggregated.simulated_seconds,
        )

    def run_nosql(
        self,
        engine: "NoSqlStore",
        dataset: DataSet,
        min_quantity: int = 2,
        scan_batch: int = 256,
        **params: Any,
    ) -> WorkloadResult:
        """The same query as a KV-store client would run it.

        NoSQL stores have no join operator, so the dimension table stays
        client-side (the common denormalized-read pattern): orders are
        loaded as rows, scanned back in key order page by page, filtered
        and joined against the derived product dimension in the client,
        then aggregated.  Output matches ``run_dbms``/``run_mapreduce``
        row for row.
        """
        product_position, quantity_position, _ = _order_columns(dataset)
        category_of = {
            product_id: category
            for product_id, category, _ in derive_products(dataset)
        }

        latencies: list[float] = []
        if len(engine) == 0:
            for index, row in enumerate(dataset.records):
                op = engine.insert(
                    f"order:{index:010d}",
                    {
                        "product_id": row[product_position],
                        "quantity": row[quantity_position],
                    },
                )
                latencies.append(op.latency_seconds)

        totals: dict[str, float] = {}
        start_key = ""
        while True:
            op = engine.scan(start_key, scan_batch)
            latencies.append(op.latency_seconds)
            for _, fields in op.rows:
                if fields["quantity"] >= min_quantity:
                    category = category_of[fields["product_id"]]
                    totals[category] = (
                        totals.get(category, 0.0) + fields["quantity"]
                    )
            if len(op.rows) < scan_batch:
                break
            start_key = op.rows[-1][0] + "\x00"

        output = sorted(
            (category, float(total)) for category, total in totals.items()
        )
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=output,
            records_in=dataset.num_records,
            records_out=len(output),
            duration_seconds=0.0,  # filled by the dispatcher
            cost=CostCounters().merge(engine.counters),
            latencies=latencies,
            simulated_seconds=sum(latencies),
            extra={"operations": len(latencies)},
        )


class CountUrlLinksWorkload(Workload):
    """Count requests per URL path (Pavlo's "count URL links" analogue)."""

    name = "count-url-links"
    domain = ApplicationDomain.BASIC_DATABASE
    category = WorkloadCategory.REALTIME_ANALYTICS
    data_type = DataType.WEB_LOG
    abstract_operations = tuple(operations("count", "aggregate"))
    pattern = MultiOperationPattern(operations("count", "aggregate"))

    def run_dbms(
        self, engine: DbmsEngine, dataset: DataSet, **params: Any
    ) -> WorkloadResult:
        if not engine.catalog.has_table("weblog"):
            engine.create_table("weblog", ("customer_id", "path", "status"))
            engine.insert(
                "weblog",
                [
                    (record["customer_id"], record["path"], record["status"])
                    for record in dataset.records
                ],
            )
        result = engine.execute(
            engine.query("weblog")
            .group_by("path")
            .aggregate("count", None, "hits")
            .order_by("path")
        )
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=result.rows,
            records_in=dataset.num_records,
            records_out=len(result.rows),
            duration_seconds=result.wall_seconds,
            cost=result.cost,
        )

    def run_mapreduce(
        self, engine: MapReduceEngine, dataset: DataSet, **params: Any
    ) -> WorkloadResult:
        def path_map(record_id: int, record: dict):
            yield record["path"], 1

        def count_reduce(path: str, counts: list[int]):
            yield path, sum(counts)

        job = MapReduceJob(
            "count-url-links", path_map, count_reduce, combiner=count_reduce
        )
        result = engine.run(job, list(enumerate(dataset.records)))
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=sorted(result.output),
            records_in=dataset.num_records,
            records_out=len(result.output),
            duration_seconds=result.wall_seconds,
            cost=result.cost,
            simulated_seconds=result.simulated_seconds,
        )
