"""Micro benchmarks: Sort, WordCount, Grep, TeraSort.

The paper's canonical micro workloads ("typical MapReduce operations such
as sort and WordCount", Table 2).  All are MapReduce-native, as in
HiBench and GridMix; TeraSort additionally demonstrates the sampling
range partitioner that makes multi-reducer output globally ordered.
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from typing import Any

from repro.core.operations import operations
from repro.core.patterns import MultiOperationPattern, SingleOperationPattern
from repro.datagen.base import DataSet, DataType
from repro.datagen.source import DatasetSource
from repro.engines.mapreduce import JobConf, MapReduceEngine, MapReduceJob
from repro.engines.mapreduce.runtime import JobResult
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


def _text_pairs(
    dataset: DataSet | DatasetSource,
) -> Iterable[tuple[int, str]]:
    """Documents as (line_number, line) pairs, the MR text input format.

    A materialized data set yields the historical list; a streaming
    source yields a lazy enumeration so the pairs are never all in
    memory at once (the MapReduce runtime cuts splits as they arrive).
    """
    if isinstance(dataset, DataSet):
        return list(enumerate(dataset.records))
    return enumerate(iter(dataset))


def _result_from_jobs(
    workload: str, engine: MapReduceEngine, jobs: list[JobResult], records_in: int
) -> WorkloadResult:
    """Collapse one or more job results into a WorkloadResult."""
    last = jobs[-1]
    total_cost = jobs[0].cost
    for job in jobs[1:]:
        total_cost.merge(job.cost)
    return WorkloadResult(
        workload=workload,
        engine=engine.name,
        output=last.output,
        records_in=records_in,
        records_out=len(last.output),
        duration_seconds=sum(job.wall_seconds for job in jobs),
        cost=total_cost,
        simulated_seconds=sum(job.simulated_seconds for job in jobs),
        extra={"jobs": [job.job_name for job in jobs]},
    )


class SortWorkload(Workload):
    """Total-order sort of text lines (single reducer, like ``sort``)."""

    name = "sort"
    domain = ApplicationDomain.MICRO
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.TEXT
    abstract_operations = tuple(operations("sort"))
    pattern = SingleOperationPattern(operations("sort")[0])

    def run_mapreduce(
        self, engine: MapReduceEngine, dataset: DataSet, **params: Any
    ) -> WorkloadResult:
        def sort_map(key: Any, value: str):
            yield value, 1

        def sort_reduce(key: str, values: list[int]):
            for _ in values:
                yield key, None

        job = MapReduceJob(
            "sort",
            sort_map,
            sort_reduce,
            conf=JobConf(num_reduce_tasks=1, sort_keys=True),
        )
        result = engine.run(job, _text_pairs(dataset))
        return _result_from_jobs(self.name, engine, [result], dataset.num_records)


class TeraSortWorkload(Workload):
    """Sampling range-partitioned sort: globally ordered multi-reducer output.

    The TeraSort trick: sample the input to pick reducer boundary keys,
    then range-partition so concatenating reducer outputs in partition
    order yields a total order — sort at scale without a single reducer.
    """

    name = "terasort"
    domain = ApplicationDomain.MICRO
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.TEXT
    abstract_operations = tuple(operations("sample", "sort"))
    pattern = MultiOperationPattern(operations("sample", "sort"))

    def run_mapreduce(
        self,
        engine: MapReduceEngine,
        dataset: DataSet,
        num_reducers: int = 4,
        sample_size: int = 64,
        **params: Any,
    ) -> WorkloadResult:
        pairs = _text_pairs(dataset)
        # Sample boundary keys (every k-th record of an evenly spaced probe).
        stride = max(1, len(pairs) // sample_size)
        sample = sorted(value for _, value in pairs[::stride])
        boundaries = [
            sample[(index + 1) * len(sample) // num_reducers]
            for index in range(num_reducers - 1)
        ] if sample else []

        def range_partitioner(key: str, num_partitions: int) -> int:
            for index, boundary in enumerate(boundaries):
                if key < boundary:
                    return index
            return num_partitions - 1

        def sort_map(key: Any, value: str):
            yield value, 1

        def sort_reduce(key: str, values: list[int]):
            for _ in values:
                yield key, None

        job = MapReduceJob(
            "terasort",
            sort_map,
            sort_reduce,
            conf=JobConf(
                num_reduce_tasks=num_reducers,
                partitioner=range_partitioner,
                sort_keys=True,
            ),
        )
        result = engine.run(job, pairs)
        return _result_from_jobs(self.name, engine, [result], dataset.num_records)


class WordCountWorkload(Workload):
    """Count word occurrences across all documents (with a combiner)."""

    name = "wordcount"
    domain = ApplicationDomain.MICRO
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.TEXT
    #: Counting is split-invariant, so the input can stream through.
    streaming_input = True
    abstract_operations = tuple(operations("transform", "aggregate"))
    pattern = MultiOperationPattern(operations("transform", "aggregate"))

    def run_mapreduce(
        self, engine: MapReduceEngine, dataset: DataSet,
        use_combiner: bool = True,
        num_map_tasks: int = 4, num_reduce_tasks: int = 2,
        **params: Any,
    ) -> WorkloadResult:
        def wc_map(key: Any, value: str):
            for word in value.split():
                yield word, 1

        def wc_reduce(key: str, values: list[int]):
            yield key, sum(values)

        job = MapReduceJob(
            "wordcount",
            wc_map,
            wc_reduce,
            combiner=wc_reduce if use_combiner else None,
            conf=JobConf(
                num_map_tasks=num_map_tasks,
                num_reduce_tasks=num_reduce_tasks,
            ),
        )
        result = engine.run(job, _text_pairs(dataset))
        return _result_from_jobs(self.name, engine, [result], dataset.num_records)


class GrepWorkload(Workload):
    """Select lines matching a regular expression (GridMix/BigDataBench grep)."""

    name = "grep"
    domain = ApplicationDomain.MICRO
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.TEXT
    #: Line matching is record-local, so the input can stream through.
    streaming_input = True
    abstract_operations = tuple(operations("grep"))
    pattern = SingleOperationPattern(operations("grep")[0])

    def run_mapreduce(
        self,
        engine: MapReduceEngine,
        dataset: DataSet,
        pattern_text: str = "data",
        **params: Any,
    ) -> WorkloadResult:
        compiled = re.compile(pattern_text)

        def grep_map(key: Any, value: str):
            if compiled.search(value):
                yield key, value

        job = MapReduceJob("grep", grep_map, conf=JobConf(num_reduce_tasks=1))
        result = engine.run(job, _text_pairs(dataset))
        return _result_from_jobs(self.name, engine, [result], dataset.num_records)
