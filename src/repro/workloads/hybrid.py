"""Truly hybrid workloads (Section 5.2).

The paper argues that "the truly hybrid workload, i.e. the workload
consist[ing] of the mix of various data processing operations and their
arriving rates and sequences, has not been adequately supported", and
that "profiling history logs of real applications is a good way to obtain
the representative arrival patterns."

This module implements both halves:

* :func:`profile_arrival_pattern` derives per-operation arrival rates and
  the operation sequence from a web-log data set;
* :class:`HybridWorkload` interleaves serving operations (reads/updates)
  with periodic analytics scans against one NoSQL store, following an
  arrival pattern — either supplied explicitly or profiled from logs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.errors import ExecutionError
from repro.core.operations import operations
from repro.core.patterns import MultiOperationPattern
from repro.datagen.base import DataSet, DataType
from repro.engines.base import CostCounters
from repro.engines.nosql.store import NoSqlStore
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


@dataclass
class ArrivalPattern:
    """Per-operation arrival rates plus the observed operation sequence."""

    #: operation name → arrivals per second.
    rates: dict[str, float]
    #: The observed operation order (used to replay realistic sequences).
    sequence: list[str] = field(default_factory=list)

    @property
    def total_rate(self) -> float:
        return sum(self.rates.values())

    def mix_probabilities(self) -> dict[str, float]:
        total = self.total_rate
        if total <= 0:
            raise ExecutionError("arrival pattern has zero total rate")
        return {name: rate / total for name, rate in self.rates.items()}


#: How HTTP verbs map onto store operations when profiling web logs.
_METHOD_TO_OPERATION = {
    "GET": "read",
    "POST": "insert",
    "PUT": "update",
    "DELETE": "delete",
}


def profile_arrival_pattern(weblog: DataSet) -> ArrivalPattern:
    """Profile operation rates and sequence from a web-log data set.

    The paper's proposal made concrete: each log line's HTTP method maps
    to a store operation; rates come from operation counts over the log's
    time span.
    """
    if weblog.data_type is not DataType.WEB_LOG:
        raise ExecutionError(
            f"profiling requires web-log data, got {weblog.data_type.label}"
        )
    if len(weblog.records) < 2:
        raise ExecutionError("need at least two log records to profile rates")
    timestamps = [record["timestamp"] for record in weblog.records]
    span = max(timestamps) - min(timestamps)
    if span <= 0:
        raise ExecutionError("log records have no time extent")
    counts: Counter[str] = Counter()
    sequence: list[str] = []
    for record in weblog.records:
        operation = _METHOD_TO_OPERATION.get(record["method"], "read")
        counts[operation] += 1
        sequence.append(operation)
    rates = {name: count / span for name, count in counts.items()}
    return ArrivalPattern(rates=rates, sequence=sequence)


class HybridWorkload(Workload):
    """Serving + analytics operations interleaved per an arrival pattern.

    Runs against a NoSQL store: ``read``/``update``/``insert``/``delete``
    are point operations; every ``analytics_every`` operations a long
    scan (the analytics component) interleaves with the serving traffic.
    Reports per-operation-class latencies so the interference between
    components is measurable — the hybrid-vs-isolated ablation (E12).
    """

    name = "hybrid"
    domain = ApplicationDomain.CLOUD_OLTP
    category = WorkloadCategory.ONLINE_SERVICE
    data_type = DataType.KEY_VALUE
    abstract_operations = tuple(
        operations("read", "update", "insert", "delete", "scan")
    )
    pattern = MultiOperationPattern(
        operations("read", "update", "insert", "delete", "scan")
    )

    def run_nosql(
        self,
        engine: NoSqlStore,
        dataset: DataSet,
        arrival_pattern: ArrivalPattern | None = None,
        operation_count: int = 1000,
        analytics_every: int = 50,
        analytics_scan_length: int = 200,
        replay_sequence: bool = False,
        seed: int = 0,
        **params: Any,
    ) -> WorkloadResult:
        if not dataset.records:
            raise ExecutionError("hybrid workload needs preloaded records")
        keys = [key for key, _ in dataset.records]
        for key, fields in dataset.records:
            engine.insert(key, fields)
        pattern = arrival_pattern or ArrivalPattern(
            rates={"read": 70.0, "update": 20.0, "insert": 5.0, "delete": 5.0}
        )
        mix = pattern.mix_probabilities()
        names = sorted(mix)
        probabilities = np.array([mix[name] for name in names])
        rng = np.random.default_rng(seed)
        if replay_sequence and not pattern.sequence:
            raise ExecutionError(
                "replay_sequence requires an arrival pattern with a "
                "profiled operation sequence"
            )

        per_class: dict[str, list[float]] = {name: [] for name in names}
        per_class["scan"] = []
        simulated = 0.0
        inserted = 0
        serving_step = 0
        for step in range(operation_count):
            if analytics_every and step and step % analytics_every == 0:
                start = keys[int(rng.integers(len(keys)))]
                latency = engine.scan(start, analytics_scan_length).latency_seconds
                per_class["scan"].append(latency)
                simulated += latency
                continue
            if replay_sequence:
                # §5.2: replay the *sequence* of operations as profiled,
                # not just their rates (cycled past the log's end).
                name = pattern.sequence[serving_step % len(pattern.sequence)]
                serving_step += 1
                per_class.setdefault(name, [])
            else:
                name = names[int(rng.choice(len(names), p=probabilities))]
            if name == "read":
                latency = engine.read(keys[int(rng.integers(len(keys)))]).latency_seconds
            elif name == "update":
                latency = engine.update(
                    keys[int(rng.integers(len(keys)))], {"field0": "hybrid" * 16}
                ).latency_seconds
            elif name == "insert":
                new_key = f"hybrid{inserted:012d}"
                inserted += 1
                latency = engine.insert(new_key, {"field0": "new" * 33}).latency_seconds
            elif name == "delete":
                latency = engine.delete(keys[int(rng.integers(len(keys)))]).latency_seconds
            else:
                latency = engine.read(keys[int(rng.integers(len(keys)))]).latency_seconds
            per_class[name].append(latency)
            simulated += latency

        all_latencies = [
            latency for samples in per_class.values() for latency in samples
        ]
        mean_by_class = {
            name: (sum(samples) / len(samples) if samples else 0.0)
            for name, samples in per_class.items()
        }
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output={"mean_latency_by_class": mean_by_class},
            records_in=dataset.num_records,
            records_out=operation_count,
            duration_seconds=0.0,
            cost=CostCounters().merge(engine.counters),
            latencies=all_latencies,
            simulated_seconds=simulated,
            extra={
                "per_class_counts": {
                    name: len(samples) for name, samples in per_class.items()
                },
                "mix": mix,
            },
        )
