"""Large-scale learning workload: data-parallel MLP training (§5.2 gap).

"… applications such as large-scale deep learning algorithms [are] not
being considered."  This workload trains a small multi-layer perceptron
(one tanh hidden layer + softmax, from scratch in numpy) with
**data-parallel synchronous SGD on the MapReduce substrate**: each epoch
is one job whose map tasks compute gradients over their input split and
whose reducer averages them — the parameter-averaging scheme
MapReduce-era distributed learning actually used.  The pattern is the
paper's iterative-operation pattern: the epoch count depends on a
runtime loss-improvement condition.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.errors import ExecutionError
from repro.core.operations import operations
from repro.core.patterns import ConvergenceCondition, IterativeOperationPattern
from repro.datagen.base import DataSet, DataType
from repro.engines.base import CostCounters
from repro.engines.mapreduce import JobConf, MapReduceEngine, MapReduceJob
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


class _Mlp:
    """A tiny two-layer MLP with explicit forward/backward passes."""

    def __init__(self, inputs: int, hidden: int, classes: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        scale_one = 1.0 / np.sqrt(inputs)
        scale_two = 1.0 / np.sqrt(hidden)
        self.w1 = rng.normal(0.0, scale_one, (inputs, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0.0, scale_two, (hidden, classes))
        self.b2 = np.zeros(classes)

    def parameters(self) -> tuple[np.ndarray, ...]:
        return (self.w1, self.b1, self.w2, self.b2)

    def set_parameters(self, parameters: tuple[np.ndarray, ...]) -> None:
        self.w1, self.b1, self.w2, self.b2 = parameters

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hidden = np.tanh(x @ self.w1 + self.b1)
        logits = hidden @ self.w2 + self.b2
        logits = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        probabilities = exp / exp.sum(axis=1, keepdims=True)
        return hidden, probabilities

    def loss_and_gradients(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, tuple[np.ndarray, ...]]:
        hidden, probabilities = self.forward(x)
        count = len(x)
        loss = float(
            -np.log(probabilities[np.arange(count), y] + 1e-12).mean()
        )
        delta_out = probabilities
        delta_out[np.arange(count), y] -= 1.0
        delta_out /= count
        grad_w2 = hidden.T @ delta_out
        grad_b2 = delta_out.sum(axis=0)
        delta_hidden = (delta_out @ self.w2.T) * (1.0 - hidden**2)
        grad_w1 = x.T @ delta_hidden
        grad_b1 = delta_hidden.sum(axis=0)
        return loss, (grad_w1, grad_b1, grad_w2, grad_b2)

    def predict(self, x: np.ndarray) -> np.ndarray:
        _, probabilities = self.forward(x)
        return probabilities.argmax(axis=1)


class MlpClassificationWorkload(Workload):
    """Synchronous data-parallel MLP training as iterative MapReduce."""

    name = "mlp-classification"
    domain = ApplicationDomain.DEEP_LEARNING
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.TABLE
    abstract_operations = tuple(operations("transform", "classify"))
    pattern = IterativeOperationPattern(
        operations("transform", "classify"),
        ConvergenceCondition(tolerance=1e-3, max_iterations=60),
    )

    def run_mapreduce(
        self,
        engine: MapReduceEngine,
        dataset: DataSet,
        hidden_units: int = 16,
        learning_rate: float = 0.5,
        max_epochs: int = 40,
        min_loss_improvement: float = 1e-3,
        train_fraction: float = 0.7,
        seed: int = 0,
        **params: Any,
    ) -> WorkloadResult:
        features, labels = self._extract(dataset)
        if len(features) < 10:
            raise ExecutionError("need at least 10 rows to train an MLP")
        split = max(1, int(len(features) * train_fraction))
        train_x, test_x = features[:split], features[split:]
        train_y, test_y = labels[:split], labels[split:]
        if len(test_x) == 0:
            raise ExecutionError("not enough rows to hold out a test set")
        classes = int(labels.max()) + 1

        # Standardise features on training statistics.
        mean = train_x.mean(axis=0)
        std = train_x.std(axis=0)
        std[std == 0] = 1.0
        train_x = (train_x - mean) / std
        test_x = (test_x - mean) / std

        model = _Mlp(train_x.shape[1], hidden_units, classes, seed)
        total_cost = CostCounters()
        simulated = wall = 0.0
        previous_loss = float("inf")
        epochs = 0
        losses: list[float] = []

        while epochs < max_epochs:
            parameters = model.parameters()

            def gradient_map(split_id: int, indexes: np.ndarray):
                shard_model = _Mlp(
                    train_x.shape[1], hidden_units, classes, seed
                )
                shard_model.set_parameters(parameters)
                loss, gradients = shard_model.loss_and_gradients(
                    train_x[indexes], train_y[indexes]
                )
                yield "update", (len(indexes), loss, gradients)

            def average_reduce(key: str, shards: list[tuple]):
                total = sum(count for count, _, _ in shards)
                loss = sum(count * loss for count, loss, _ in shards) / total
                averaged = tuple(
                    sum((count / total) * grads[i] for count, _, grads in shards)
                    for i in range(4)
                )
                yield key, (loss, averaged)

            splits = np.array_split(np.arange(len(train_x)), 4)
            job = MapReduceJob(
                f"mlp-epoch-{epochs}", gradient_map, average_reduce,
                conf=JobConf(num_map_tasks=4, num_reduce_tasks=1,
                             sort_keys=False),
            )
            result = engine.run(job, list(enumerate(splits)))
            (_, (loss, gradients)), = result.output
            model.set_parameters(tuple(
                parameter - learning_rate * gradient
                for parameter, gradient in zip(model.parameters(), gradients)
            ))
            total_cost.merge(result.cost)
            simulated += result.simulated_seconds
            wall += result.wall_seconds
            losses.append(loss)
            epochs += 1
            if previous_loss - loss < min_loss_improvement and epochs >= 5:
                break
            previous_loss = loss

        predictions = model.predict(test_x)
        accuracy = float((predictions == test_y).mean())
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output={"accuracy": accuracy, "loss_curve": losses},
            records_in=dataset.num_records,
            records_out=len(test_x),
            duration_seconds=wall,
            cost=total_cost,
            simulated_seconds=simulated,
            extra={"accuracy": accuracy, "epochs": epochs,
                   "final_loss": losses[-1]},
        )

    @staticmethod
    def _extract(dataset: DataSet) -> tuple[np.ndarray, np.ndarray]:
        """Features + integer labels from a labelled table.

        Expects the mixture-table convention: numeric feature columns
        with the true class in the last column.
        """
        schema = dataset.metadata.get("schema", ())
        if not schema or schema[-1] != "true_component":
            raise ExecutionError(
                "MLP workload expects a labelled feature table "
                "(mixture-table schema with a true_component column)"
            )
        rows = np.asarray(dataset.records, dtype=np.float64)
        return rows[:, :-1], rows[:, -1].astype(np.int64)
