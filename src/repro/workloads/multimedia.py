"""Multimedia workload: image classification (Section 5.2 gap).

"There are still many important big data systems such as multimedia
systems … not being considered."  This workload is the multimedia
representative: feature extraction over an image set as a map phase,
per-class centroid training as a reduce, and nearest-centroid
classification of a held-out half — the classic bag-of-features
multimedia analytics pipeline on the MapReduce substrate.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.errors import ExecutionError
from repro.core.operations import operations
from repro.core.patterns import MultiOperationPattern
from repro.datagen.base import DataSet, DataType
from repro.datagen.media import image_features
from repro.engines.mapreduce import JobConf, MapReduceEngine, MapReduceJob
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


class ImageClassificationWorkload(Workload):
    """Feature extraction + nearest-centroid image classification."""

    name = "image-classification"
    domain = ApplicationDomain.MULTIMEDIA
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.IMAGE
    abstract_operations = tuple(operations("transform", "classify"))
    pattern = MultiOperationPattern(operations("transform", "classify"))

    def run_mapreduce(
        self,
        engine: MapReduceEngine,
        dataset: DataSet,
        train_fraction: float = 0.5,
        **params: Any,
    ) -> WorkloadResult:
        if not 0.0 < train_fraction < 1.0:
            raise ExecutionError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        records = dataset.records
        split = max(1, int(len(records) * train_fraction))
        training, testing = records[:split], records[split:]
        if not testing:
            raise ExecutionError("not enough images to hold out a test set")

        # Job 1: extract features and accumulate per-class centroids.
        def feature_map(image_id: int, record: tuple):
            image, label = record
            yield label, image_features(image)

        def centroid_reduce(label: int, features: list[np.ndarray]):
            yield label, np.mean(features, axis=0)

        train_job = MapReduceJob(
            "image-train", feature_map, centroid_reduce,
            conf=JobConf(sort_keys=False),
        )
        trained = engine.run(train_job, list(enumerate(training)))
        centroids = dict(trained.output)
        if not centroids:
            raise ExecutionError("training produced no class centroids")

        # Job 2: classify held-out images by nearest centroid (map only).
        def classify_map(image_id: int, record: tuple):
            image, truth = record
            features = image_features(image)
            best = min(
                centroids,
                key=lambda label: float(
                    np.linalg.norm(features - centroids[label])
                ),
            )
            yield image_id, (best, truth)

        test_job = MapReduceJob(
            "image-classify", classify_map, conf=JobConf(sort_keys=False)
        )
        tested = engine.run(test_job, list(enumerate(testing)))
        correct = sum(
            1 for _, (predicted, truth) in tested.output if predicted == truth
        )
        accuracy = correct / len(tested.output)

        total_cost = trained.cost.merge(tested.cost)
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output={"accuracy": accuracy, "classes": sorted(centroids)},
            records_in=dataset.num_records,
            records_out=len(tested.output),
            duration_seconds=trained.wall_seconds + tested.wall_seconds,
            cost=total_cost,
            simulated_seconds=trained.simulated_seconds
            + tested.simulated_seconds,
            extra={"accuracy": accuracy},
        )
