"""Cloud-OLTP workloads: the YCSB operation mixes on NoSQL and DBMS.

YCSB (reference [9] of the paper) compared NoSQL stores against a
relational database with the same serving workloads; this module keeps
that shape: the identical operation mix runs against
:class:`~repro.engines.nosql.store.NoSqlStore` (simulated service-time
latencies) and against :class:`~repro.engines.dbms.engine.DbmsEngine`
(measured execution latencies).
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.errors import ExecutionError
from repro.core.operations import operations
from repro.core.patterns import MultiOperationPattern
from repro.datagen.base import DataSet, DataType
from repro.engines.base import CostCounters
from repro.engines.dbms import DbmsEngine, col, lit
from repro.engines.nosql import (
    STANDARD_WORKLOADS,
    OpType,
    RequestDistribution,
    YcsbWorkloadSpec,
)
from repro.engines.nosql.store import NoSqlStore
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


def _spec_for(workload_mix: str | YcsbWorkloadSpec) -> YcsbWorkloadSpec:
    if isinstance(workload_mix, YcsbWorkloadSpec):
        return workload_mix
    factory = STANDARD_WORKLOADS.get(workload_mix.upper())
    if factory is None:
        raise ExecutionError(
            f"unknown YCSB workload {workload_mix!r}; "
            f"available: {sorted(STANDARD_WORKLOADS)}"
        )
    return factory()


class _MixSampler:
    """Draws the operation sequence and request keys for a YCSB run."""

    def __init__(
        self, spec: YcsbWorkloadSpec, record_count: int, seed: int
    ) -> None:
        self.spec = spec
        self.record_count = record_count
        self.rng = np.random.default_rng(seed)
        mix = spec.operation_mix()
        self._op_types = [op for op, _ in mix]
        weights = np.array([weight for _, weight in mix])
        self._probabilities = weights / weights.sum()

    def next_op(self) -> OpType:
        index = int(self.rng.choice(len(self._op_types), p=self._probabilities))
        return self._op_types[index]

    def next_key_index(self) -> int:
        if self.spec.request_distribution is RequestDistribution.UNIFORM:
            return int(self.rng.integers(0, self.record_count))
        rank = int(self.rng.zipf(1.35)) - 1
        if self.spec.request_distribution is RequestDistribution.LATEST:
            return (self.record_count - 1 - rank) % self.record_count
        return rank % self.record_count

    def scan_length(self) -> int:
        return int(self.rng.integers(1, self.spec.max_scan_length + 1))


class YcsbWorkload(Workload):
    """The YCSB operation mixes (A–F) over preloaded key-value records."""

    name = "ycsb"
    domain = ApplicationDomain.CLOUD_OLTP
    category = WorkloadCategory.ONLINE_SERVICE
    data_type = DataType.KEY_VALUE
    abstract_operations = tuple(operations("read", "write", "scan", "update"))
    pattern = MultiOperationPattern(operations("read", "write", "scan", "update"))

    # ------------------------------------------------------------------

    def run_nosql(
        self,
        engine: NoSqlStore,
        dataset: DataSet,
        workload_mix: str | YcsbWorkloadSpec = "A",
        operation_count: int = 1000,
        seed: int = 0,
        **params: Any,
    ) -> WorkloadResult:
        spec = _spec_for(workload_mix)
        keys = [key for key, _ in dataset.records]
        for key, fields in dataset.records:
            engine.insert(key, fields)
        sampler = _MixSampler(spec, len(keys), seed)
        latencies: list[float] = []
        simulated = 0.0
        inserted = 0
        for _ in range(operation_count):
            op_type = sampler.next_op()
            if op_type is OpType.READ:
                latency = engine.read(keys[sampler.next_key_index()]).latency_seconds
            elif op_type is OpType.UPDATE:
                latency = engine.update(
                    keys[sampler.next_key_index()], {"field0": "updated" * 14}
                ).latency_seconds
            elif op_type is OpType.INSERT:
                new_key = f"insert{inserted:012d}"
                inserted += 1
                latency = engine.insert(
                    new_key, {"field0": "inserted" * 12}
                ).latency_seconds
            elif op_type is OpType.SCAN:
                latency = engine.scan(
                    keys[sampler.next_key_index()], sampler.scan_length()
                ).latency_seconds
            else:  # READ_MODIFY_WRITE
                key = keys[sampler.next_key_index()]
                latency = engine.read(key).latency_seconds
                latency += engine.update(
                    key, {"field0": "rmw" * 33}
                ).latency_seconds
            latencies.append(latency)
            simulated += latency
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output={"operations": operation_count, "mix": spec.name},
            records_in=dataset.num_records,
            records_out=operation_count,
            duration_seconds=0.0,  # filled by the dispatcher
            cost=CostCounters().merge(engine.counters),
            latencies=latencies,
            simulated_seconds=simulated,
            extra={"mix": spec.name},
        )

    # ------------------------------------------------------------------

    def run_dbms(
        self,
        engine: DbmsEngine,
        dataset: DataSet,
        workload_mix: str | YcsbWorkloadSpec = "A",
        operation_count: int = 1000,
        seed: int = 0,
        **params: Any,
    ) -> WorkloadResult:
        spec = _spec_for(workload_mix)
        if not dataset.records:
            raise ExecutionError("YCSB requires a non-empty record set")
        field_names = sorted(dataset.records[0][1])
        schema = ("key",) + tuple(field_names)
        if not engine.catalog.has_table("usertable"):
            engine.create_table("usertable", schema)
            engine.insert(
                "usertable",
                [
                    (key,) + tuple(fields[name] for name in field_names)
                    for key, fields in dataset.records
                ],
            )
            engine.create_index("usertable", "key")
        keys = [key for key, _ in dataset.records]
        sampler = _MixSampler(spec, len(keys), seed)
        latencies: list[float] = []
        inserted = 0
        for _ in range(operation_count):
            op_type = sampler.next_op()
            started = time.perf_counter()
            if op_type is OpType.READ:
                engine.execute(
                    engine.query("usertable").where(
                        col("key") == lit(keys[sampler.next_key_index()])
                    )
                )
            elif op_type is OpType.UPDATE:
                engine.update(
                    "usertable",
                    col("key") == lit(keys[sampler.next_key_index()]),
                    {field_names[0]: "updated" * 14},
                )
            elif op_type is OpType.INSERT:
                row = (f"insert{inserted:012d}",) + tuple(
                    "inserted" for _ in field_names
                )
                inserted += 1
                engine.insert("usertable", [row])
            elif op_type is OpType.SCAN:
                start_key = keys[sampler.next_key_index()]
                engine.execute(
                    engine.query("usertable")
                    .where(col("key") >= lit(start_key))
                    .order_by("key")
                    .limit(sampler.scan_length())
                )
            else:  # READ_MODIFY_WRITE
                key = keys[sampler.next_key_index()]
                engine.execute(
                    engine.query("usertable").where(col("key") == lit(key))
                )
                engine.update(
                    "usertable",
                    col("key") == lit(key),
                    {field_names[0]: "rmw" * 33},
                )
            latencies.append(time.perf_counter() - started)
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output={"operations": operation_count, "mix": spec.name},
            records_in=dataset.num_records,
            records_out=operation_count,
            duration_seconds=sum(latencies),
            cost=CostCounters().merge(engine.counters),
            latencies=latencies,
            extra={"mix": spec.name},
        )
