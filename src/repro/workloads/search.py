"""Search-engine domain workloads: inverted-index build and PageRank.

BigDataBench's search-engine domain (Table 2): "index" and "PageRank".
The inverted index is the Nutch-indexing analogue; PageRank runs as an
iterative MapReduce job chain, exercising the paper's
*iterative-operation pattern* (the number of jobs is only known at run
time, when the ranks converge).
"""

from __future__ import annotations

from typing import Any

from repro.core.operations import operations
from repro.core.patterns import (
    ConvergenceCondition,
    IterativeOperationPattern,
    SingleOperationPattern,
)
from repro.datagen.base import DataSet, DataType
from repro.datagen.text import tokenize
from repro.engines.base import CostCounters
from repro.engines.mapreduce import JobConf, MapReduceEngine, MapReduceJob
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


class InvertedIndexWorkload(Workload):
    """Build term → postings-list mappings from a document corpus."""

    name = "inverted-index"
    domain = ApplicationDomain.SEARCH_ENGINE
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.TEXT
    abstract_operations = tuple(operations("index"))
    pattern = SingleOperationPattern(operations("index")[0])

    def run_mapreduce(
        self, engine: MapReduceEngine, dataset: DataSet, **params: Any
    ) -> WorkloadResult:
        def index_map(doc_id: int, text: str):
            seen: dict[str, int] = {}
            for token in tokenize(text):
                seen[token] = seen.get(token, 0) + 1
            for token, frequency in seen.items():
                yield token, (doc_id, frequency)

        def index_reduce(token: str, postings: list[tuple[int, int]]):
            yield token, sorted(postings)

        job = MapReduceJob("inverted-index", index_map, index_reduce)
        result = engine.run(job, list(enumerate(dataset.records)))
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=dict(result.output),
            records_in=dataset.num_records,
            records_out=len(result.output),
            duration_seconds=result.wall_seconds,
            cost=result.cost,
            simulated_seconds=result.simulated_seconds,
        )


class PageRankWorkload(Workload):
    """Iterative PageRank over a graph (power iteration as MR job chain).

    Each iteration is one MapReduce job: mappers distribute rank mass
    along out-edges, reducers apply the damping formula.  Iteration stops
    when the L1 change in ranks falls under ``tolerance`` — the paper's
    iterative-operation pattern with a runtime stopping condition.
    """

    name = "pagerank"
    domain = ApplicationDomain.SEARCH_ENGINE
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.GRAPH
    abstract_operations = tuple(operations("rank"))
    pattern = IterativeOperationPattern(
        operations("rank"), ConvergenceCondition(tolerance=1e-4, max_iterations=30)
    )

    def run_mapreduce(
        self,
        engine: MapReduceEngine,
        dataset: DataSet,
        damping: float = 0.85,
        tolerance: float = 1e-4,
        max_iterations: int = 30,
        **params: Any,
    ) -> WorkloadResult:
        # Build adjacency once (the "graph building" job in real stacks).
        adjacency: dict[int, list[int]] = {}
        vertices: set[int] = set()
        for src, dst in dataset.records:
            adjacency.setdefault(src, []).append(dst)
            vertices.add(src)
            vertices.add(dst)
        if not vertices:
            return WorkloadResult(
                workload=self.name, engine=engine.name, output={},
                records_in=0, records_out=0, duration_seconds=0.0,
            )
        count = len(vertices)
        ranks = {vertex: 1.0 / count for vertex in vertices}
        total_cost = CostCounters()
        simulated = 0.0
        wall = 0.0
        iterations = 0
        delta = float("inf")

        while iterations < max_iterations and delta > tolerance:
            current = dict(ranks)
            # Mass on vertices without out-edges would otherwise leak;
            # redistribute it uniformly (the standard dangling-node fix).
            dangling = sum(
                rank for vertex, rank in current.items()
                if not adjacency.get(vertex)
            )
            dangling_share = dangling / count

            def rank_map(vertex: int, rank: float):
                # Keep the vertex alive even without in-edges.
                yield vertex, ("keep", 0.0)
                targets = adjacency.get(vertex, ())
                if targets:
                    share = rank / len(targets)
                    for target in targets:
                        yield target, ("mass", share)

            def rank_reduce(vertex: int, contributions: list[tuple[str, float]]):
                mass = sum(
                    value for kind, value in contributions if kind == "mass"
                )
                yield vertex, (
                    (1.0 - damping) / count
                    + damping * (mass + dangling_share)
                )

            job = MapReduceJob(
                f"pagerank-iter-{iterations}",
                rank_map,
                rank_reduce,
                conf=JobConf(sort_keys=False),
            )
            result = engine.run(job, list(current.items()))
            new_ranks = dict(result.output)
            # Vertices with no in-edges still appear via the keep marker.
            delta = sum(
                abs(new_ranks.get(vertex, 0.0) - current[vertex])
                for vertex in vertices
            )
            ranks = new_ranks
            total_cost.merge(result.cost)
            simulated += result.simulated_seconds
            wall += result.wall_seconds
            iterations += 1

        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=ranks,
            records_in=len(dataset.records),
            records_out=len(ranks),
            duration_seconds=wall,
            cost=total_cost,
            simulated_seconds=simulated,
            extra={"iterations": iterations, "final_delta": delta},
        )
