"""Workload base classes.

A workload is the bridge between the paper's two views (Section 2.2):

* **functional view** — each workload declares its abstract operations
  and workload pattern, independent of any system;
* **system view** — each workload provides one implementation per
  supported engine, so the same abstract behaviour can be executed on a
  DBMS, a MapReduce runtime, a NoSQL store, or a stream processor.

Implementations are methods named ``run_<engine-name>``; the dispatcher
:meth:`Workload.run` routes by the engine's registered name, times the
run, and assembles a :class:`WorkloadResult` with uniform evidence.
"""

from __future__ import annotations

import enum
import time
from abc import ABC
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ExecutionError
from repro.core.metrics import RunEvidence
from repro.core.operations import AbstractOperation
from repro.core.patterns import WorkloadPattern
from repro.datagen.base import DataSet, DataType
from repro.datagen.source import DatasetSource, ensure_dataset
from repro.engines.base import CostCounters, Engine
from repro.observability import trace_span


class WorkloadCategory(enum.Enum):
    """The three user-view categories of Table 2."""

    ONLINE_SERVICE = "online services"
    OFFLINE_ANALYTICS = "offline analytics"
    REALTIME_ANALYTICS = "real-time analytics"


class ApplicationDomain(enum.Enum):
    """Application domains used throughout the paper."""

    MICRO = "micro benchmarks"
    SEARCH_ENGINE = "search engine"
    SOCIAL_NETWORK = "social network"
    E_COMMERCE = "e-commerce"
    BASIC_DATABASE = "basic database operations"
    CLOUD_OLTP = "cloud OLTP"
    STREAMING = "streaming"
    MULTIMEDIA = "multimedia"
    DEEP_LEARNING = "large-scale learning"


@dataclass
class WorkloadResult:
    """Uniform outcome of one workload execution on one engine."""

    workload: str
    engine: str
    output: Any
    records_in: int
    records_out: int
    duration_seconds: float
    cost: CostCounters = field(default_factory=CostCounters)
    latencies: list[float] = field(default_factory=list)
    simulated_seconds: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def evidence(self) -> RunEvidence:
        """Package the result for metric computation."""
        return RunEvidence(
            duration_seconds=self.duration_seconds,
            records_in=self.records_in,
            records_out=self.records_out,
            cost=self.cost,
            latencies=self.latencies,
            simulated_seconds=self.simulated_seconds,
        )


class Workload(ABC):
    """Base class of every concrete workload."""

    #: Registry name, e.g. "wordcount".
    name: str = "workload"
    domain: ApplicationDomain = ApplicationDomain.MICRO
    category: WorkloadCategory = WorkloadCategory.OFFLINE_ANALYTICS
    #: The data type this workload consumes.
    data_type: DataType = DataType.TEXT
    #: Whether implementations consume their input incrementally.  When
    #: True, a streaming :class:`~repro.datagen.source.DatasetSource` is
    #: handed to ``run_*`` untouched (bounded memory end to end); when
    #: False, the dispatcher materializes sources first, so workloads
    #: needing random access keep working with plain record lists.
    streaming_input: bool = False
    #: Abstract operations (functional view).
    abstract_operations: tuple[AbstractOperation, ...] = ()
    #: The workload pattern combining those operations.
    pattern: WorkloadPattern | None = None

    def supported_engines(self) -> tuple[str, ...]:
        """Engine names this workload implements (from run_* methods)."""
        prefix = "run_"
        return tuple(
            sorted(
                attribute[len(prefix):]
                for attribute in dir(self)
                if attribute.startswith(prefix)
                and callable(getattr(self, attribute))
            )
        )

    def supports(self, engine_name: str) -> bool:
        return engine_name in self.supported_engines()

    def run(
        self,
        engine: Engine,
        dataset: DataSet | DatasetSource,
        **params: Any,
    ) -> WorkloadResult:
        """Execute this workload on the given engine and data set.

        ``dataset`` may be a materialized :class:`DataSet` or any
        :class:`~repro.datagen.source.DatasetSource`.  Generation is
        deterministic, so either shape produces identical results; a
        streaming source additionally keeps peak memory bounded when the
        workload declares ``streaming_input``.
        """
        if dataset.data_type is not self.data_type:
            raise ExecutionError(
                f"workload {self.name!r} expects {self.data_type.label} data, "
                f"got {dataset.data_type.label}"
            )
        implementation = getattr(self, f"run_{engine.name}", None)
        if implementation is None:
            raise ExecutionError(
                f"workload {self.name!r} does not support engine "
                f"{engine.name!r}; supported: {self.supported_engines()}"
            )
        if not self.streaming_input and not isinstance(dataset, DataSet):
            # The implementation needs random access; pay for the full
            # list once, here, instead of surprising it with a stream.
            dataset = ensure_dataset(dataset)
        # Engines with an execution-layout notion (the DBMS) expose it;
        # everything else runs implicitly row-at-a-time.
        layout = getattr(engine, "execution_layout", None)
        with trace_span(
            "workload",
            workload=self.name,
            engine=engine.name,
            **({"layout": layout} if layout else {}),
        ) as span:
            # Fault-injection seam: an engine that defines ``inject_fault``
            # (see repro.engines.faults.FaultyEngine) may raise or stall
            # here, modeling a system that is unavailable or slow before
            # useful work starts.  The timer starts first — a stall is
            # part of the duration a client of the slow system would
            # measure, which is what the regression gate watches.  Bare
            # engines pay one getattr.
            started = time.perf_counter()
            inject = getattr(engine, "inject_fault", None)
            stalled = 0.0
            if inject is not None:
                stalled = inject(f"workload {self.name!r}") or 0.0
            result = implementation(engine, dataset, **params)
            if result.duration_seconds == 0.0:
                result.duration_seconds = time.perf_counter() - started
            elif stalled:
                # Self-timed implementations sum engine-side wall time
                # only; the stall still happened on the client's clock.
                result.duration_seconds += stalled
            if span:
                # The engine's uniform cost accounting, attached to the
                # enclosing span (Section 3.1 architecture metrics).
                for key, value in result.cost.snapshot().items():
                    span.incr(f"cost.{key}", value)
        if layout is not None:
            result.extra.setdefault("layout", layout)
        return result

    def describe(self) -> dict[str, Any]:
        """Static description (feeds Table 2 and the prescriptions)."""
        return {
            "name": self.name,
            "domain": self.domain.value,
            "category": self.category.value,
            "data_type": self.data_type.label,
            "operations": [op.name for op in self.abstract_operations],
            "pattern": self.pattern.pattern_name if self.pattern else None,
            "engines": list(self.supported_engines()),
        }
