"""E-commerce domain workloads: collaborative filtering and naive Bayes.

BigDataBench's e-commerce domain (Table 2): item-based collaborative
filtering over purchase history and naive Bayes text classification, both
implemented as MapReduce pipelines.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Any

from repro.core.errors import ExecutionError
from repro.core.operations import operations
from repro.core.patterns import MultiOperationPattern, SingleOperationPattern
from repro.datagen.base import DataSet, DataType
from repro.datagen.corpus import TOPIC_VOCABULARIES
from repro.datagen.text import tokenize
from repro.engines.mapreduce import JobConf, MapReduceEngine, MapReduceJob
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


def _column_positions(dataset: DataSet, *suffixes: str) -> list[int]:
    """Positions of the columns whose names end with each suffix."""
    schema = dataset.metadata.get("schema")
    if schema is None:
        raise ExecutionError(
            f"data set {dataset.name!r} has no schema metadata"
        )
    positions = []
    for suffix in suffixes:
        matches = [i for i, name in enumerate(schema) if name.endswith(suffix)]
        if not matches:
            raise ExecutionError(
                f"data set {dataset.name!r} has no column ending in {suffix!r}"
            )
        positions.append(matches[0])
    return positions


class CollaborativeFilteringWorkload(Workload):
    """Item-based CF: recommend items that co-occur in purchase baskets.

    Two chained MapReduce jobs — (1) group purchases per customer,
    (2) count item co-occurrences — followed by a top-N selection per
    item.  This is the CF representative in BigDataBench's e-commerce
    domain.
    """

    name = "collaborative-filtering"
    domain = ApplicationDomain.E_COMMERCE
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.TABLE
    abstract_operations = tuple(operations("recommend"))
    pattern = SingleOperationPattern(operations("recommend")[0])

    def run_mapreduce(
        self,
        engine: MapReduceEngine,
        dataset: DataSet,
        top_n: int = 5,
        **params: Any,
    ) -> WorkloadResult:
        customer_position, product_position = _column_positions(
            dataset, "customer_id", "product_id"
        )

        def basket_map(row_id: int, row: tuple):
            yield row[customer_position], row[product_position]

        def basket_reduce(customer: Any, products: list[Any]):
            yield customer, sorted(set(products))

        basket_job = MapReduceJob(
            "cf-baskets", basket_map, basket_reduce, conf=JobConf(sort_keys=False)
        )
        baskets = engine.run(basket_job, list(enumerate(dataset.records)))

        def cooccur_map(customer: Any, products: list[Any]):
            for index, left in enumerate(products):
                for right in products[index + 1 :]:
                    yield (left, right), 1
                    yield (right, left), 1

        def cooccur_reduce(pair: tuple, counts: list[int]):
            yield pair, sum(counts)

        cooccur_job = MapReduceJob(
            "cf-cooccurrence",
            cooccur_map,
            cooccur_reduce,
            combiner=cooccur_reduce,
            conf=JobConf(sort_keys=False),
        )
        cooccurrence = engine.run(cooccur_job, baskets.output)

        neighbours: dict[Any, list[tuple[int, Any]]] = defaultdict(list)
        for (left, right), count in cooccurrence.output:
            neighbours[left].append((count, right))
        recommendations = {
            item: [
                other
                for _, other in sorted(pairs, key=lambda p: (-p[0], str(p[1])))[:top_n]
            ]
            for item, pairs in neighbours.items()
        }

        total_cost = baskets.cost.merge(cooccurrence.cost)
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=recommendations,
            records_in=dataset.num_records,
            records_out=len(recommendations),
            duration_seconds=baskets.wall_seconds + cooccurrence.wall_seconds,
            cost=total_cost,
            simulated_seconds=baskets.simulated_seconds
            + cooccurrence.simulated_seconds,
            extra={"pairs_counted": len(cooccurrence.output)},
        )


def label_document(text: str) -> str:
    """Topic label of a document from vocabulary overlap.

    Documents are labelled with the embedded topic whose vocabulary they
    overlap most — the ground-truth oracle for naive Bayes evaluation on
    generated corpora (DESIGN.md §2 substitution for labelled data).
    """
    tokens = Counter(tokenize(text))
    best_topic = ""
    best_overlap = -1
    for topic in sorted(TOPIC_VOCABULARIES):
        overlap = sum(tokens[word] for word in TOPIC_VOCABULARIES[topic])
        if overlap > best_overlap:
            best_topic = topic
            best_overlap = overlap
    return best_topic


class NaiveBayesWorkload(Workload):
    """Multinomial naive Bayes text classification (train + evaluate).

    Training word/label counts run as a MapReduce job; classification of
    the held-out half runs as a map-only job against the trained model.
    Reports accuracy alongside the usual performance evidence.
    """

    name = "naive-bayes"
    domain = ApplicationDomain.E_COMMERCE
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.TEXT
    abstract_operations = tuple(operations("transform", "classify"))
    pattern = MultiOperationPattern(operations("transform", "classify"))

    def run_mapreduce(
        self,
        engine: MapReduceEngine,
        dataset: DataSet,
        train_fraction: float = 0.5,
        smoothing: float = 1.0,
        **params: Any,
    ) -> WorkloadResult:
        if not 0.0 < train_fraction < 1.0:
            raise ExecutionError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        documents = [(text, label_document(text)) for text in dataset.records]
        split = max(1, int(len(documents) * train_fraction))
        training, testing = documents[:split], documents[split:]
        if not testing:
            raise ExecutionError("not enough documents to hold out a test set")

        def count_map(doc_id: int, item: tuple[str, str]):
            text, label = item
            yield ("__label__", label), 1
            for token in tokenize(text):
                yield (label, token), 1

        def count_reduce(key: tuple, counts: list[int]):
            yield key, sum(counts)

        train_job = MapReduceJob(
            "nb-train", count_map, count_reduce, combiner=count_reduce,
            conf=JobConf(sort_keys=False),
        )
        trained = engine.run(train_job, list(enumerate(training)))

        label_counts: Counter[str] = Counter()
        word_counts: dict[str, Counter[str]] = defaultdict(Counter)
        vocabulary: set[str] = set()
        for (label, token), count in trained.output:
            if label == "__label__":
                label_counts[token] += count
            else:
                word_counts[label][token] += count
                vocabulary.add(token)
        total_docs = sum(label_counts.values())
        label_totals = {
            label: sum(counts.values()) for label, counts in word_counts.items()
        }

        def classify(text: str) -> str:
            tokens = tokenize(text)
            best_label, best_score = "", -math.inf
            for label in sorted(label_counts):
                prior = math.log(label_counts[label] / total_docs)
                denominator = label_totals.get(label, 0) + smoothing * len(vocabulary)
                score = prior
                for token in tokens:
                    numerator = word_counts[label][token] + smoothing
                    score += math.log(numerator / denominator)
                if score > best_score:
                    best_label, best_score = label, score
            return best_label

        def classify_map(doc_id: int, item: tuple[str, str]):
            text, truth = item
            yield doc_id, (classify(text), truth)

        test_job = MapReduceJob(
            "nb-classify", classify_map, conf=JobConf(sort_keys=False)
        )
        tested = engine.run(test_job, list(enumerate(testing)))
        correct = sum(
            1 for _, (predicted, truth) in tested.output if predicted == truth
        )
        accuracy = correct / len(tested.output)

        total_cost = trained.cost.merge(tested.cost)
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output={"accuracy": accuracy, "labels": sorted(label_counts)},
            records_in=dataset.num_records,
            records_out=len(tested.output),
            duration_seconds=trained.wall_seconds + tested.wall_seconds,
            cost=total_cost,
            simulated_seconds=trained.simulated_seconds + tested.simulated_seconds,
            extra={"accuracy": accuracy, "vocabulary": len(vocabulary)},
        )
