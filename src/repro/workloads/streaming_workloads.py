"""Real-time analytics workloads on the streaming engine.

The paper's real-time analytics category (Table 2): interactive
aggregation over continuously arriving data.  Both workloads report the
queueing evidence (does processing keep up with the arrival speed?) that
the velocity discussion of Section 2.1 demands.
"""

from __future__ import annotations

from typing import Any

from repro.core.operations import operations
from repro.core.patterns import MultiOperationPattern
from repro.datagen.base import DataSet, DataType
from repro.datagen.stream import EventKind
from repro.engines.base import CostCounters
from repro.engines.streaming import (
    FilterOperator,
    SlidingWindowAggregate,
    StreamingEngine,
    Topology,
    TumblingWindowAggregate,
)
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


class WindowedAggregationWorkload(Workload):
    """Per-key event counts over tumbling windows."""

    name = "windowed-aggregation"
    domain = ApplicationDomain.STREAMING
    category = WorkloadCategory.REALTIME_ANALYTICS
    data_type = DataType.STREAM
    abstract_operations = tuple(operations("window", "aggregate"))
    pattern = MultiOperationPattern(operations("window", "aggregate"))

    def run_streaming(
        self,
        engine: StreamingEngine,
        dataset: DataSet,
        window_seconds: float = 0.1,
        **params: Any,
    ) -> WorkloadResult:
        topology = Topology(self.name).then(
            TumblingWindowAggregate(window_seconds, lambda acc, value: acc + 1)
        )
        report = engine.run(topology, dataset.records)
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=report.results,
            records_in=dataset.num_records,
            records_out=len(report.results),
            duration_seconds=0.0,  # filled by the dispatcher
            cost=CostCounters().merge(engine.counters),
            latencies=report.latencies,
            simulated_seconds=report.events_in / report.service_rate,
            extra={
                "keeps_up": report.keeps_up,
                "arrival_rate": report.arrival_rate,
                "service_rate": report.service_rate,
                "backlog_seconds": report.final_backlog_seconds,
            },
        )


class RollingUpdateRateWorkload(Workload):
    """Sliding-window rate of UPDATE events (monitors update frequency).

    Filters the stream to updates, then counts them per sliding window —
    the observable side of the *data updating frequency* facet of
    velocity.
    """

    name = "rolling-update-rate"
    domain = ApplicationDomain.STREAMING
    category = WorkloadCategory.REALTIME_ANALYTICS
    data_type = DataType.STREAM
    abstract_operations = tuple(operations("select", "window", "aggregate"))
    pattern = MultiOperationPattern(operations("select", "window", "aggregate"))

    def run_streaming(
        self,
        engine: StreamingEngine,
        dataset: DataSet,
        window_seconds: float = 0.2,
        slide_seconds: float = 0.05,
        **params: Any,
    ) -> WorkloadResult:
        topology = (
            Topology(self.name)
            .then(FilterOperator(lambda event: event.kind is EventKind.UPDATE))
            .then(
                SlidingWindowAggregate(
                    window_seconds, slide_seconds, lambda acc, value: acc + 1
                )
            )
        )
        report = engine.run(topology, dataset.records)
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=report.results,
            records_in=dataset.num_records,
            records_out=len(report.results),
            duration_seconds=0.0,
            cost=CostCounters().merge(engine.counters),
            latencies=report.latencies,
            extra={
                "keeps_up": report.keeps_up,
                "arrival_rate": report.arrival_rate,
            },
        )
