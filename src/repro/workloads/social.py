"""Social-network domain workloads: k-means and connected components.

BigDataBench's social-network domain (Table 2).  K-means clusters
feature vectors (the offline-analytics ML representative); connected
components runs label propagation over the social graph — both as
iterative MapReduce job chains.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.errors import ExecutionError
from repro.core.operations import operations
from repro.core.patterns import (
    ConvergenceCondition,
    FixedIterations,
    IterativeOperationPattern,
)
from repro.datagen.base import DataSet, DataType
from repro.engines.base import CostCounters
from repro.engines.mapreduce import JobConf, MapReduceEngine, MapReduceJob
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)

Point = tuple[float, ...]


def _distance_squared(a: Point, b: Point) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


class KMeansWorkload(Workload):
    """Lloyd's k-means as an iterative MapReduce chain.

    Map: assign each point to its nearest centroid.  Reduce: recompute
    centroids.  Stops when total centroid movement falls below
    ``tolerance`` or after ``max_iterations``.
    """

    name = "kmeans"
    domain = ApplicationDomain.SOCIAL_NETWORK
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.TABLE
    abstract_operations = tuple(operations("cluster"))
    pattern = IterativeOperationPattern(
        operations("cluster"), FixedIterations(10)
    )

    def run_mapreduce(
        self,
        engine: MapReduceEngine,
        dataset: DataSet,
        num_clusters: int = 4,
        tolerance: float = 1e-3,
        max_iterations: int = 20,
        **params: Any,
    ) -> WorkloadResult:
        points = self._extract_points(dataset)
        if len(points) < num_clusters:
            raise ExecutionError(
                f"k-means needs at least {num_clusters} points, got {len(points)}"
            )
        # Deterministic initialisation: evenly strided points.
        stride = len(points) // num_clusters
        centroids: list[Point] = [points[i * stride] for i in range(num_clusters)]
        total_cost = CostCounters()
        simulated = wall = 0.0
        iterations = 0
        movement = float("inf")

        while iterations < max_iterations and movement > tolerance:
            frozen = list(centroids)

            def assign_map(point_id: int, point: Point):
                best = min(
                    range(len(frozen)),
                    key=lambda index: _distance_squared(point, frozen[index]),
                )
                yield best, point

            def centroid_reduce(cluster: int, members: list[Point]):
                dimensions = len(members[0])
                mean = tuple(
                    sum(point[d] for point in members) / len(members)
                    for d in range(dimensions)
                )
                yield cluster, mean

            job = MapReduceJob(
                f"kmeans-iter-{iterations}",
                assign_map,
                centroid_reduce,
                conf=JobConf(sort_keys=False),
            )
            result = engine.run(job, list(enumerate(points)))
            updated = dict(result.output)
            movement = 0.0
            for index in range(num_clusters):
                if index in updated:
                    movement += math.sqrt(
                        _distance_squared(centroids[index], updated[index])
                    )
                    centroids[index] = updated[index]
            total_cost.merge(result.cost)
            simulated += result.simulated_seconds
            wall += result.wall_seconds
            iterations += 1

        assignments = [
            min(
                range(num_clusters),
                key=lambda index: _distance_squared(point, centroids[index]),
            )
            for point in points
        ]
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output={"centroids": centroids, "assignments": assignments},
            records_in=len(points),
            records_out=num_clusters,
            duration_seconds=wall,
            cost=total_cost,
            simulated_seconds=simulated,
            extra={"iterations": iterations, "movement": movement},
        )

    @staticmethod
    def _extract_points(dataset: DataSet) -> list[Point]:
        """Numeric feature columns of a table (ignores a trailing label)."""
        schema = dataset.metadata.get("schema", ())
        has_label = bool(schema) and schema[-1] == "true_component"
        points = []
        for row in dataset.records:
            values = row[:-1] if has_label else row
            points.append(
                tuple(float(v) for v in values if isinstance(v, (int, float)))
            )
        return points


class ConnectedComponentsWorkload(Workload):
    """Label propagation: every vertex adopts its neighbourhood minimum.

    Iterates MapReduce rounds until no label changes — the paper's
    iterative pattern with a pure convergence stopping condition (zero
    tolerance).
    """

    name = "connected-components"
    domain = ApplicationDomain.SOCIAL_NETWORK
    category = WorkloadCategory.OFFLINE_ANALYTICS
    data_type = DataType.GRAPH
    abstract_operations = tuple(operations("cluster"))
    pattern = IterativeOperationPattern(
        operations("cluster"),
        ConvergenceCondition(tolerance=0.0, max_iterations=50),
    )

    def run_mapreduce(
        self,
        engine: MapReduceEngine,
        dataset: DataSet,
        max_iterations: int = 50,
        **params: Any,
    ) -> WorkloadResult:
        adjacency: dict[int, set[int]] = {}
        for src, dst in dataset.records:
            adjacency.setdefault(src, set()).add(dst)
            adjacency.setdefault(dst, set()).add(src)
        labels = {vertex: vertex for vertex in adjacency}
        total_cost = CostCounters()
        simulated = wall = 0.0
        iterations = 0
        changed = True

        while changed and iterations < max_iterations:
            current = dict(labels)

            def propagate_map(vertex: int, label: int):
                yield vertex, label
                for neighbour in adjacency.get(vertex, ()):
                    yield neighbour, label

            def min_reduce(vertex: int, candidate_labels: list[int]):
                yield vertex, min(candidate_labels)

            job = MapReduceJob(
                f"cc-iter-{iterations}",
                propagate_map,
                min_reduce,
                conf=JobConf(sort_keys=False),
            )
            result = engine.run(job, list(current.items()))
            labels = dict(result.output)
            changed = labels != current
            total_cost.merge(result.cost)
            simulated += result.simulated_seconds
            wall += result.wall_seconds
            iterations += 1

        components: dict[int, list[int]] = {}
        for vertex, label in labels.items():
            components.setdefault(label, []).append(vertex)
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output=labels,
            records_in=len(dataset.records),
            records_out=len(components),
            duration_seconds=wall,
            cost=total_cost,
            simulated_seconds=simulated,
            extra={"iterations": iterations, "num_components": len(components)},
        )
