"""Concrete workloads: the executable side of the paper's Table 2.

Every workload declares its application domain, user-view category
(online services / offline analytics / real-time analytics), abstract
operations, and pattern — then implements ``run_<engine>`` per supported
substrate.
"""

from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)
from repro.workloads.cfs import CfsWorkload
from repro.workloads.deeplearning import MlpClassificationWorkload
from repro.workloads.ecommerce import (
    CollaborativeFilteringWorkload,
    NaiveBayesWorkload,
    label_document,
)
from repro.workloads.hybrid import (
    ArrivalPattern,
    HybridWorkload,
    profile_arrival_pattern,
)
from repro.workloads.multimedia import ImageClassificationWorkload
from repro.workloads.micro import (
    GrepWorkload,
    SortWorkload,
    TeraSortWorkload,
    WordCountWorkload,
)
from repro.workloads.oltp import YcsbWorkload
from repro.workloads.relational import (
    CountUrlLinksWorkload,
    RelationalQueryWorkload,
    derive_products,
)
from repro.workloads.search import InvertedIndexWorkload, PageRankWorkload
from repro.workloads.social import ConnectedComponentsWorkload, KMeansWorkload
from repro.workloads.streaming_workloads import (
    RollingUpdateRateWorkload,
    WindowedAggregationWorkload,
)

#: Every built-in workload class, in registry order.
ALL_WORKLOADS: tuple[type[Workload], ...] = (
    SortWorkload,
    CfsWorkload,
    TeraSortWorkload,
    WordCountWorkload,
    GrepWorkload,
    InvertedIndexWorkload,
    PageRankWorkload,
    KMeansWorkload,
    ConnectedComponentsWorkload,
    CollaborativeFilteringWorkload,
    NaiveBayesWorkload,
    RelationalQueryWorkload,
    CountUrlLinksWorkload,
    YcsbWorkload,
    WindowedAggregationWorkload,
    RollingUpdateRateWorkload,
    HybridWorkload,
    ImageClassificationWorkload,
    MlpClassificationWorkload,
)

__all__ = [
    "ALL_WORKLOADS",
    "ApplicationDomain",
    "CfsWorkload",
    "ArrivalPattern",
    "CollaborativeFilteringWorkload",
    "ConnectedComponentsWorkload",
    "CountUrlLinksWorkload",
    "GrepWorkload",
    "HybridWorkload",
    "ImageClassificationWorkload",
    "MlpClassificationWorkload",
    "InvertedIndexWorkload",
    "KMeansWorkload",
    "NaiveBayesWorkload",
    "PageRankWorkload",
    "RelationalQueryWorkload",
    "RollingUpdateRateWorkload",
    "SortWorkload",
    "TeraSortWorkload",
    "WindowedAggregationWorkload",
    "WordCountWorkload",
    "Workload",
    "WorkloadCategory",
    "WorkloadResult",
    "YcsbWorkload",
    "derive_products",
    "label_document",
    "profile_arrival_pattern",
]
