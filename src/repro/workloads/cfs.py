"""Cloud-file-system (CFS) micro workload.

BigDataBench's micro benchmarks list "CFS" alongside sort/grep/WordCount:
basic DFS read/write operations.  This workload writes a text data set
into the simulated DFS as files, reads it back, verifies integrity,
appends, deletes, and reports per-operation simulated latencies — the
HDFS micro benchmark (a TestDFSIO analogue) at laptop scale.

Writes stream record by record into :meth:`DistributedFileSystem.write_stream`
and integrity is verified against an incrementally computed digest, so
the workload never holds a file payload (let alone the data set) in
memory — it works identically over a materialized :class:`DataSet` and a
streaming :class:`~repro.datagen.source.DatasetSource`.
"""

from __future__ import annotations

import hashlib
import itertools
from collections.abc import Iterator
from typing import Any

from repro.core.errors import ExecutionError
from repro.core.operations import operations
from repro.core.patterns import MultiOperationPattern
from repro.datagen.base import DataSet, DataType
from repro.datagen.source import DatasetSource
from repro.engines.base import CostCounters
from repro.engines.dfs import DistributedFileSystem
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


def _encoded_lines(
    documents: Iterator[str], hasher: "hashlib._Hash"
) -> Iterator[bytes]:
    """Documents as newline-joined byte chunks, hashing as they pass.

    Yields exactly the bytes ``"\\n".join(documents).encode()`` would
    produce, one document at a time.
    """
    first = True
    for document in documents:
        piece = document.encode() if first else b"\n" + document.encode()
        first = False
        hasher.update(piece)
        yield piece


class CfsWorkload(Workload):
    """DFS read/write/append/delete micro benchmark."""

    name = "cfs"
    domain = ApplicationDomain.MICRO
    category = WorkloadCategory.ONLINE_SERVICE
    data_type = DataType.TEXT
    #: Files are written as streams and verified by digest — no payload
    #: is retained, so a streaming source passes through untouched.
    streaming_input = True
    abstract_operations = tuple(
        operations("write", "read", "update", "delete")
    )
    pattern = MultiOperationPattern(
        operations("write", "read", "update", "delete")
    )

    def run_dfs(
        self,
        engine: DistributedFileSystem,
        dataset: DataSet | DatasetSource,
        files: int = 8,
        **params: Any,
    ) -> WorkloadResult:
        if dataset.num_records == 0:
            raise ExecutionError("CFS workload needs a non-empty data set")
        if files <= 0:
            raise ExecutionError(f"files must be positive, got {files}")

        # Pack the documents into `files` roughly equal files, streaming:
        # each file's bytes flow straight into the DFS while a digest is
        # computed on the way past.
        per_file = max(1, dataset.num_records // files)
        records = iter(dataset)
        file_meta: list[tuple[str, str, int]] = []  # (path, digest, size)

        latencies: dict[str, list[float]] = {
            "write": [], "read": [], "append": [], "delete": [],
        }
        bytes_total = 0
        for index in range(files):
            chunk = itertools.islice(records, per_file)
            probe = next(chunk, None)
            if probe is None:
                break
            path = f"/bench/part-{index:05d}"
            hasher = hashlib.sha256()
            report = engine.write_stream(
                path, _encoded_lines(itertools.chain([probe], chunk), hasher)
            )
            latencies["write"].append(report.simulated_seconds)
            file_meta.append((path, hasher.hexdigest(), report.bytes_moved))
            bytes_total += report.bytes_moved
        for path, digest, size in file_meta:
            report = engine.read_file(path)
            latencies["read"].append(report.simulated_seconds)
            if (
                report.data is None
                or len(report.data) != size
                or hashlib.sha256(report.data).hexdigest() != digest
            ):
                raise ExecutionError(f"DFS read-back mismatch for {path!r}")
        for path, _, _ in file_meta[: max(1, len(file_meta) // 2)]:
            report = engine.append(path, b"\nappended-line")
            latencies["append"].append(report.simulated_seconds)
        for path, _, _ in file_meta:
            report = engine.delete_file(path)
            latencies["delete"].append(report.simulated_seconds)

        simulated = sum(sum(samples) for samples in latencies.values())
        all_latencies = [
            value for samples in latencies.values() for value in samples
        ]
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output={
                "files": len(file_meta),
                "bytes": bytes_total,
                "mean_latency_by_op": {
                    op: (sum(samples) / len(samples) if samples else 0.0)
                    for op, samples in latencies.items()
                },
            },
            records_in=dataset.num_records,
            records_out=len(file_meta),
            duration_seconds=0.0,  # filled by the dispatcher
            cost=CostCounters().merge(engine.counters),
            latencies=all_latencies,
            simulated_seconds=simulated,
            extra={
                "write_throughput_bytes_per_second":
                    bytes_total / sum(latencies["write"])
                    if latencies["write"] else 0.0,
            },
        )
