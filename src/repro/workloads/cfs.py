"""Cloud-file-system (CFS) micro workload.

BigDataBench's micro benchmarks list "CFS" alongside sort/grep/WordCount:
basic DFS read/write operations.  This workload writes a text data set
into the simulated DFS as files, reads it back, verifies integrity,
appends, deletes, and reports per-operation simulated latencies — the
HDFS micro benchmark (a TestDFSIO analogue) at laptop scale.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import ExecutionError
from repro.core.operations import operations
from repro.core.patterns import MultiOperationPattern
from repro.datagen.base import DataSet, DataType
from repro.engines.base import CostCounters
from repro.engines.dfs import DistributedFileSystem
from repro.workloads.base import (
    ApplicationDomain,
    Workload,
    WorkloadCategory,
    WorkloadResult,
)


class CfsWorkload(Workload):
    """DFS read/write/append/delete micro benchmark."""

    name = "cfs"
    domain = ApplicationDomain.MICRO
    category = WorkloadCategory.ONLINE_SERVICE
    data_type = DataType.TEXT
    abstract_operations = tuple(
        operations("write", "read", "update", "delete")
    )
    pattern = MultiOperationPattern(
        operations("write", "read", "update", "delete")
    )

    def run_dfs(
        self,
        engine: DistributedFileSystem,
        dataset: DataSet,
        files: int = 8,
        **params: Any,
    ) -> WorkloadResult:
        if not dataset.records:
            raise ExecutionError("CFS workload needs a non-empty data set")
        if files <= 0:
            raise ExecutionError(f"files must be positive, got {files}")

        # Pack the documents into `files` roughly equal files.
        per_file = max(1, len(dataset.records) // files)
        payloads: list[tuple[str, bytes]] = []
        for index in range(files):
            chunk = dataset.records[index * per_file : (index + 1) * per_file]
            if not chunk:
                break
            payloads.append(
                (f"/bench/part-{index:05d}", "\n".join(chunk).encode())
            )

        latencies: dict[str, list[float]] = {
            "write": [], "read": [], "append": [], "delete": [],
        }
        bytes_total = 0
        for path, payload in payloads:
            report = engine.write_file(path, payload)
            latencies["write"].append(report.simulated_seconds)
            bytes_total += len(payload)
        for path, payload in payloads:
            report = engine.read_file(path)
            latencies["read"].append(report.simulated_seconds)
            if report.data != payload:
                raise ExecutionError(f"DFS read-back mismatch for {path!r}")
        for path, _ in payloads[: max(1, len(payloads) // 2)]:
            report = engine.append(path, b"\nappended-line")
            latencies["append"].append(report.simulated_seconds)
        for path, _ in payloads:
            report = engine.delete_file(path)
            latencies["delete"].append(report.simulated_seconds)

        simulated = sum(sum(samples) for samples in latencies.values())
        all_latencies = [
            value for samples in latencies.values() for value in samples
        ]
        return WorkloadResult(
            workload=self.name,
            engine=engine.name,
            output={
                "files": len(payloads),
                "bytes": bytes_total,
                "mean_latency_by_op": {
                    op: (sum(samples) / len(samples) if samples else 0.0)
                    for op, samples in latencies.items()
                },
            },
            records_in=dataset.num_records,
            records_out=len(payloads),
            duration_seconds=0.0,  # filled by the dispatcher
            cost=CostCounters().merge(engine.counters),
            latencies=all_latencies,
            simulated_seconds=simulated,
            extra={
                "write_throughput_bytes_per_second":
                    bytes_total / sum(latencies["write"])
                    if latencies["write"] else 0.0,
            },
        )
