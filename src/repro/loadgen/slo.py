"""SLO policies and verdicts (load generation, piece 3 of 4).

A sustained-throughput benchmark is only gateable if "good" is a
predicate, not a paragraph: :class:`SLOPolicy` names the budgets (rate
fraction achieved, latency percentiles, shed and error fractions) and
:meth:`SLOPolicy.evaluate` turns one
:class:`~repro.loadgen.runner.LoadReport` into an :class:`SLOVerdict` —
a flat list of pass/fail checks with the observed value and the budget
side by side, serializable into the run store next to the latency
samples.

On a virtual clock with a seeded target the whole report is a pure
function of the plan and seed, so the verdict is deterministic: same
seed → same verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.errors import LoadGenError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.loadgen.runner import LoadReport


@dataclass(frozen=True)
class SLOCheck:
    """One budget compared against one observed value."""

    name: str
    ok: bool
    observed: float
    budget: float
    #: How ``observed`` must relate to ``budget`` to pass.
    direction: str = "<="

    def describe(self) -> str:
        verdict = "ok" if self.ok else "VIOLATED"
        return (
            f"{self.name}: {self.observed:.6g} {self.direction} "
            f"{self.budget:.6g} [{verdict}]"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "ok": self.ok,
            "observed": self.observed,
            "budget": self.budget,
            "direction": self.direction,
        }


@dataclass
class SLOVerdict:
    """The pass/fail outcome of one load run against one policy."""

    passed: bool
    checks: list[SLOCheck] = field(default_factory=list)

    def reasons(self) -> list[str]:
        """Human-readable lines for every violated check."""
        return [check.describe() for check in self.checks if not check.ok]

    def as_dict(self) -> dict[str, Any]:
        return {
            "passed": self.passed,
            "checks": [check.as_dict() for check in self.checks],
        }


@dataclass(frozen=True)
class SLOPolicy:
    """The budgets a sustained-throughput run must meet.

    ``min_rate_fraction`` compares the *completion* rate against the
    *offered* rate (what the arrival schedule actually asked for — for
    bursty/diurnal shapes that differs from the nominal target), so the
    check stays meaningful across arrival kinds.  Latency budgets are
    seconds; ``None`` skips that percentile.  Shed requests never enter
    the latency samples, so the shed budget is a separate check — a
    load shedder can look fast while refusing half the work.
    """

    min_rate_fraction: float = 0.95
    p50_budget: float | None = None
    p95_budget: float | None = None
    p99_budget: float | None = None
    max_shed_fraction: float = 0.05
    max_error_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("min_rate_fraction", "max_shed_fraction",
                     "max_error_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise LoadGenError(
                    f"{name} must be in [0, 1], got {value}"
                )
        for name in ("p50_budget", "p95_budget", "p99_budget"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise LoadGenError(
                    f"{name} must be positive, got {value}"
                )

    def as_dict(self) -> dict[str, Any]:
        return {
            "min_rate_fraction": self.min_rate_fraction,
            "p50_budget": self.p50_budget,
            "p95_budget": self.p95_budget,
            "p99_budget": self.p99_budget,
            "max_shed_fraction": self.max_shed_fraction,
            "max_error_fraction": self.max_error_fraction,
        }

    def evaluate(self, report: "LoadReport") -> SLOVerdict:
        """Judge one load report against every configured budget."""
        checks: list[SLOCheck] = []
        checks.append(
            SLOCheck(
                name="achieved_rate",
                observed=report.achieved_rate,
                budget=report.offered_rate * self.min_rate_fraction,
                ok=report.achieved_rate
                >= report.offered_rate * self.min_rate_fraction,
                direction=">=",
            )
        )
        stats = report.latency_stats() if report.latencies else None
        for quantile, budget in (
            (50, self.p50_budget),
            (95, self.p95_budget),
            (99, self.p99_budget),
        ):
            if budget is None:
                continue
            observed = (
                stats.percentile(quantile)
                if stats is not None
                else float("inf")
            )
            checks.append(
                SLOCheck(
                    name=f"latency_p{quantile}",
                    observed=observed,
                    budget=budget,
                    ok=observed <= budget,
                )
            )
        checks.append(
            SLOCheck(
                name="shed_fraction",
                observed=report.shed_fraction,
                budget=self.max_shed_fraction,
                ok=report.shed_fraction <= self.max_shed_fraction,
            )
        )
        checks.append(
            SLOCheck(
                name="error_fraction",
                observed=report.error_fraction,
                budget=self.max_error_fraction,
                ok=report.error_fraction <= self.max_error_fraction,
            )
        )
        return SLOVerdict(
            passed=all(check.ok for check in checks), checks=checks
        )
