"""Load targets: what one request *does* (load generation, piece 2).

The :class:`~repro.loadgen.runner.LoadRunner` is target-agnostic — it
owns arrivals, queueing, and measurement, and delegates the request
body to a :class:`LoadTarget`:

* :class:`SyntheticTarget` — a seeded service-time model (constant,
  exponential, or lognormal).  Never executes anything, so a
  virtual-clock run is a pure deterministic simulation — the shape the
  SLO verdict contract and the benchmark trajectories use;
* :class:`WorkloadTarget` — one request = one execution of a prescribed
  workload on its engine (the dataset is generated once at setup, like
  a warmed server); service time is the measured wall clock;
* :class:`ServiceTarget` — one request = one job submitted to the
  benchmark service and awaited; the orchestrator's own admission
  control shows up as shed requests here, closing the loop PR 7 opened.

A target signals load shedding by raising
:class:`~repro.core.errors.RequestShed` (or the service layer's
:class:`~repro.service.queue.AdmissionError`); any other exception
counts as a request error.
"""

from __future__ import annotations

from abc import ABC
from typing import Any

import numpy as np

from repro.core.errors import LoadGenError

#: Service-time models :class:`SyntheticTarget` understands.
SERVICE_DISTRIBUTIONS = ("constant", "exponential", "lognormal")


class LoadTarget(ABC):
    """One request's behaviour, pluggable under the runner."""

    #: Short name recorded into fingerprints and reports.
    name: str = "target"

    def setup(self) -> None:
        """Prepare shared state (datasets, engines) before the run."""

    def teardown(self) -> None:
        """Release whatever :meth:`setup` acquired."""

    def service_time(
        self, request_index: int, rng: np.random.Generator
    ) -> float | None:
        """Simulated service seconds, or None when the request must
        actually execute (the runner then measures :meth:`execute`)."""
        return None

    def execute(self, request_index: int) -> None:
        """Really serve one request; raise to signal an error."""
        raise NotImplementedError(
            f"target {self.name!r} models service times only"
        )


class SyntheticTarget(LoadTarget):
    """A seeded service-time distribution; nothing really runs."""

    name = "synthetic"

    def __init__(
        self,
        mean_service: float = 0.005,
        distribution: str = "lognormal",
        sigma: float = 0.5,
    ) -> None:
        if mean_service <= 0:
            raise LoadGenError(
                f"mean_service must be positive, got {mean_service}"
            )
        if distribution not in SERVICE_DISTRIBUTIONS:
            raise LoadGenError(
                f"unknown service distribution {distribution!r}; "
                f"available: {', '.join(SERVICE_DISTRIBUTIONS)}"
            )
        if sigma <= 0:
            raise LoadGenError(f"sigma must be positive, got {sigma}")
        self.mean_service = mean_service
        self.distribution = distribution
        self.sigma = sigma
        # Lognormal parameterized so the *mean* (not the median) equals
        # mean_service — budgets are set against means, so the knob must
        # mean what it says.
        self._mu = float(np.log(mean_service) - 0.5 * sigma * sigma)

    def service_time(
        self, request_index: int, rng: np.random.Generator
    ) -> float:
        if self.distribution == "constant":
            return self.mean_service
        if self.distribution == "exponential":
            return float(rng.exponential(self.mean_service))
        return float(rng.lognormal(self._mu, self.sigma))


class WorkloadTarget(LoadTarget):
    """One request = one prescribed-workload execution on one engine.

    Setup runs the test-generation half of Figure 4 once (dataset
    generated, engine built, workload bound), so per-request cost is the
    workload execution itself — the "serving" shape of an online
    workload, with the data already loaded.
    """

    name = "workload"

    def __init__(
        self,
        prescription: str,
        engine: str | None = None,
        volume: int | None = None,
        params: dict[str, Any] | None = None,
        layout: str = "row",
        repository: Any = None,
    ) -> None:
        self.prescription = prescription
        self.engine = engine
        self.volume = volume
        self.params = dict(params or {})
        self.layout = layout
        self.repository = repository
        self._test = None

    def setup(self) -> None:
        from repro.core.test_generator import TestGenerator

        generator = TestGenerator(self.repository)
        prescription = generator.repository.get(self.prescription)
        engine_name = self.engine
        if engine_name is None:
            workload = generator.workloads.create(prescription.workload)
            supported = [
                name
                for name in workload.supported_engines()
                if name in generator.engines
            ]
            if not supported:
                raise LoadGenError(
                    f"no registered engine supports workload "
                    f"{prescription.workload!r}"
                )
            engine_name = supported[0]
        from repro.execution.config import layout_configuration

        self._test = generator.generate(
            prescription,
            engine_name,
            volume_override=self.volume,
            configuration=layout_configuration(engine_name, self.layout),
        )
        self.engine = engine_name
        self.name = f"workload:{self.prescription}@{engine_name}"

    def teardown(self) -> None:
        self._test = None

    def execute(self, request_index: int) -> None:
        if self._test is None:
            raise LoadGenError(
                "WorkloadTarget.execute before setup(); the runner calls "
                "setup() — are you driving the target by hand?"
            )
        self._test.run(**self.params)


class ServiceTarget(LoadTarget):
    """One request = one job through the benchmark service.

    Drives an :class:`~repro.service.orchestrator.Orchestrator` (owned,
    or shared via an existing client): submit, then wait for the
    terminal state.  The service's admission queue pushing back —
    :class:`~repro.service.queue.AdmissionError` — is re-raised as is;
    the runner counts it as a shed request, so the queue-depth and
    shed-count tracing measures the orchestrator's own door.
    """

    name = "service"

    def __init__(
        self,
        spec: Any = None,
        client: Any = None,
        submit_client: str = "loadgen",
        **service_options: Any,
    ) -> None:
        self.spec = spec
        self.submit_client = submit_client
        self._client = client
        self._owns_client = client is None
        self._service_options = service_options

    def setup(self) -> None:
        from repro.api import BenchmarkSpec, ServiceClient

        if self.spec is None:
            self.spec = BenchmarkSpec(
                "micro-wordcount", engines=["mapreduce"], volume=40
            )
        elif isinstance(self.spec, str):
            self.spec = BenchmarkSpec(self.spec)
        if self._client is None:
            self._client = ServiceClient(**self._service_options)
        self.name = f"service:{self.spec.prescription}"

    def teardown(self) -> None:
        if self._owns_client and self._client is not None:
            self._client.close()
            self._client = None

    def execute(self, request_index: int) -> None:
        from repro.core.errors import ServiceError

        if self._client is None:
            raise LoadGenError(
                "ServiceTarget.execute before setup(); the runner calls "
                "setup() — are you driving the target by hand?"
            )
        handle = self._client.submit(self.spec, client=self.submit_client)
        job = handle.wait()
        if job.state != "done":
            raise ServiceError(
                f"job {job.job_id} ended {job.state}: "
                f"{job.error_type}: {job.error_message}"
            )
