"""Controllable-velocity load generation (paper §5.1, request side).

The subsystem in four pieces: :mod:`~repro.loadgen.arrivals` (seeded
open-loop schedules), :mod:`~repro.loadgen.targets` (what one request
does — synthetic model, prescribed workload, or the benchmark service),
:mod:`~repro.loadgen.slo` (budgets → verdicts), and
:mod:`~repro.loadgen.runner` (the :class:`LoadRunner` tying them
together on a virtual or real clock, recording into the run store).
"""

from repro.loadgen.arrivals import (
    ARRIVAL_KINDS,
    arrival_process,
    arrival_schedule,
)
from repro.loadgen.runner import (
    CLOCK_KINDS,
    LoadPlan,
    LoadReport,
    LoadRunner,
    load_fingerprint,
)
from repro.loadgen.slo import SLOCheck, SLOPolicy, SLOVerdict
from repro.loadgen.targets import (
    SERVICE_DISTRIBUTIONS,
    LoadTarget,
    ServiceTarget,
    SyntheticTarget,
    WorkloadTarget,
)

__all__ = [
    "ARRIVAL_KINDS",
    "CLOCK_KINDS",
    "SERVICE_DISTRIBUTIONS",
    "LoadPlan",
    "LoadReport",
    "LoadRunner",
    "LoadTarget",
    "SLOCheck",
    "SLOPolicy",
    "SLOVerdict",
    "ServiceTarget",
    "SyntheticTarget",
    "WorkloadTarget",
    "arrival_process",
    "arrival_schedule",
    "load_fingerprint",
]
