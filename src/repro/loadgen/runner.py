"""The load runner (load generation, piece 4 of 4).

"Hold X req/s for T seconds and report the latency distribution."  The
:class:`LoadRunner` drives a :class:`~repro.loadgen.targets.LoadTarget`
under a :class:`LoadPlan` — an open-loop arrival schedule (constant /
poisson / bursty / diurnal) or a closed-loop session population with
think times — on one of two clocks:

* **virtual** (default): a discrete-event simulation of a bounded FIFO
  queue in front of ``concurrency`` servers.  Service times come from
  the target's seeded model (fully deterministic — the SLO verdict
  contract) or, for executing targets, from really running the request
  and folding the measured wall time into the virtual timeline;
* **real**: arrivals are paced with actual sleeps (injectable for
  tests) and dispatched to a thread pool, so a live system — the
  service orchestrator, say — feels genuine concurrent pressure.

Latency is measured from the *intended* arrival time, so queueing delay
is included and coordinated omission cannot hide an overload.  Requests
the bounded queue (or the target's own admission control) refuses are
**shed**, counted separately from errors, and excluded from the latency
samples.  The per-run evidence lands in a :class:`LoadReport`, which
serializes through the existing
:class:`~repro.core.results.MetricStats` p50/p95/p99 machinery into a
:class:`~repro.core.results.RunResult` — and from there into the run
store as its own recorded series, comparable and gateable like every
other benchmark.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.errors import LoadGenError, RequestShed
from repro.core.results import MetricStats, RunResult
from repro.datagen.base import mix_seed
from repro.loadgen.arrivals import ARRIVAL_KINDS, arrival_schedule
from repro.loadgen.slo import SLOPolicy, SLOVerdict
from repro.loadgen.targets import LoadTarget
from repro.observability import NULL_TRACER, Tracer
from repro.service.queue import AdmissionError

#: The two clocks a plan can run on.
CLOCK_KINDS = ("virtual", "real")

#: Seed-stream tags keeping service and think draws independent of the
#: arrival schedule (and of each other) under one user seed.
_SERVICE_STREAM = 0x5E21
_THINK_STREAM = 0x7417


@dataclass
class LoadPlan:
    """What load to offer: shape, rate, duration, and loop model.

    ``sessions > 0`` selects the closed-loop model (``sessions``
    concurrent users, each issuing think-pause-issue); otherwise the
    open-loop ``arrival`` schedule at ``rate`` req/s drives the run.
    """

    arrival: str = "poisson"
    rate: float = 100.0
    duration: float = 10.0
    sessions: int = 0
    think_time: float = 0.0
    seed: int = 0
    #: Extra arrival-process options (burst_factor, period, amplitude).
    arrival_options: dict[str, Any] = field(default_factory=dict)

    @property
    def mode(self) -> str:
        return "closed" if self.sessions > 0 else "open"

    def validate(self) -> None:
        if self.mode == "open" and self.arrival not in ARRIVAL_KINDS:
            raise LoadGenError(
                f"unknown arrival kind {self.arrival!r}; available: "
                f"{', '.join(ARRIVAL_KINDS)}"
            )
        if self.rate <= 0:
            raise LoadGenError(f"rate must be positive, got {self.rate}")
        if self.duration <= 0:
            raise LoadGenError(
                f"duration must be positive, got {self.duration}"
            )
        if self.sessions < 0:
            raise LoadGenError(
                f"sessions must be non-negative, got {self.sessions}"
            )
        if self.think_time < 0:
            raise LoadGenError(
                f"think_time must be non-negative, got {self.think_time}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "arrival": self.arrival,
            "rate": self.rate,
            "duration": self.duration,
            "sessions": self.sessions,
            "think_time": self.think_time,
            "seed": self.seed,
            "arrival_options": dict(self.arrival_options),
        }


@dataclass
class LoadReport:
    """Everything one load run measured."""

    plan: LoadPlan
    target_name: str
    clock: str
    concurrency: int
    queue_capacity: int
    offered: int = 0
    completed: int = 0
    shed: int = 0
    errors: int = 0
    latencies: list[float] = field(default_factory=list)
    queue_depth_samples: list[int] = field(default_factory=list)
    #: The measurement window: the virtual (or wall) time from the first
    #: arrival to the last completion, never less than the plan duration.
    elapsed_seconds: float = 0.0
    verdict: SLOVerdict | None = None
    record_id: str | None = None

    @property
    def offered_rate(self) -> float:
        """Requests the schedule actually asked for, per plan second."""
        return self.offered / self.plan.duration

    @property
    def achieved_rate(self) -> float:
        """Completions per second over the full measurement window."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def error_fraction(self) -> float:
        return self.errors / self.offered if self.offered else 0.0

    @property
    def queue_depth_max(self) -> int:
        return max(self.queue_depth_samples, default=0)

    def latency_stats(self) -> MetricStats:
        """Per-request latencies through the p50/p95/p99 machinery."""
        if not self.latencies:
            raise LoadGenError("no completed requests: no latencies")
        return MetricStats("latency", list(self.latencies))

    def as_run_result(self) -> RunResult:
        """The run-store shape: one RunResult, latency samples intact."""
        metrics = {
            "achieved_rate": MetricStats(
                "achieved_rate", [self.achieved_rate]
            ),
            "offered_rate": MetricStats("offered_rate", [self.offered_rate]),
            "shed_fraction": MetricStats(
                "shed_fraction", [self.shed_fraction]
            ),
            "error_fraction": MetricStats(
                "error_fraction", [self.error_fraction]
            ),
            "queue_depth_max": MetricStats(
                "queue_depth_max", [float(self.queue_depth_max)]
            ),
        }
        if self.latencies:
            metrics["latency"] = self.latency_stats()
        extra: dict[str, Any] = {
            "load_plan": self.plan.as_dict(),
            "clock": self.clock,
            "target": self.target_name,
            "concurrency": self.concurrency,
            "queue_capacity": self.queue_capacity,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.verdict is not None:
            extra["slo_verdict"] = self.verdict.as_dict()
        return RunResult(
            test_name=f"load:{self.plan.mode}-{self.plan.arrival}"
            if self.plan.mode == "open"
            else "load:closed",
            workload=self.target_name,
            engine=f"loadgen-{self.clock}",
            repeats=1,
            metrics=metrics,
            extra=extra,
        )

    def summary(self) -> dict[str, Any]:
        """A flat JSON-friendly digest (CLI ``--json``, benchmarks)."""
        payload: dict[str, Any] = {
            "mode": self.plan.mode,
            "arrival": self.plan.arrival,
            "target": self.target_name,
            "clock": self.clock,
            "target_rate": self.plan.rate,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "offered_rate": self.offered_rate,
            "achieved_rate": self.achieved_rate,
            "shed_fraction": self.shed_fraction,
            "error_fraction": self.error_fraction,
            "queue_depth_max": self.queue_depth_max,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.latencies:
            stats = self.latency_stats()
            payload["latency"] = {
                "mean": stats.mean,
                "p50": stats.p50,
                "p95": stats.p95,
                "p99": stats.p99,
                "max": stats.maximum,
                "n": len(stats.samples),
            }
        if self.verdict is not None:
            payload["slo"] = self.verdict.as_dict()
        if self.record_id is not None:
            payload["record_id"] = self.record_id
        return payload


def load_fingerprint(
    plan: LoadPlan,
    target_name: str,
    *,
    clock: str,
    concurrency: int,
    queue_capacity: int,
) -> dict[str, Any]:
    """The spec-fingerprint analogue for load runs.

    Everything that changes *what load is offered* belongs here, so runs
    of the same plan against the same target group into one comparable
    series in the run store (the SLO policy judges measurements, it does
    not change them — it stays out).
    """
    return {
        "kind": "loadgen",
        "target": target_name,
        "clock": clock,
        "concurrency": concurrency,
        "queue_capacity": queue_capacity,
        **plan.as_dict(),
    }


class LoadRunner:
    """Drives one target under one plan; measures; judges; records."""

    def __init__(
        self,
        target: LoadTarget,
        *,
        clock: str = "virtual",
        concurrency: int = 1,
        queue_capacity: int = 64,
        tracer: Tracer | None = None,
        sleep: Callable[[float], None] = time.sleep,
        time_source: Callable[[], float] = time.monotonic,
    ) -> None:
        if clock not in CLOCK_KINDS:
            raise LoadGenError(
                f"unknown clock {clock!r}; available: "
                f"{', '.join(CLOCK_KINDS)}"
            )
        if concurrency <= 0:
            raise LoadGenError(
                f"concurrency must be positive, got {concurrency}"
            )
        if queue_capacity < 0:
            raise LoadGenError(
                f"queue_capacity must be non-negative, got {queue_capacity}"
            )
        self.target = target
        self.clock = clock
        self.concurrency = concurrency
        self.queue_capacity = queue_capacity
        self.tracer = tracer or NULL_TRACER
        self._sleep = sleep
        self._time = time_source

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self,
        plan: LoadPlan,
        *,
        slo: SLOPolicy | None = None,
        store: Any = None,
    ) -> LoadReport:
        """Execute the plan; returns the report (verdict attached when a
        policy is given, recorded into ``store`` when one is given)."""
        plan.validate()
        report = LoadReport(
            plan=plan,
            target_name=self.target.name,
            clock=self.clock,
            concurrency=self.concurrency,
            queue_capacity=self.queue_capacity,
        )
        self.target.setup()
        try:
            report.target_name = self.target.name  # setup may refine it
            with self.tracer.activate():
                with self.tracer.span(
                    "load",
                    mode=plan.mode,
                    arrival=plan.arrival,
                    rate=plan.rate,
                    duration=plan.duration,
                    clock=self.clock,
                    target=report.target_name,
                ) as span:
                    if plan.mode == "closed":
                        self._run_closed(plan, report)
                    elif self.clock == "virtual":
                        self._run_open_virtual(plan, report)
                    else:
                        self._run_open_real(plan, report)
                    span.incr("load.offered", report.offered)
                    span.incr("load.completed", report.completed)
                    span.incr("load.shed", report.shed)
                    span.incr("load.errors", report.errors)
                    span.record_max(
                        "load.queue_depth", report.queue_depth_max
                    )
        finally:
            self.target.teardown()
        if slo is not None:
            report.verdict = slo.evaluate(report)
        if store is not None:
            self._record(report, store)
        return report

    # ------------------------------------------------------------------
    # Virtual clock: discrete-event simulation
    # ------------------------------------------------------------------

    def _service_rng(self, plan: LoadPlan) -> np.random.Generator:
        return np.random.default_rng(mix_seed(plan.seed, _SERVICE_STREAM))

    def _serve(
        self,
        request_index: int,
        rng: np.random.Generator,
    ) -> tuple[float | None, str]:
        """One request's service seconds, or its failure disposition.

        Returns ``(service_seconds, "ok")``, ``(None, "shed")``, or
        ``(None, "error")``.  Executing targets really run here; their
        measured wall time becomes the virtual service time.
        """
        simulated = self.target.service_time(request_index, rng)
        if simulated is not None:
            return simulated, "ok"
        started = time.perf_counter()
        try:
            self.target.execute(request_index)
        except (RequestShed, AdmissionError):
            return None, "shed"
        except Exception:  # noqa: BLE001 — per-request fault isolation
            return None, "error"
        return time.perf_counter() - started, "ok"

    def _run_open_virtual(self, plan: LoadPlan, report: LoadReport) -> None:
        arrivals = arrival_schedule(
            plan.arrival,
            plan.rate,
            plan.duration,
            plan.seed,
            **plan.arrival_options,
        )
        rng = self._service_rng(plan)
        free = [0.0] * self.concurrency
        heapq.heapify(free)
        # FIFO + earliest-free-server makes start times nondecreasing,
        # so the waiting set is a deque drained from the front.
        waiting_starts: deque[float] = deque()
        last_completion = 0.0
        for index, arrived in enumerate(arrivals):
            report.offered += 1
            while waiting_starts and waiting_starts[0] <= arrived:
                waiting_starts.popleft()
            depth = len(waiting_starts)
            report.queue_depth_samples.append(depth)
            # Shed only when every waiting slot is taken AND no server
            # is idle: queue_capacity=0 still serves what a free server
            # can take immediately.
            if depth >= self.queue_capacity and free[0] > arrived:
                report.shed += 1
                continue
            service, disposition = self._serve(index, rng)
            if disposition == "shed":
                report.shed += 1
                continue
            if disposition == "error":
                report.errors += 1
                continue
            free_at = heapq.heappop(free)
            start = max(arrived, free_at)
            completion = start + service
            heapq.heappush(free, completion)
            waiting_starts.append(start)
            report.completed += 1
            report.latencies.append(completion - arrived)
            last_completion = max(last_completion, completion)
        report.elapsed_seconds = max(plan.duration, last_completion)

    def _run_closed(self, plan: LoadPlan, report: LoadReport) -> None:
        """Closed loop: N sessions, think → issue → wait → think …

        Runs as a virtual-clock simulation regardless of the configured
        clock — a closed population self-paces, so there is nothing a
        wall clock would add except nondeterminism.
        """
        service_rng = self._service_rng(plan)
        think_rng = np.random.default_rng(
            mix_seed(plan.seed, _THINK_STREAM)
        )

        def think() -> float:
            if plan.think_time <= 0:
                return 0.0
            return float(think_rng.exponential(plan.think_time))

        free = [0.0] * self.concurrency
        heapq.heapify(free)
        waiting_starts: deque[float] = deque()
        # (next issue time, session id) — session id breaks ties
        # deterministically.
        sessions = [(think(), index) for index in range(plan.sessions)]
        heapq.heapify(sessions)
        last_completion = 0.0
        index = 0
        while sessions:
            issued_at, session = heapq.heappop(sessions)
            if issued_at >= plan.duration:
                continue
            report.offered += 1
            while waiting_starts and waiting_starts[0] <= issued_at:
                waiting_starts.popleft()
            report.queue_depth_samples.append(len(waiting_starts))
            service, disposition = self._serve(index, service_rng)
            index += 1
            if disposition != "ok":
                if disposition == "shed":
                    report.shed += 1
                else:
                    report.errors += 1
                heapq.heappush(
                    sessions, (issued_at + max(think(), 1e-6), session)
                )
                continue
            free_at = heapq.heappop(free)
            start = max(issued_at, free_at)
            completion = start + service
            heapq.heappush(free, completion)
            waiting_starts.append(start)
            report.completed += 1
            report.latencies.append(completion - issued_at)
            last_completion = max(last_completion, completion)
            heapq.heappush(sessions, (completion + think(), session))
        report.elapsed_seconds = max(plan.duration, last_completion)

    # ------------------------------------------------------------------
    # Real clock: paced dispatch onto a worker pool
    # ------------------------------------------------------------------

    def _run_open_real(self, plan: LoadPlan, report: LoadReport) -> None:
        arrivals = arrival_schedule(
            plan.arrival,
            plan.rate,
            plan.duration,
            plan.seed,
            **plan.arrival_options,
        )
        rng = self._service_rng(plan)
        lock = threading.Lock()
        in_flight = 0
        epoch = self._time()

        def worker(request_index: int, intended: float) -> None:
            nonlocal in_flight
            disposition = "ok"
            try:
                simulated = self.target.service_time(request_index, rng)
                if simulated is not None:
                    self._sleep(simulated)
                else:
                    self.target.execute(request_index)
            except (RequestShed, AdmissionError):
                disposition = "shed"
            except Exception:  # noqa: BLE001 — per-request isolation
                disposition = "error"
            completed_at = self._time() - epoch
            with lock:
                in_flight -= 1
                if disposition == "ok":
                    report.completed += 1
                    # Latency from the *intended* arrival: queueing
                    # delay counts, coordinated omission does not hide.
                    report.latencies.append(
                        max(0.0, completed_at - intended)
                    )
                elif disposition == "shed":
                    report.shed += 1
                else:
                    report.errors += 1

        with ThreadPoolExecutor(max_workers=self.concurrency) as pool:
            for index, arrived in enumerate(arrivals):
                now = self._time() - epoch
                if arrived > now:
                    self._sleep(arrived - now)
                with lock:
                    report.offered += 1
                    depth = max(0, in_flight - self.concurrency)
                    report.queue_depth_samples.append(depth)
                    # Workers + waiting slots all taken → shed (the
                    # same door rule as the virtual queue).
                    if in_flight >= self.concurrency + self.queue_capacity:
                        report.shed += 1
                        continue
                    in_flight += 1
                pool.submit(worker, index, arrived)
        report.elapsed_seconds = max(
            plan.duration, self._time() - epoch
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _record(self, report: LoadReport, store: Any) -> None:
        record = store.record_outcome(
            report.as_run_result(),
            load_fingerprint(
                report.plan,
                report.target_name,
                clock=self.clock,
                concurrency=self.concurrency,
                queue_capacity=self.queue_capacity,
            ),
        )
        report.record_id = record.record_id
