"""Open-loop arrival schedules (load generation, piece 1 of 4).

Section 5.1 demands *fully controllable* data velocity; this module is
the request-side half of that control: a seeded schedule of arrival
timestamps at a target offered rate, in one of four shapes —

* ``constant`` — fixed inter-arrival gaps (a perfectly paced client);
* ``poisson``  — memoryless arrivals, the open-system null model;
* ``bursty``   — a two-state on/off process alternating between a quiet
  rate and a burst rate (YCSB-style bursty traffic);
* ``diurnal``  — sinusoidally rate-modulated arrivals (a compressed
  day/night cycle).

The shapes reuse the :class:`~repro.datagen.stream.ArrivalProcess`
machinery the stream generator already has, so the same processes that
*generate* event data also *drive* load.  Schedules are pure functions
of ``(kind, rate, duration, seed)`` — the determinism the SLO verdict
contract rests on.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import LoadGenError
from repro.datagen.base import mix_seed
from repro.datagen.stream import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    UniformArrivals,
)

#: The arrival kinds ``arrival_process`` accepts (CLI ``--arrival``).
ARRIVAL_KINDS = ("constant", "poisson", "bursty", "diurnal")

#: Seed-stream tag separating schedule draws from every other consumer
#: of the same user seed.
_SCHEDULE_STREAM = 0x10AD


def arrival_process(kind: str, rate: float, **options) -> ArrivalProcess:
    """Build the arrival process for one named kind at ``rate`` req/s.

    ``bursty`` accepts ``burst_factor`` (the quiet rate is
    ``rate / burst_factor``, the burst rate ``rate * burst_factor``) and
    ``switch_probability``; ``diurnal`` accepts ``period`` and
    ``amplitude``.
    """
    if rate <= 0:
        raise LoadGenError(f"rate must be positive, got {rate}")
    if kind == "constant":
        return UniformArrivals(rate)
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "bursty":
        burst_factor = float(options.pop("burst_factor", 4.0))
        if burst_factor <= 1.0:
            raise LoadGenError(
                f"burst_factor must exceed 1.0, got {burst_factor}"
            )
        # The on/off process spends ~half its *events* in each state, so
        # its long-run rate is the harmonic mean of the state rates —
        # naive low=rate/f, high=rate*f would offer well under the
        # nominal rate.  Keep the f² burst-to-quiet ratio but scale both
        # states so the harmonic mean equals `rate`: --rate means what
        # it says for every arrival kind.
        scale = (burst_factor * burst_factor + 1) / (2 * burst_factor)
        return BurstyArrivals(
            low_rate=rate / burst_factor * scale,
            high_rate=rate * burst_factor * scale,
            switch_probability=float(
                options.pop("switch_probability", 0.05)
            ),
        )
    if kind == "diurnal":
        return DiurnalArrivals(
            rate=rate,
            period=float(options.pop("period", 60.0)),
            amplitude=float(options.pop("amplitude", 0.8)),
        )
    raise LoadGenError(
        f"unknown arrival kind {kind!r}; available: "
        f"{', '.join(ARRIVAL_KINDS)}"
    )


def arrival_schedule(
    kind: str,
    rate: float,
    duration: float,
    seed: int = 0,
    **options,
) -> list[float]:
    """Seeded arrival timestamps within ``[0, duration)``, ascending.

    Stateful processes (bursty, diurnal) must draw their gaps in a
    single call to keep phase continuity, so the schedule is drawn with
    a generous count estimate and redrawn from scratch (with a fresh
    sub-seed, keeping determinism) in the rare case the estimate falls
    short of ``duration``.
    """
    if duration <= 0:
        raise LoadGenError(f"duration must be positive, got {duration}")
    process = arrival_process(kind, rate, **options)
    count = max(16, int(rate * duration * 1.5) + 16)
    for attempt in range(16):
        rng = np.random.default_rng(
            mix_seed(seed, _SCHEDULE_STREAM, attempt)
        )
        timestamps = process.timestamps(rng, count)
        if len(timestamps) and timestamps[-1] >= duration:
            return [float(t) for t in timestamps[timestamps < duration]]
        count *= 2
    raise LoadGenError(
        f"could not fill a {duration}s schedule at rate {rate} "
        f"(kind {kind!r}); the process stalls far below its nominal rate"
    )
