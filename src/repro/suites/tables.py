"""Regeneration of the paper's Table 1 and Table 2.

``PAPER_TABLE1`` / ``PAPER_TABLE2`` transcribe the published tables; the
``generate_*`` functions derive the same tables from the suite models
(and, for Table 1, from the classification rules).  The benchmark
harnesses print both and assert they match cell for cell — the paper's
evaluation artifacts reproduced by code rather than copied.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.suites.classify import Table1Row, classify_suite
from repro.suites.registry import SUITES

#: Table 1 exactly as published (benchmark, volume, velocity, variety,
#: veracity).
PAPER_TABLE1: tuple[Table1Row, ...] = (
    Table1Row("HiBench", "Partially scalable", "Un-controllable",
              "Texts", "Un-considered"),
    Table1Row("GridMix", "Scalable", "Un-controllable", "Texts",
              "Un-considered"),
    Table1Row("PigMix", "Scalable", "Un-controllable", "Texts",
              "Un-considered"),
    Table1Row("YCSB", "Scalable", "Un-controllable", "Tables",
              "Un-considered"),
    Table1Row("Performance benchmark", "Scalable", "Un-controllable",
              "Tables, texts", "Un-considered"),
    Table1Row("TPC-DS", "Scalable", "Semi-controllable", "Tables",
              "Partially considered"),
    Table1Row("BigBench", "Scalable", "Semi-controllable",
              "Texts, web logs, tables", "Partially considered"),
    Table1Row("LinkBench", "Partially scalable", "Semi-controllable",
              "Graphs", "Partially considered"),
    Table1Row("CloudSuite", "Partially scalable", "Semi-controllable",
              "Texts, graphs, videos, tables", "Partially considered"),
    Table1Row("BigDataBench", "Scalable", "Semi-controllable",
              "Texts, resumes, graphs, tables", "Considered"),
)


def generate_table1() -> list[Table1Row]:
    """Derive Table 1 from the suite models via the classification rules."""
    return [classify_suite(model) for model in SUITES]


def table1_matches_paper() -> tuple[bool, list[str]]:
    """Cell-for-cell comparison; returns (all match, mismatch notes)."""
    generated = generate_table1()
    mismatches: list[str] = []
    for expected, actual in zip(PAPER_TABLE1, generated):
        for column in ("benchmark", "volume", "velocity", "variety", "veracity"):
            expected_cell = getattr(expected, column)
            actual_cell = getattr(actual, column)
            if expected_cell != actual_cell:
                mismatches.append(
                    f"{expected.benchmark}/{column}: paper={expected_cell!r} "
                    f"derived={actual_cell!r}"
                )
    if len(PAPER_TABLE1) != len(generated):
        mismatches.append(
            f"row count: paper={len(PAPER_TABLE1)} derived={len(generated)}"
        )
    return not mismatches, mismatches


@dataclass(frozen=True)
class Table2Row:
    """One derived row of Table 2 (one workload category of one suite)."""

    benchmark: str
    workload_type: str
    examples: str
    software_stacks: str


#: Table 2 exactly as published, flattened to one row per workload
#: category.
PAPER_TABLE2: tuple[Table2Row, ...] = (
    Table2Row("HiBench", "Offline analytics",
              "Sort, WordCount, TeraSort, PageRank, K-means, "
              "Bayes classification", "Hadoop and Hive"),
    Table2Row("HiBench", "Real-time analytics", "Nutch Indexing",
              "Hadoop and Hive"),
    Table2Row("GridMix", "Online services", "Sort, sampling a large dataset",
              "Hadoop"),
    Table2Row("PigMix", "Online services", "12 data queries", "Hadoop"),
    Table2Row("YCSB", "Online services", "OLTP (read, write, scan, update)",
              "NoSQL systems"),
    Table2Row("Performance benchmark", "Online services",
              "Data loading, select, aggregate, join, count URL links",
              "DBMS and Hadoop"),
    Table2Row("TPC-DS", "Online services",
              "Data loading, queries and maintenance", "DBMS"),
    Table2Row("BigBench", "Online services",
              "Database operations (select, create and drop tables)",
              "DBMS and Hadoop"),
    Table2Row("BigBench", "Offline analytics", "K-means, classification",
              "DBMS and Hadoop"),
    Table2Row("LinkBench", "Online services",
              "Simple operations such as select, insert, update, and delete; "
              "and association range queries and count queries", "DBMS"),
    Table2Row("CloudSuite", "Online services", "YCSB's workloads",
              "NoSQL systems, Hadoop, GraphLab"),
    Table2Row("CloudSuite", "Offline analytics",
              "Text classification, WordCount",
              "NoSQL systems, Hadoop, GraphLab"),
    Table2Row("BigDataBench", "Online services",
              "Database operations (read, write, scan)",
              "NoSQL systems, DBMS, real-time and offline analytics systems"),
    Table2Row("BigDataBench", "Offline analytics",
              "Micro Benchmarks (sort, grep, WordCount, CFS); search engine "
              "(index, PageRank); social network (K-means, connected "
              "components (CC)); e-commerce (collaborative filtering (CF), "
              "Naive Bayes)",
              "NoSQL systems, DBMS, real-time and offline analytics systems"),
    Table2Row("BigDataBench", "Real-time analytics",
              "Relational database query (select, aggregate, join)",
              "NoSQL systems, DBMS, real-time and offline analytics systems"),
)


def generate_table2() -> list[Table2Row]:
    """Derive Table 2 from the suite models' workload inventories."""
    rows: list[Table2Row] = []
    for model in SUITES:
        for entry in model.workloads:
            rows.append(
                Table2Row(
                    benchmark=model.name,
                    workload_type=entry.category,
                    examples=entry.examples,
                    software_stacks=model.software_stacks,
                )
            )
    return rows


def table2_matches_paper() -> tuple[bool, list[str]]:
    """Cell-for-cell comparison; returns (all match, mismatch notes)."""
    generated = generate_table2()
    mismatches: list[str] = []
    for expected, actual in zip(PAPER_TABLE2, generated):
        for column in ("benchmark", "workload_type", "examples",
                       "software_stacks"):
            expected_cell = getattr(expected, column)
            actual_cell = getattr(actual, column)
            if expected_cell != actual_cell:
                mismatches.append(
                    f"{expected.benchmark}/{column}: paper={expected_cell!r} "
                    f"derived={actual_cell!r}"
                )
    if len(PAPER_TABLE2) != len(generated):
        mismatches.append(
            f"row count: paper={len(PAPER_TABLE2)} derived={len(generated)}"
        )
    return not mismatches, mismatches
